"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table, figure, or Section VI
example): it *verifies* the behaviour the artifact documents, *prints* the
rows so the run log doubles as the reproduced table, and *times* the
representative operation with pytest-benchmark.
"""

from __future__ import annotations

import pathlib

from repro.workloads import nbody_source  # noqa: F401  (re-export: the
# n-body source-munging helper now lives in the workload registry; bench
# modules keep importing it from here)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES_LOL = REPO_ROOT / "examples" / "lol"


def lol(body: str) -> str:
    return f"HAI 1.2\n{body}\nKTHXBYE\n"


def print_table(title: str, header: list[str], rows: list[list[object]]) -> None:
    """Render one reproduced table into the captured bench output."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  " + " | ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in rows:
        print("  " + " | ".join(str(c).ljust(w) for c, w in zip(row, widths)))


