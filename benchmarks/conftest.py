"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table, figure, or Section VI
example): it *verifies* the behaviour the artifact documents, *prints* the
rows so the run log doubles as the reproduced table, and *times* the
representative operation with pytest-benchmark.
"""

from __future__ import annotations

import pathlib
import re

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES_LOL = REPO_ROOT / "examples" / "lol"


def lol(body: str) -> str:
    return f"HAI 1.2\n{body}\nKTHXBYE\n"


def print_table(title: str, header: list[str], rows: list[list[object]]) -> None:
    """Render one reproduced table into the captured bench output."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  " + " | ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in rows:
        print("  " + " | ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def nbody_source(particles: int, steps: int) -> str:
    """The (race-fixed) Section VI.D listing scaled for bench runtimes.

    Every *standalone* literal ``32`` in the listing is the particle
    count (some occurrences sit on ``...`` continuation lines).  The
    substitution is word-bounded so a literal that merely *contains*
    ``32`` (or a particle count that itself contains ``32``, like 320 —
    which a plain ``str.replace`` would corrupt on a second scaling
    pass) can never clobber unrelated constants; same for the step
    count's ``time AN 10`` loop bound.
    """
    src = (EXAMPLES_LOL / "nbody2d_fixed.lol").read_text()
    src = re.sub(r"\b32\b", str(particles), src)
    src = re.sub(r"\btime AN 10\b", f"time AN {steps}", src)
    return src
