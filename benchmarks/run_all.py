#!/usr/bin/env python3
"""Engine-tagged benchmark runner: writes ``BENCH_interp.json``.

A thin wrapper over the :mod:`repro.bench` orchestrator's timing
machinery: kernels come from the :mod:`repro.workloads` registry (plus
the two paper listings that are not registry workloads), timing is the
orchestrator's ``best_of``, and the historical ``BENCH_interp.json``
schema is preserved so the interpreter performance trajectory stays
comparable from PR to PR::

    PYTHONPATH=src python benchmarks/run_all.py [--reps 5] [--out BENCH_interp.json]

The JSON schema (one entry per bench x engine)::

    {"meta": {...}, "results": [
        {"bench": "nbody_8p2s", "engine": "closure", "n_pes": 2,
         "seconds": 0.004, "speedup_vs_ast": 3.9}, ...]}

For the full workload matrix (checkers, cross-engine differentials, NoC
projections, baseline regression mode) use ``python -m repro.bench``.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import platform
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import run_lolcode  # noqa: E402
from repro.bench import best_of  # noqa: E402
from repro.compiler import compile_python, load_pe_main  # noqa: E402
from repro.shmem import run_spmd  # noqa: E402
from repro.workloads import all_workloads, nbody_source  # noqa: E402

sys.path.insert(0, str(REPO_ROOT))
from benchmarks.conftest import lol  # noqa: E402

BARRIER_SRC = (REPO_ROOT / "examples" / "lol" / "barrier.lol").read_text()
LOCKS_SRC = (REPO_ROOT / "examples" / "lol" / "locks.lol").read_text()

MATH_KERNEL = lol(
    "I HAS A acc ITZ 0.0\n"
    "IM IN YR k UPPIN YR i TIL BOTH SAEM i AN 3000\n"
    "  acc R SUM OF acc AN FLIP OF UNSQUAR OF SUM OF PRODUKT OF i AN i AN 1.0\n"
    "IM OUTTA YR k\n"
    "VISIBLE acc"
)

#: (name, source, n_pes) benchmark matrix.
BENCHES = [
    ("nbody_8p2s", nbody_source(8, 2), 2),
    ("nbody_16p2s", nbody_source(16, 2), 2),
    ("math_kernel", MATH_KERNEL, 1),
    ("barrier", BARRIER_SRC, 4),
    ("locks", LOCKS_SRC, 4),
]


#: "Classroom scale" parameter overrides for the registry sweep below:
#: big enough that interpretation dominates world setup, small enough
#: that the whole matrix finishes in seconds.
REGISTRY_PARAMS = {
    "pi_montecarlo": {"darts": 20000},
    "nbody": {"particles": 32, "steps": 2},
    "nbody_racy": {"particles": 32, "steps": 2},
    "histogram": {"draws": 2000},
    "heat1d": {"cells": 256, "steps": 100},
    "heat2d": {"rows": 16, "cols": 32, "steps": 20},
}

REGISTRY_N_PES = 4


def run_registry(reps: int) -> tuple[list[dict], float]:
    """closure-vs-vm rows for every registry workload at np=4.

    Returns the rows plus the geometric-mean vm speedup over closure —
    the headline number for the register-bytecode VM engine.
    """
    results: list[dict] = []
    ratios: list[float] = []
    for workload in all_workloads():
        n_pes = max(REGISTRY_N_PES, workload.min_pes)
        src = workload.source(
            workload.bind_params(REGISTRY_PARAMS.get(workload.name))
        )
        timings: dict[str, float] = {}
        for engine in ("closure", "vm"):
            fn = lambda: run_lolcode(  # noqa: E731
                src, n_pes, seed=42, engine=engine
            )
            fn()  # warm parse/compile caches
            timings[engine] = best_of(fn, reps)
        ratios.append(timings["closure"] / timings["vm"])
        for engine, seconds in timings.items():
            results.append(
                {
                    "bench": f"wl_{workload.name}",
                    "engine": engine,
                    "n_pes": n_pes,
                    "seconds": round(seconds, 6),
                    "speedup_vs_closure": round(
                        timings["closure"] / seconds, 3
                    ),
                }
            )
    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    return results, geomean


def run_benches(reps: int) -> list[dict]:
    results: list[dict] = []
    for name, src, n_pes in BENCHES:
        timings: dict[str, float] = {}
        for engine in ("ast", "closure", "vm"):
            fn = lambda: run_lolcode(src, n_pes, seed=42, engine=engine)  # noqa: E731
            fn()  # warm parse/compile caches
            timings[engine] = best_of(fn, reps)
        pe_main = load_pe_main(compile_python(src))
        fn = lambda: run_spmd(pe_main, n_pes, seed=42)  # noqa: E731
        fn()
        timings["py_backend"] = best_of(fn, reps)
        for engine, seconds in timings.items():
            results.append(
                {
                    "bench": name,
                    "engine": engine,
                    "n_pes": n_pes,
                    "seconds": round(seconds, 6),
                    "speedup_vs_ast": round(timings["ast"] / seconds, 3),
                }
            )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=5, help="best-of reps")
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_interp.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    results = run_benches(args.reps)
    registry_rows, vm_geomean = run_registry(args.reps)
    results.extend(registry_rows)
    payload = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "reps": args.reps,
            "note": "seconds = best-of-reps wall clock via run_lolcode/run_spmd",
            "vm_vs_closure_geomean_np4": round(vm_geomean, 3),
        },
        "results": results,
    }
    pathlib.Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    width = max(len(r["bench"]) for r in results)
    print(f"{'bench':<{width}} {'engine':>10} {'PEs':>4} {'seconds':>10} {'speedup':>8}")
    for r in results:
        speedup = r.get("speedup_vs_ast", r.get("speedup_vs_closure"))
        print(
            f"{r['bench']:<{width}} {r['engine']:>10} {r['n_pes']:>4} "
            f"{r['seconds']:>10.4f} {speedup:>7.2f}x"
        )
    closure_nbody = [
        r
        for r in results
        if r["engine"] == "closure" and r["bench"].startswith("nbody")
    ]
    worst = min(r["speedup_vs_ast"] for r in closure_nbody)
    print(f"\nclosure engine vs tree-walker on n-body: worst {worst:.2f}x")
    print(f"vm engine vs closure, registry geomean (np=4): {vm_geomean:.2f}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
