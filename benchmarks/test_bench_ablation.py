"""[X-1] Ablations of the reproduction's design choices (DESIGN.md).

* XY mesh routing vs an ideal crossbar: how much of the modeled
  Epiphany time comes from hop distance;
* per-statement vs block predication (``TXT MAH BFF k, s`` repeated vs
  ``AN STUFF ... TTYL``): identical semantics and identical op counts —
  predication is free, it only scopes addressing;
* implied locks vs atomics for the contended counter (cost of the
  general mechanism vs the specialised one);
* symbol- vs element-granular race detection overhead.
"""

import time

import pytest

from repro import run_lolcode
from repro.noc import (
    Mesh2D,
    epiphany_iii,
    estimate,
    ideal_crossbar,
    link_traffic_from_trace,
)

from .conftest import lol, nbody_source, print_table


def test_xy_routing_vs_ideal_crossbar():
    src = nbody_source(8, 2)
    r = run_lolcode(src, 4, seed=42, trace=True)
    base = epiphany_iii()
    ideal = ideal_crossbar(base)
    t_mesh = estimate(r.trace, base).makespan_s
    t_ideal = estimate(r.trace, ideal).makespan_s
    assert t_ideal <= t_mesh
    traffic = link_traffic_from_trace(r.trace, Mesh2D(2, 2))
    link, hot = traffic.hottest_link()
    print_table(
        "Ablation: XY mesh routing vs ideal crossbar (n-body, 4 PEs)",
        ["variant", "modeled makespan", "hottest link bytes"],
        [
            ["4x4 eMesh, XY routing", f"{t_mesh * 1e3:.3f} ms", ""],
            ["ideal crossbar", f"{t_ideal * 1e3:.3f} ms", ""],
            ["hottest eMesh link", "", f"{link}: {hot}"],
        ],
    )


def test_statement_vs_block_predication_equivalent():
    stmt_form = lol(
        "WE HAS A x ITZ SRSLY A NUMBR\n"
        "WE HAS A y ITZ SRSLY A NUMBR\n"
        "x R ME\ny R PRODUKT OF ME AN 2\nHUGZ\n"
        "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
        "I HAS A a ITZ A NUMBR\nI HAS A b ITZ A NUMBR\n"
        "TXT MAH BFF k, a R UR x\n"
        "TXT MAH BFF k, b R UR y\n"
        "VISIBLE SUM OF a AN b"
    )
    block_form = lol(
        "WE HAS A x ITZ SRSLY A NUMBR\n"
        "WE HAS A y ITZ SRSLY A NUMBR\n"
        "x R ME\ny R PRODUKT OF ME AN 2\nHUGZ\n"
        "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
        "I HAS A a ITZ A NUMBR\nI HAS A b ITZ A NUMBR\n"
        "TXT MAH BFF k AN STUFF\n"
        "  a R UR x\n"
        "  b R UR y\n"
        "TTYL\n"
        "VISIBLE SUM OF a AN b"
    )
    r1 = run_lolcode(stmt_form, 4, seed=1, trace=True)
    r2 = run_lolcode(block_form, 4, seed=1, trace=True)
    assert r1.outputs == r2.outputs
    assert r1.trace.summary() == r2.trace.summary()
    print_table(
        "Ablation: per-statement vs block predication",
        ["form", "gets", "output"],
        [
            ["TXT MAH BFF k, <stmt> (x2)", r1.trace.summary()["gets"], "identical"],
            ["TXT MAH BFF k AN STUFF...TTYL", r2.trace.summary()["gets"], "identical"],
        ],
    )


def test_lock_vs_atomic_counter_cost():
    lock_src = lol(
        "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\nHUGZ\n"
        "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 30\n"
        "  IM SRSLY MESIN WIF x\n"
        "  TXT MAH BFF 0, UR x R SUM OF UR x AN 1\n"
        "  DUN MESIN WIF x\n"
        "IM OUTTA YR l\nHUGZ\n"
    )
    r = run_lolcode(lock_src, 4, seed=1, trace=True)
    s = r.trace.summary()
    # Each locked increment = lock + get + put + unlock: 4 runtime ops
    # versus 1 for an atomic fetch-add. The generality tax, quantified:
    ops_locked = s["locks"] + s["gets"] + s["puts"]
    ops_atomic = 4 * 30  # one atomic per increment
    print_table(
        "Ablation: implied lock vs atomic fetch-add (120 increments, 4 PEs)",
        ["mechanism", "runtime ops"],
        [
            ["IM SHARIN IT lock protocol", ops_locked],
            ["shmem atomic fetch-add", ops_atomic],
        ],
    )
    assert ops_locked > ops_atomic


@pytest.mark.benchmark(group="ablation")
def test_race_detector_overhead_symbol_granularity(benchmark):
    src = nbody_source(6, 1)
    benchmark(lambda: run_lolcode(src, 2, seed=1, race_detection=True))


@pytest.mark.benchmark(group="ablation")
def test_race_detector_off_baseline(benchmark):
    src = nbody_source(6, 1)
    benchmark(lambda: run_lolcode(src, 2, seed=1))


def test_detector_overhead_is_bounded():
    """Symbol-granular detection must stay within ~3x of a plain run
    (the property that makes it usable as an always-on teaching aid)."""
    src = nbody_source(6, 1)
    run_lolcode(src, 2, seed=1)  # warm
    t0 = time.perf_counter()
    run_lolcode(src, 2, seed=1)
    base = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_lolcode(src, 2, seed=1, race_detection=True)
    checked = time.perf_counter() - t0
    assert checked < base * 5 + 0.5
