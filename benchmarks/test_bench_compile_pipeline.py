"""[E-E] Section VI.E — compilation and execution of LOLCODE programs.

The paper's pipeline: ``lcc code.lol -o executable.x`` then launch.
This bench reproduces the toolchain legs we can run offline:

* ``lcc`` front-end + C emission throughput (source lines/second);
* Python-backend emission + exec throughput;
* the paper's interpreter-vs-compiler claim: end-to-end compiled run
  beats interpretation on the n-body kernel;
* when gcc is present, the full ``lcc | cc`` leg is timed too.
"""

import shutil
import subprocess
import time

import pytest

from repro import run_lolcode
from repro.compiler import compile_c, compile_python, load_pe_main
from repro.shmem import run_spmd

from .conftest import nbody_source, print_table

SRC = nbody_source(8, 2)
GCC = shutil.which("gcc") or shutil.which("cc")


@pytest.mark.benchmark(group="pipeline")
def test_lcc_c_emission_throughput(benchmark):
    benchmark(compile_c, SRC)
    lines = len(SRC.splitlines())
    print(f"\n  input: {lines} LOLCODE lines per round")


@pytest.mark.benchmark(group="pipeline")
def test_lcc_python_emission_throughput(benchmark):
    benchmark(compile_python, SRC)


@pytest.mark.benchmark(group="pipeline")
def test_compile_and_load(benchmark):
    """Full compile-to-callable leg (parse -> codegen -> exec)."""
    benchmark(lambda: load_pe_main(compile_python(SRC)))


def test_interpreter_vs_compiler_speedup():
    """Paper: 'Using a compiler for LOLCODE is more flexible and
    efficient than an interpreter.'  Measure the paths end to end: the
    paper's claim is about *tree-walking* interpretation, so that is the
    baseline; the closure engine (this repo's default) is measured as a
    third row — it closes most of the gap while staying an interpreter."""
    # warm-up + measure
    run_lolcode(SRC, 2, seed=42, engine="ast")
    t0 = time.perf_counter()
    run_lolcode(SRC, 2, seed=42, engine="ast")
    t_interp = time.perf_counter() - t0

    run_lolcode(SRC, 2, seed=42, engine="closure")
    t0 = time.perf_counter()
    run_lolcode(SRC, 2, seed=42, engine="closure")
    t_closure = time.perf_counter() - t0

    pe_main = load_pe_main(compile_python(SRC))
    run_spmd(pe_main, 2, seed=42)
    t0 = time.perf_counter()
    run_spmd(pe_main, 2, seed=42)
    t_compiled = time.perf_counter() - t0

    speedup = t_interp / t_compiled
    print_table(
        "Section VI.E: interpreter vs compiled execution (n-body kernel)",
        ["path", "seconds", "speedup"],
        [
            ["tree-walker (loli-style)", f"{t_interp:.4f}", "1.00x"],
            ["closure engine (default)", f"{t_closure:.4f}", f"{t_interp / t_closure:.2f}x"],
            ["compiled (lcc-style)", f"{t_compiled:.4f}", f"{speedup:.2f}x"],
        ],
    )
    assert speedup > 1.0, (
        f"compiled path must beat the tree-walker, got {speedup:.2f}x"
    )


@pytest.mark.skipif(GCC is None, reason="no C compiler")
def test_full_lcc_cc_pipeline(tmp_path):
    """The literal Section VI.E command sequence, single-PE sim:
    lcc code.lol -o code.c && cc code.c -o executable && ./executable."""
    c_file = tmp_path / "code.c"
    exe = tmp_path / "executable.x"
    t0 = time.perf_counter()
    c_file.write_text(compile_c(SRC))
    subprocess.run(
        [GCC, "-DLOL_SHMEM_SIM", "-std=c99", "-O2", str(c_file), "-o",
         str(exe), "-lm"],
        check=True,
        capture_output=True,
    )
    build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    out = subprocess.run(
        [str(exe)], capture_output=True, text=True, timeout=60, check=True
    )
    run_s = time.perf_counter() - t0
    assert "I HAS PARTICLZ 2 MUV" in out.stdout
    print_table(
        "Section VI.E: lcc + cc pipeline (single-PE OpenSHMEM sim)",
        ["leg", "seconds"],
        [["lcc + cc build", f"{build_s:.3f}"], ["native run", f"{run_s:.3f}"]],
    )


@pytest.mark.benchmark(group="pipeline")
def test_run_compiled_end_to_end(benchmark):
    benchmark(lambda: run_lolcode(SRC, 2, seed=42, engine="compiled"))
