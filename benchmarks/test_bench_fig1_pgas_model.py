"""[F1] Paper Figure 1 — the PGAS memory model.

The figure shows N PEs, each owning a partition of the global address
space containing the same symmetric symbols (shared arrays + statically
declared variables), remotely reachable from any PE.

This bench (i) verifies the partitioning invariants the figure depicts,
(ii) prints the reproduced partition map, and (iii) quantifies the
figure's implicit asymmetry — local access is cheap, remote access goes
through the network — both measured on the runtime and modeled on the
paper's machines.
"""

import pytest

from repro import run_lolcode
from repro.lang.types import LolType
from repro.noc import cray_xc40, epiphany_iii, local_vs_remote_ratio
from repro.shmem import ShmemContext, run_spmd

from .conftest import lol, print_table

FIG1_PROGRAM = lol(
    "WE HAS A shared_array ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 16\n"
    "WE HAS A static_var ITZ SRSLY A NUMBR\n"
    "static_var R ME\n"
    "shared_array'Z 0 R PRODUKT OF ME AN 1.5\n"
    "HUGZ\n"
    "BTW every PE can reach every partition\n"
    "I HAS A sum ITZ A NUMBR\n"
    "IM IN YR l UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ\n"
    "  TXT MAH BFF k, sum R SUM OF sum AN UR static_var\n"
    "IM OUTTA YR l\n"
    "VISIBLE sum"
)


def test_fig1_partitioned_global_address_space():
    n = 4
    result = run_lolcode(FIG1_PROGRAM, n, seed=1)
    # Each PE summed 0+1+2+3 across all partitions: global reachability.
    assert result.outputs == ["6\n"] * n

    rows = [
        [f"PE {pe}", "shared_array[16] + static_var", f"static_var={pe}"]
        for pe in range(n)
    ]
    print_table(
        "Figure 1: PGAS partitions (one symmetric set per PE)",
        ["partition", "symmetric symbols", "private value"],
        rows,
    )


def test_fig1_partition_accounting():
    """Every PE's partition holds exactly the same symbols and bytes."""

    def worker(ctx: ShmemContext):
        ctx.alloc_array("shared_array", LolType.NUMBAR, 16)
        ctx.alloc_scalar("static_var", LolType.NUMBR)
        ctx.barrier_all()
        return ctx.world.heap.partition_nbytes(ctx.my_pe)

    r = run_spmd(worker, 4)
    assert len(set(r.returns)) == 1  # symmetric: identical everywhere
    assert r.returns[0] == 16 * 8 + 8


def test_fig1_modeled_asymmetry():
    """The figure's point: remote access costs orders of magnitude more
    than local access on real PGAS hardware."""
    rows = []
    for machine in (epiphany_iii(), cray_xc40()):
        ratio = local_vs_remote_ratio(machine)
        rows.append([machine.name, f"{ratio:,.0f}x"])
        assert ratio > 10
    print_table(
        "Figure 1 (implied): remote/local access cost ratio, modeled",
        ["machine", "remote get vs local load"],
        rows,
    )


@pytest.mark.benchmark(group="fig1")
def test_local_read_cost(benchmark):
    def worker(ctx: ShmemContext):
        ctx.alloc_array("a", LolType.NUMBAR, 64)
        for _ in range(2000):
            ctx.local_read("a", index=7)

    benchmark(lambda: run_spmd(worker, 1))


@pytest.mark.benchmark(group="fig1")
def test_remote_get_cost(benchmark):
    def worker(ctx: ShmemContext):
        ctx.alloc_array("a", LolType.NUMBAR, 64)
        ctx.barrier_all()
        other = (ctx.my_pe + 1) % ctx.n_pes
        for _ in range(2000):
            ctx.get("a", other, index=7)
        ctx.barrier_all()

    benchmark(lambda: run_spmd(worker, 2))
