"""[F2] Paper Figure 2 — symmetric parallel data movement and why HUGZ
is needed.

The figure's program::

    TXT MAH BFF k, UR b R MAH a
    HUGZ
    c R SUM OF a AN b

Reproduction: (i) with HUGZ the result is deterministic across seeds and
runs; (ii) without HUGZ the happens-before race detector reports exactly
the put-vs-read race the figure warns about ("the program cannot prevent
fast PEs from calculating the sum before their b value has been
updated"); (iii) the barriered version is timed.
"""

import pytest

from repro import run_lolcode

from .conftest import lol, print_table

FIG2 = (
    "WE HAS A a ITZ SRSLY A NUMBR\n"
    "WE HAS A b ITZ SRSLY A NUMBR\n"
    "a R SUM OF ME AN 1\n"
    "HUGZ\n"
    "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
    "TXT MAH BFF k, UR b R MAH a\n"
    "{barrier}"
    "I HAS A c ITZ SUM OF a AN b\n"
    "VISIBLE c"
)

WITH_HUGZ = lol(FIG2.format(barrier="HUGZ\n"))
WITHOUT_HUGZ = lol(FIG2.format(barrier=""))


def test_fig2_with_barrier_deterministic():
    outs = {run_lolcode(WITH_HUGZ, 4, seed=s).output for s in range(5)}
    assert len(outs) == 1
    result = run_lolcode(WITH_HUGZ, 4, seed=0)
    # PE i: a=i+1, b=((i-1) mod 4)+1
    assert result.outputs == ["5\n", "3\n", "5\n", "7\n"]


def test_fig2_without_barrier_race_detected():
    result = run_lolcode(WITHOUT_HUGZ, 4, seed=0, race_detection=True)
    races = [r for r in result.races if r.symbol == "b"]
    assert races, "expected the Figure 2 put-vs-read race on 'b'"
    rows = [
        [r.symbol, f"PE {r.first_pe} {r.first_kind}",
         f"PE {r.second_pe} {r.second_kind}", r.epoch]
        for r in races[:4]
    ]
    print_table(
        "Figure 2 without HUGZ: races detected (put vs read on b)",
        ["symbol", "first access", "second access", "epoch"],
        rows,
    )


def test_fig2_with_barrier_race_free():
    result = run_lolcode(WITH_HUGZ, 4, seed=0, race_detection=True)
    assert result.races == []


def test_fig2_barrier_cost_summary():
    result = run_lolcode(WITH_HUGZ, 4, seed=0, trace=True)
    summary = result.trace.summary()
    # 2 HUGZ per PE (plus none hidden): the figure's protocol costs
    # exactly two collective synchronisations.
    assert summary["barriers"] == 8
    assert summary["puts"] == 4
    print_table(
        "Figure 2 protocol cost (4 PEs)",
        ["metric", "value"],
        [[k, v] for k, v in summary.items()],
    )


@pytest.mark.benchmark(group="fig2")
def test_fig2_program_wallclock(benchmark):
    benchmark(lambda: run_lolcode(WITH_HUGZ, 4, seed=0))
