"""[E-B] Section VI.B — parallel synchronization with locks.

The contended-counter workload: every PE increments a shared counter on
PE 0 under the implied IM SHARIN IT lock.  Verifies exactness (the whole
point of the lock), compares against an *unlocked* racy baseline and an
atomic-fetch-add alternative, and times lock throughput vs PE count.
"""

import pytest

from repro import run_lolcode
from repro.lang.types import LolType
from repro.shmem import ShmemContext, run_spmd

from .conftest import lol, print_table

INCREMENTS = 50


def locked_source() -> str:
    return lol(
        "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\nHUGZ\n"
        f"IM IN YR l UPPIN YR i TIL BOTH SAEM i AN {INCREMENTS}\n"
        "  IM SRSLY MESIN WIF x\n"
        "  TXT MAH BFF 0, UR x R SUM OF UR x AN 1\n"
        "  DUN MESIN WIF x\n"
        "IM OUTTA YR l\nHUGZ\n"
        "BOTH SAEM ME AN 0, O RLY?\nYA RLY,\n  VISIBLE x\nOIC"
    )


def test_locked_counter_exact():
    rows = []
    for n_pes in (2, 4, 8):
        r = run_lolcode(locked_source(), n_pes, seed=1)
        expected = n_pes * INCREMENTS
        assert r.outputs[0] == f"{expected}\n"
        rows.append([n_pes, expected, "EXACT"])
    print_table(
        "Section VI.B locked counter (paper's lock example, verified)",
        ["PEs", "final count", "status"],
        rows,
    )


def test_unlocked_baseline_is_racy():
    """Ablation: drop the lock and the race detector fires (the counter
    may still be correct by luck — the *detector* is the reliable
    signal, which is exactly the pedagogical point)."""
    src = lol(
        "WE HAS A x ITZ SRSLY A NUMBR\nHUGZ\n"
        f"IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 5\n"
        "  TXT MAH BFF 0, UR x R SUM OF UR x AN 1\n"
        "IM OUTTA YR l\n"
    )
    r = run_lolcode(src, 4, seed=1, race_detection=True)
    assert any(rep.symbol == "x" for rep in r.races)


def test_atomic_alternative_exact():
    """The OpenSHMEM backend the paper mentions ('other routines are used
    implicitly') offers atomics; fetch-add gives the lock example's
    semantics without a critical section."""

    def worker(ctx: ShmemContext):
        ctx.alloc_scalar("x", LolType.NUMBR)
        ctx.barrier_all()
        for _ in range(INCREMENTS):
            ctx.atomic_fetch_add("x", 1, 0)
        ctx.barrier_all()
        return ctx.local_read("x") if ctx.my_pe == 0 else None

    r = run_spmd(worker, 4)
    assert r.returns[0] == 4 * INCREMENTS


@pytest.mark.benchmark(group="locks")
@pytest.mark.parametrize("n_pes", [2, 4])
def test_locked_counter_wallclock(benchmark, n_pes):
    src = locked_source()
    benchmark(lambda: run_lolcode(src, n_pes, seed=1))


@pytest.mark.benchmark(group="locks")
def test_atomic_counter_wallclock(benchmark):
    def worker(ctx: ShmemContext):
        ctx.alloc_scalar("x", LolType.NUMBR)
        ctx.barrier_all()
        for _ in range(INCREMENTS):
            ctx.atomic_fetch_add("x", 1, 0)
        ctx.barrier_all()

    benchmark(lambda: run_spmd(worker, 4))
