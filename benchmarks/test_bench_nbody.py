"""[E-D] Section VI.D — the parallel 2-D n-body application.

The paper's flagship demonstration, reproduced end to end:

* strong/weak-scaling rows over PE counts (interpreter and compiled
  backend, identical outputs — differentially checked);
* trace replay onto the Epiphany-III and Cray XC40 models — the "$99
  board to $30M supercomputer" portability claim in model form;
* pytest-benchmark timings for the representative configuration.

Bench configs are scaled down from the paper's 32 particles x 10 steps
so the harness stays fast; the full paper configuration is exercised by
the slow-marked test in tests/test_paper_examples.py.
"""

import pytest

from repro import run_lolcode
from repro.noc import cray_xc40, epiphany_iii, estimate

from .conftest import nbody_source, print_table

PARTICLES = 8
STEPS = 2
SRC = nbody_source(PARTICLES, STEPS)


def test_nbody_interpreter_vs_compiled_identical():
    for n_pes in (1, 2, 4):
        ri = run_lolcode(SRC, n_pes, seed=42)
        rc = run_lolcode(SRC, n_pes, seed=42, engine="compiled")
        assert ri.outputs == rc.outputs, f"divergence at {n_pes} PEs"


def test_nbody_output_shape():
    r = run_lolcode(SRC, 2, seed=42)
    for pe in range(2):
        lines = r.outputs[pe].splitlines()
        assert lines[0] == f"HAI ITZ {pe} I HAS PARTICLZ 2 MUV"
        assert len(lines) == 2 + PARTICLES


def test_nbody_modeled_hardware_table():
    """The paper's implicit result: the same program runs on both
    machines; remote traffic per PE grows with PE count (more remote
    blocks), while the Cray pays ~usec latencies per fine-grained get."""
    rows = []
    estimates = {}
    for n_pes in (1, 2, 4):
        r = run_lolcode(SRC, n_pes, seed=42, trace=True)
        for machine in (epiphany_iii(), cray_xc40()):
            est = estimate(r.trace, machine)
            estimates[(n_pes, machine.name)] = est
            rows.append(
                [
                    n_pes,
                    machine.name,
                    f"{est.makespan_s * 1e3:.3f} ms",
                    f"{est.comm_fraction() * 100:.1f}%",
                ]
            )
    print_table(
        "Section VI.D n-body, modeled on the paper's hardware "
        f"({PARTICLES} particles/PE, {STEPS} steps)",
        ["PEs", "machine", "modeled makespan", "comm fraction"],
        rows,
    )
    # Shape checks: communication share grows with PEs on both machines;
    # 1-PE runs have (almost) no comm cost.
    for machine in ("Epiphany-III (Parallella, $99)", "Cray XC40 (101,312 cores, $30M)"):
        frac1 = estimates[(1, machine)].comm_fraction()
        frac4 = estimates[(4, machine)].comm_fraction()
        assert frac4 > frac1
    # Fine-grained element gets are exactly where the Cray's us-scale
    # latency hurts relative to the on-chip Epiphany NoC.
    assert (
        estimates[(4, "Cray XC40 (101,312 cores, $30M)")].comm_s
        > estimates[(4, "Epiphany-III (Parallella, $99)")].comm_s
    )


def test_nbody_compute_scales_with_particles():
    flops = []
    for particles in (4, 8):
        r = run_lolcode(nbody_source(particles, 1), 1, seed=1, trace=True)
        flops.append(r.trace.total_flops())
    # all-pairs: ~quadratic growth in local work
    assert flops[1] > 3 * flops[0]


@pytest.mark.benchmark(group="nbody")
def test_nbody_treewalker_wallclock(benchmark):
    benchmark(lambda: run_lolcode(SRC, 2, seed=42, engine="ast"))


@pytest.mark.benchmark(group="nbody")
def test_nbody_closure_engine_wallclock(benchmark):
    """The closure engine (the default) must bury the tree-walker on the
    same kernel at the same PE count; the ratio is tracked run-over-run
    in BENCH_interp.json (see benchmarks/run_all.py)."""
    benchmark(lambda: run_lolcode(SRC, 2, seed=42, engine="closure"))


@pytest.mark.benchmark(group="nbody")
def test_nbody_compiled_wallclock(benchmark):
    """The compiled backend should beat the tree-walking interpreter —
    the paper's motivation for building a compiler rather than an
    interpreter ('more flexible and efficient than an interpreter')."""
    benchmark(lambda: run_lolcode(SRC, 2, seed=42, engine="compiled"))
