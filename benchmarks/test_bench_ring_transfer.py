"""[E-A] Section VI.A — circular (ring) whole-array transfer.

Each PE copies its ring neighbour's 32-element symmetric array with one
predicated assignment.  The bench verifies the transfer, scales it over
PE counts and array sizes, and reports bytes moved per run from the op
trace (what the paper's figure-less example implies but never measures).
"""

import pytest

from repro import run_lolcode
from repro.shmem import OpKind

from .conftest import lol, print_table


def ring_source(elems: int) -> str:
    return lol(
        "I HAS A pe ITZ A NUMBR AN ITZ ME\n"
        "I HAS A n_pes ITZ A NUMBR AN ITZ MAH FRENZ\n"
        f"WE HAS A array ITZ SRSLY LOTZ A NUMBRS AN THAR IZ {elems}\n"
        "I HAS A next_pe ITZ A NUMBR AN ITZ SUM OF pe AN 1\n"
        "next_pe R MOD OF next_pe AN n_pes\n"
        f"IM IN YR l UPPIN YR i TIL BOTH SAEM i AN {elems}\n"
        "  array'Z i R SUM OF PRODUKT OF pe AN 1000 AN i\n"
        "IM OUTTA YR l\n"
        "HUGZ\n"
        f"I HAS A local ITZ LOTZ A NUMBRS AN THAR IZ {elems}\n"
        "TXT MAH BFF next_pe, MAH local R UR array\n"
        "VISIBLE local'Z 0"
    )


def test_ring_correctness_and_traffic():
    rows = []
    for n_pes in (2, 4, 8):
        r = run_lolcode(ring_source(32), n_pes, seed=1, trace=True)
        # PE i receives slot 0 of PE (i+1): value ((i+1) mod n)*1000.
        expected = [f"{((i + 1) % n_pes) * 1000}\n" for i in range(n_pes)]
        assert r.outputs == expected
        gets = r.trace.total(OpKind.GET)
        nbytes = r.trace.total_remote_bytes()
        assert gets == n_pes
        assert nbytes == n_pes * 32 * 8
        rows.append([n_pes, gets, nbytes])
    print_table(
        "Section VI.A ring transfer (32 NUMBRs per hop)",
        ["PEs", "remote gets", "bytes moved"],
        rows,
    )


def test_ring_bytes_scale_with_array_size():
    sizes = (8, 64, 256)
    measured = []
    for elems in sizes:
        r = run_lolcode(ring_source(elems), 4, seed=1, trace=True)
        measured.append(r.trace.total_remote_bytes())
    assert measured == [4 * s * 8 for s in sizes]


@pytest.mark.benchmark(group="ring")
@pytest.mark.parametrize("n_pes", [2, 4, 8])
def test_ring_wallclock(benchmark, n_pes):
    src = ring_source(32)
    benchmark(lambda: run_lolcode(src, n_pes, seed=1))
