"""[T1] Paper Table I — basic syntax for the LOLCODE language.

Regenerates the table as a conformance matrix: every construct row from
Table I is exercised by a probe program whose output is checked, and the
whole corpus is timed through parse + interpret (the front-end throughput
a student's edit-run loop sees).
"""

import pytest

from repro.interp import run_serial
from repro.lang.parser import parse

from .conftest import lol, print_table

#: (Table I row, probe body, expected VISIBLE output)
TABLE1_PROBES = [
    ("HAI [version] / KTHXBYE", 'VISIBLE "ok"', "ok\n"),
    ("BTW comment", 'BTW nothing\nVISIBLE "ok"', "ok\n"),
    ("OBTW ... TLDR", 'OBTW\nignored\nTLDR\nVISIBLE "ok"', "ok\n"),
    ("CAN HAS [library]?", 'CAN HAS STDIO?\nVISIBLE "ok"', "ok\n"),
    ("VISIBLE [arg]", "VISIBLE 42", "42\n"),
    ("I HAS A [var]", "I HAS A x\nBOTH SAEM x AN NOOB\nVISIBLE IT", "WIN\n"),
    ("I HAS A [var] ITZ [value]", "I HAS A x ITZ 7\nVISIBLE x", "7\n"),
    ("I HAS A [var] ITZ A [type]", "I HAS A x ITZ A NUMBAR\nVISIBLE x", "0.00\n"),
    ("[var] R [value]", "I HAS A x\nx R 3\nVISIBLE x", "3\n"),
    ("BOTH SAEM", "VISIBLE BOTH SAEM 2 AN 2", "WIN\n"),
    ("DIFFRINT", "VISIBLE DIFFRINT 2 AN 3", "WIN\n"),
    ("BIGGER", "VISIBLE BIGGER 3 AN 2", "WIN\n"),
    ("SMALLR", "VISIBLE SMALLR 2 AN 3", "WIN\n"),
    ("SUM OF", "VISIBLE SUM OF 2 AN 3", "5\n"),
    ("DIFF OF", "VISIBLE DIFF OF 2 AN 3", "-1\n"),
    ("PRODUKT OF", "VISIBLE PRODUKT OF 2 AN 3", "6\n"),
    ("QUOSHUNT OF", "VISIBLE QUOSHUNT OF 7 AN 2", "3\n"),
    ("MOD OF", "VISIBLE MOD OF 7 AN 2", "1\n"),
    ("MAEK [expr] A [type]", "VISIBLE MAEK 3.7 A NUMBR", "3\n"),
    ("[var] IS NOW A [type]", "I HAS A x ITZ 3.7\nx IS NOW A NUMBR\nVISIBLE x", "3\n"),
    ("SRS [string]", 'I HAS A x ITZ 5\nVISIBLE SRS "x"', "5\n"),
    (
        "O RLY? / YA RLY / NO WAI / OIC",
        'WIN, O RLY?\nYA RLY,\n  VISIBLE "y"\nNO WAI\n  VISIBLE "n"\nOIC',
        "y\n",
    ),
    (
        "WTF? / OMG / OMGWTF / GTFO",
        "2\nWTF?\nOMG 1\n  VISIBLE 1\n  GTFO\nOMG 2\n  VISIBLE 2\n  GTFO\n"
        "OMGWTF\n  VISIBLE 9\nOIC",
        "2\n",
    ),
    (
        "IM IN YR ... UPPIN/TIL",
        "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3\n  VISIBLE i\nIM OUTTA YR l",
        "0\n1\n2\n",
    ),
    (
        "IM IN YR ... NERFIN/WILE",
        "IM IN YR l NERFIN YR i WILE BIGGER i AN -2\n  VISIBLE i\nIM OUTTA YR l",
        "0\n-1\n",
    ),
    ("... continuation", "VISIBLE SUM OF 1 ...\n  AN 2", "3\n"),
    ("comma separation", "I HAS A x, x R 9, VISIBLE x", "9\n"),
    (
        "functions (HOW IZ I)",
        "HOW IZ I dbl YR n\n  FOUND YR PRODUKT OF n AN 2\nIF U SAY SO\n"
        "VISIBLE I IZ dbl YR 21 MKAY",
        "42\n",
    ),
    ("GIMMEH (via injected stdin)", None, None),  # verified in tests/
]


def _corpus():
    return [lol(body) for _, body, _ in TABLE1_PROBES if body is not None]


def test_table1_conformance_matrix():
    rows = []
    for construct, body, expected in TABLE1_PROBES:
        if body is None:
            rows.append([construct, "VERIFIED (tests/test_interp_core.py)"])
            continue
        got = run_serial(lol(body))
        assert got == expected, f"{construct}: {got!r} != {expected!r}"
        rows.append([construct, "VERIFIED"])
    print_table(
        "Table I: basic syntax for the LOLCODE language (reproduced)",
        ["construct", "status"],
        rows,
    )


@pytest.mark.benchmark(group="table1")
def test_table1_parse_throughput(benchmark):
    corpus = _corpus()
    total_lines = sum(len(s.splitlines()) for s in corpus)

    def parse_all():
        for src in corpus:
            parse(src)

    benchmark(parse_all)
    print(f"\n  corpus: {len(corpus)} programs, {total_lines} lines/round")


@pytest.mark.benchmark(group="table1")
def test_table1_interpret_throughput(benchmark):
    corpus = _corpus()

    def run_all():
        for src in corpus:
            run_serial(src)

    benchmark(run_all)
