"""[T2] Paper Table II — parallel and distributed computing extensions.

Regenerates the table as a conformance matrix over SPMD probe programs on
4 PEs, then times the primitive costs on the runtime substrate: barrier
latency vs PE count, one-sided put/get, and lock acquire/release.
"""

import pytest

from repro import run_lolcode
from repro.lang.types import LolType
from repro.shmem import World, ShmemContext, run_spmd

from .conftest import lol, print_table

TABLE2_PROBES = [
    (
        "MAH FRENZ (PE count)",
        "VISIBLE MAH FRENZ",
        ["4\n"] * 4,
    ),
    (
        "ME (PE identity)",
        "VISIBLE ME",
        ["0\n", "1\n", "2\n", "3\n"],
    ),
    (
        "IM SRSLY MESIN WIF / DUN MESIN WIF",
        "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\nHUGZ\n"
        "IM SRSLY MESIN WIF x\nTXT MAH BFF 0, UR x R SUM OF UR x AN 1\n"
        "DUN MESIN WIF x\nHUGZ\n"
        "BOTH SAEM ME AN 0, O RLY?\nYA RLY,\n  VISIBLE x\nOIC",
        None,  # checked below: PE0 prints 4
    ),
    (
        "IM MESIN WIF ..., O RLY? (trylock)",
        "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
        "BOTH SAEM ME AN 0, O RLY?\nYA RLY,\n"
        "  IM MESIN WIF x, O RLY?\n  YA RLY,\n    VISIBLE \"WIN\"\n"
        "    DUN MESIN WIF x\n  OIC\nOIC",
        None,
    ),
    (
        "HUGZ (collective barrier)",
        "HUGZ\nHUGZ\nVISIBLE \"ok\"",
        ["ok\n"] * 4,
    ),
    (
        "TXT MAH BFF [expr], [stmt]",
        "WE HAS A a ITZ SRSLY A NUMBR\na R ME\nHUGZ\n"
        "I HAS A y ITZ A NUMBR\nTXT MAH BFF 0, y R UR a\nVISIBLE y",
        ["0\n"] * 4,
    ),
    (
        "TXT MAH BFF ... AN STUFF / TTYL",
        "WE HAS A a ITZ SRSLY A NUMBR\nWE HAS A b ITZ SRSLY A NUMBR\n"
        "a R 1\nb R 2\nHUGZ\nI HAS A s ITZ A NUMBR\n"
        "TXT MAH BFF 0 AN STUFF\n  s R SUM OF UR a AN UR b\nTTYL\nVISIBLE s",
        ["3\n"] * 4,
    ),
    (
        "ITZ SRSLY A (static typing)",
        "I HAS A x ITZ SRSLY A NUMBR\nx R 3.9\nVISIBLE x",
        ["3\n"] * 4,
    ),
    (
        "WE HAS A ... IM SHARIN IT",
        "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\nVISIBLE \"ok\"",
        ["ok\n"] * 4,
    ),
    (
        "WE HAS A ... LOTZ A ... THAR IZ",
        "WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 8\n"
        "a'Z 3 R ME\nHUGZ\nVISIBLE a'Z 3",
        ["0\n", "1\n", "2\n", "3\n"],
    ),
    (
        "UR / MAH qualifiers",
        "WE HAS A x ITZ SRSLY A NUMBR\nx R ME\nHUGZ\n"
        "I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
        "I HAS A y ITZ A NUMBR\nTXT MAH BFF k, y R SUM OF UR x AN MAH x\n"
        "VISIBLE y",
        ["1\n", "3\n", "5\n", "3\n"],
    ),
    (
        "[var]'Z [expr] indexing",
        "I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 4\n"
        "a'Z SUM OF 1 AN 1 R 9\nVISIBLE a'Z 2",
        ["9\n"] * 4,
    ),
]


def test_table2_conformance_matrix():
    rows = []
    for construct, body, expected in TABLE2_PROBES:
        result = run_lolcode(lol(body), 4, seed=1)
        if expected is not None:
            assert result.outputs == expected, (construct, result.outputs)
        elif "VISIBLE x" in body:
            assert result.outputs[0] == "4\n", (construct, result.outputs)
        else:
            assert result.outputs[0] == "WIN\n", (construct, result.outputs)
        rows.append([construct, "VERIFIED"])
    print_table(
        "Table II: parallel & distributed extensions (reproduced, 4 PEs)",
        ["construct", "status"],
        rows,
    )


@pytest.mark.benchmark(group="table2-barrier")
@pytest.mark.parametrize("n_pes", [2, 4, 8])
def test_barrier_latency(benchmark, n_pes):
    """HUGZ cost vs PE count on the thread executor (100 barriers)."""

    def worker(ctx: ShmemContext):
        for _ in range(100):
            ctx.barrier_all()

    def run():
        run_spmd(worker, n_pes)

    benchmark(run)


@pytest.mark.benchmark(group="table2-rma")
def test_put_get_cost(benchmark):
    """One-sided put+get round on 2 PEs (1000 rounds)."""

    def worker(ctx: ShmemContext):
        ctx.alloc_scalar("x", LolType.NUMBR)
        ctx.barrier_all()
        other = (ctx.my_pe + 1) % ctx.n_pes
        for i in range(1000):
            ctx.put("x", i, other)
            ctx.get("x", other)
        ctx.barrier_all()

    benchmark(lambda: run_spmd(worker, 2))


@pytest.mark.benchmark(group="table2-locks")
def test_lock_throughput(benchmark):
    """Contended lock acquire/release (4 PEs x 200 criticals)."""

    def worker(ctx: ShmemContext):
        ctx.alloc_scalar("c", LolType.NUMBR, has_lock=True)
        ctx.barrier_all()
        for _ in range(200):
            ctx.set_lock("c")
            ctx.put("c", int(ctx.get("c", 0)) + 1, 0)
            ctx.clear_lock("c")
        ctx.barrier_all()
        return ctx.local_read("c") if ctx.my_pe == 0 else None

    def run():
        r = run_spmd(worker, 4)
        assert r.returns[0] == 800

    benchmark(run)
