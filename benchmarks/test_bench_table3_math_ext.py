"""[T3] Paper Table III — additional LOLCODE extensions (math/random).

Regenerates the table by checking every keyword against its C-library
reference semantics (rand / randf / v*v / sqrt / 1/v) and times the math
kernel the n-body inner loop is built from.
"""

import math

import pytest

from repro.interp import run_serial
from repro.interp.values import unop

from .conftest import lol, print_table


def test_table3_conformance_matrix():
    rows = []

    # WHATEVR: rand() — integer in [0, 2^31-1)
    out = run_serial(lol("I HAS A r ITZ WHATEVR\nVISIBLE BOTH OF NOT "
                         "SMALLR r AN 0 AN SMALLR r AN 2147483647"))
    assert out == "WIN\n"
    rows.append(["WHATEVR", "rand()", "VERIFIED"])

    # WHATEVAR: randf() — float in [0, 1)
    out = run_serial(lol("I HAS A r ITZ WHATEVAR\nVISIBLE BOTH OF NOT "
                         "SMALLR r AN 0.0 AN SMALLR r AN 1.0"))
    assert out == "WIN\n"
    rows.append(["WHATEVAR", "randf()", "VERIFIED"])

    # SQUAR OF: var * var
    for v in (0, 3, -7, 2.5):
        assert unop("square", v) == v * v
    rows.append(["SQUAR OF [var]", "var * var", "VERIFIED"])

    # UNSQUAR OF: sqrt(var)
    for v in (0, 4, 81, 2.25):
        assert math.isclose(unop("sqrt", v), math.sqrt(v))
    rows.append(["UNSQUAR OF [var]", "sqrt(var)", "VERIFIED"])

    # FLIP OF: 1/var
    for v in (1, 4, 0.5, -2):
        assert math.isclose(unop("recip", v), 1.0 / v)
    rows.append(["FLIP OF [var]", "1/var", "VERIFIED"])

    print_table(
        "Table III: additional LOLCODE extensions (reproduced)",
        ["keyword", "reference semantics", "status"],
        rows,
    )


NBODY_KERNEL = lol(
    "I HAS A acc ITZ SRSLY A NUMBAR\n"
    "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 2000\n"
    "  I HAS A dx ITZ SUM OF 1.5 AN MAEK i A NUMBAR\n"
    "  I HAS A dy ITZ 2.5\n"
    "  I HAS A inv_d ITZ FLIP OF UNSQUAR OF SUM OF SQUAR OF dx "
    "AN SQUAR OF dy\n"
    "  acc R SUM OF acc AN PRODUKT OF inv_d AN SQUAR OF inv_d\n"
    "IM OUTTA YR l\n"
    "VISIBLE acc"
)


@pytest.mark.benchmark(group="table3")
def test_math_kernel_interpreter(benchmark):
    """The 1/d^3 kernel from Section VI.D, interpreted."""
    out = benchmark(run_serial, NBODY_KERNEL)
    assert out.strip() != ""


@pytest.mark.benchmark(group="table3")
def test_math_kernel_compiled(benchmark):
    """Same kernel through the compiled-Python backend (ablation of the
    paper's interpreter-vs-compiler claim at expression level)."""
    from repro import run_lolcode

    def run():
        return run_lolcode(NBODY_KERNEL, 1, engine="compiled").output

    out = benchmark(run)
    assert out == run_serial(NBODY_KERNEL)
