#!/usr/bin/env python3
"""1-D heat diffusion on a ring with halo exchange — the classic
distributed-memory stencil, written in parallel LOLCODE.

This is the workload every parallel-programming course teaches right
after "hello world": each PE owns a block of a periodic 1-D ring with a
maintained hot cell on PE 0, and each timestep needs one boundary cell
from each neighbour (the *halo*).  The paper's extensions express it
naturally:

* the rod block + halo lives in a symmetric array (`WE HAS A ...`),
* halo exchange is two predicated one-sided puts (`TXT MAH BFF`),
* `HUGZ` separates exchange from compute (exactly Figure 2's lesson).

Afterwards the run's op trace is rendered as a communication matrix —
you can *see* the nearest-neighbour pattern — and replayed on the
Epiphany/Cray models.

Usage::

    python examples/heat_diffusion.py [--pes 4] [--cells 16] [--steps 40]
"""

import argparse

from repro import run_lolcode
from repro.noc import cray_xc40, epiphany_iii
from repro.noc.report import render_report

# Cells are stored in slots 1..N of a symmetric array; slots 0 and N+1
# are the halo cells owned by the neighbours.
HEAT_LOL = """\
HAI 1.2
WE HAS A u ITZ SRSLY LOTZ A NUMBARS AN THAR IZ {halo_size}
I HAS A unew ITZ LOTZ A NUMBARS AN THAR IZ {halo_size}

I HAS A left ITZ MOD OF SUM OF ME AN DIFF OF MAH FRENZ AN 1 AN MAH FRENZ
I HAS A rite ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ

BTW initial condition: PE 0's first cell is hot (u=100), rest cold
BOTH SAEM ME AN 0, O RLY?
YA RLY,
  u'Z 1 R 100.0
OIC
HUGZ

IM IN YR step UPPIN YR t TIL BOTH SAEM t AN {steps}
  BTW halo exchange: push my boundary cells into my neighbours' halos
  TXT MAH BFF left, UR u'Z {last_halo} R MAH u'Z 1
  TXT MAH BFF rite, UR u'Z 0 R MAH u'Z {cells}
  HUGZ

  BTW explicit Euler: unew[i] = u[i] + k*(u[i-1] - 2u[i] + u[i+1])
  IM IN YR cell UPPIN YR i TIL BOTH SAEM i AN {cells}
    I HAS A c ITZ SUM OF i AN 1
    I HAS A lap ITZ SUM OF u'Z DIFF OF c AN 1 AN u'Z SUM OF c AN 1
    lap R DIFF OF lap AN PRODUKT OF 2.0 AN u'Z c
    unew'Z c R SUM OF u'Z c AN PRODUKT OF 0.25 AN lap
  IM OUTTA YR cell

  BTW PE 0's first cell is a maintained heat source (stays at 100)
  BOTH SAEM ME AN 0, O RLY?
  YA RLY,
    unew'Z 1 R u'Z 1
  OIC

  HUGZ
  IM IN YR copy UPPIN YR i TIL BOTH SAEM i AN {cells}
    u'Z SUM OF i AN 1 R unew'Z SUM OF i AN 1
  IM OUTTA YR copy
  HUGZ
IM OUTTA YR step

I HAS A total ITZ SRSLY A NUMBAR
IM IN YR add UPPIN YR i TIL BOTH SAEM i AN {cells}
  total R SUM OF total AN u'Z SUM OF i AN 1
IM OUTTA YR add
VISIBLE "PE " ME " BLOCK HEAT:: " total
KTHXBYE
"""


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--pes", type=int, default=4)
    parser.add_argument("--cells", type=int, default=16, help="cells per PE")
    parser.add_argument("--steps", type=int, default=40)
    args = parser.parse_args()

    src = HEAT_LOL.format(
        cells=args.cells,
        halo_size=args.cells + 2,
        last_halo=args.cells + 1,
        steps=args.steps,
    )
    result = run_lolcode(src, args.pes, seed=1, trace=True)
    print(result.output, end="")
    heats = [float(out.split(":")[1]) for out in result.outputs]
    print(
        f"\ntotal heat in ring: {sum(heats):.2f} "
        f"(diffusing both ways from the source on PE 0)\n"
    )
    print(render_report(result.trace, [epiphany_iii(), cray_xc40()]))


if __name__ == "__main__":
    main()
