#!/usr/bin/env python3
"""1-D heat diffusion on a ring with halo exchange — the classic
distributed-memory stencil, written in parallel LOLCODE.

This is the workload every parallel-programming course teaches right
after "hello world": each PE owns a block of a periodic 1-D ring with a
maintained hot cell on PE 0, and each timestep needs one boundary cell
from each neighbour (the *halo*).  The paper's extensions express it
naturally:

* the rod block + halo lives in a symmetric array (`WE HAS A ...`),
* halo exchange is two predicated one-sided puts (`TXT MAH BFF`),
* `HUGZ` separates exchange from compute (exactly Figure 2's lesson).

The kernel itself comes from the workload registry (the ``heat1d``
workload in :mod:`repro.workloads`), so this example, the ``lolbench``
orchestrator, and the test suite all run the same source and cannot
drift.  Afterwards the run's op trace is rendered as a communication
matrix — you can *see* the nearest-neighbour pattern — and replayed on
the Epiphany/Cray models.

Usage::

    python examples/heat_diffusion.py [--pes 4] [--cells 16] [--steps 40]
"""

import argparse

from repro import run_lolcode
from repro.noc import cray_xc40, epiphany_iii
from repro.noc.report import render_report
from repro.workloads import get_workload


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--pes", type=int, default=4)
    parser.add_argument("--cells", type=int, default=16, help="cells per PE")
    parser.add_argument("--steps", type=int, default=40)
    args = parser.parse_args()

    heat = get_workload("heat1d")
    params = heat.bind_params({"cells": args.cells, "steps": args.steps})
    result = run_lolcode(heat.source(params), args.pes, seed=1, trace=True)
    print(result.output, end="")

    problems = heat.check(result, args.pes, params)
    if problems:
        raise SystemExit(f"registry checker failed: {problems}")
    heats = [float(out.split(":")[1]) for out in result.outputs]
    print(
        f"\ntotal heat in ring: {sum(heats):.2f} "
        f"(diffusing both ways from the source on PE 0; "
        f"verified against the registry checker)\n"
    )
    print(render_report(result.trace, [epiphany_iii(), cray_xc40()]))


if __name__ == "__main__":
    main()
