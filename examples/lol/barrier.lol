HAI 1.2
BTW Section VI.C / Figure 2 - barriers make message passing
BTW deterministic: each PE publishes a, waits at HUGZ, then reads teh
BTW left neighbor's a.  Wifout teh barrier a fast PE reads b before
BTW teh neighbor's write has landed.
CAN HAS STDIO?
WE HAS A a ITZ SRSLY A NUMBR
I HAS A pe ITZ A NUMBR AN ITZ ME
a R SUM OF pe AN 1
HUGZ
I HAS A left ITZ A NUMBR ...
  AN ITZ MOD OF SUM OF pe AN DIFF OF MAH FRENZ AN 1 AN MAH FRENZ
I HAS A b ITZ A NUMBR
TXT MAH BFF left, b R UR a
I HAS A c ITZ SUM OF a AN b
VISIBLE "PE :{pe}:: a=:{a} b=:{b} c=:{c}"
KTHXBYE
