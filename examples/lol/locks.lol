HAI 1.2
BTW Section VI.B - parallel synchronization wif locks.
BTW All PEs bump teh countr living on PE 0, 100 times each, holding
BTW teh implied global lock uv teh symbol (AN IM SHARIN IT).
CAN HAS STDIO?
WE HAS A countr ITZ SRSLY A NUMBR AN IM SHARIN IT
HUGZ
IM IN YR incloop UPPIN YR i TIL BOTH SAEM i AN 100
  IM SRSLY MESIN WIF countr
  TXT MAH BFF 0, UR countr R SUM OF UR countr AN 1
  DUN MESIN WIF countr
IM OUTTA YR incloop
HUGZ
I HAS A expektd ITZ PRODUKT OF MAH FRENZ AN 100
BOTH SAEM ME AN 0
O RLY?
  YA RLY
    VISIBLE "TEH COUNTR SEZ :{countr} (SHUD B :{expektd})"
OIC
KTHXBYE
