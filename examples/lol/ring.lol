HAI 1.2
BTW Section VI.A - initialization and symmetric memory allocation.
BTW Every PE publishes ME*1000 in slot 0 of its partition of a
BTW symmetric array, then reads slot 0 of the next PE around the ring.
CAN HAS STDIO?
I HAS A pe ITZ A NUMBR AN ITZ ME
I HAS A n_pes ITZ A NUMBR AN ITZ MAH FRENZ
WE HAS A buket ITZ SRSLY LOTZ A NUMBRS ...
  AN THAR IZ 32
I HAS A next_pe ITZ A NUMBR ...
  AN ITZ SUM OF pe AN 1
next_pe R MOD OF next_pe AN n_pes
buket'Z 0 R PRODUKT OF pe AN 1000
HUGZ
I HAS A got ITZ A NUMBR
TXT MAH BFF next_pe, got R UR buket'Z 0
VISIBLE "HAI ITZ :{pe} I GOT :{got} FRUM MAH BFF :{next_pe}"
KTHXBYE
