#!/usr/bin/env python3
"""The paper's flagship demo: the parallel 2-D n-body application,
strong-scaled over PE counts and projected onto the paper's hardware.

Runs the (race-fixed) Section VI.D listing on 1/2/4 PEs with both the
interpreter and the compiled backend, measures wall-clock, then replays
the op trace against the Epiphany-III and Cray XC40 machine models —
the "runs on a $99 board and a $30M supercomputer" claim, in model form.

Usage::

    python examples/nbody_scaling.py [--pes 1 2 4] [--particles 16] [--steps 4]
"""

import argparse
import time

from repro import run_lolcode
from repro.noc import cray_xc40, epiphany_iii, estimate
from repro.workloads import nbody_source as load_nbody


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--pes", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--particles", type=int, default=16)
    parser.add_argument("--steps", type=int, default=4)
    args = parser.parse_args()

    src = load_nbody(args.particles, args.steps)
    print(
        f"2-D n-body: {args.particles} particles/PE, {args.steps} steps "
        f"(paper Section VI.D)\n"
    )
    print(f"{'PEs':>4} {'interp[s]':>10} {'compiled[s]':>12} {'speedup':>8}")
    traces = {}
    for n in args.pes:
        t0 = time.perf_counter()
        ri = run_lolcode(src, n, seed=42, trace=True)
        ti = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_lolcode(src, n, seed=42, engine="compiled")
        tc = time.perf_counter() - t0
        traces[n] = ri.trace
        print(f"{n:>4} {ti:>10.3f} {tc:>12.3f} {ti / tc:>8.2f}x")

    print("\nModeled execution on the paper's hardware (trace replay):")
    print(f"{'PEs':>4} {'machine':<34} {'makespan':>12} {'comm%':>7}")
    for n in args.pes:
        for machine in (epiphany_iii(), cray_xc40()):
            est = estimate(traces[n], machine)
            print(
                f"{n:>4} {machine.name:<34} {est.makespan_s * 1e3:>10.3f}ms"
                f" {est.comm_fraction() * 100:>6.1f}%"
            )

    print(
        "\nNote: per-PE work is fixed (SPMD weak-ish scaling as in the "
        "paper), so remote traffic grows with PEs while local compute "
        "stays constant — watch comm% rise."
    )


if __name__ == "__main__":
    main()
