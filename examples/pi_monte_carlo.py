#!/usr/bin/env python3
"""Classic classroom workload on the parallel LOLCODE stack: Monte-Carlo
estimation of pi, with the partial sums combined through the PGAS model.

Every PE throws darts with its own WHATEVAR stream, writes its hit count
into a symmetric array slot on PE 0 (one-sided put — no receive code,
the PGAS teaching point), and PE 0 reduces after a HUGZ.

The kernel comes from the workload registry (the ``pi_montecarlo``
workload in :mod:`repro.workloads`), so this example and the bench
orchestrator always run the same source.

Also demonstrates the process executor: with ``--executor process`` the
same program runs on real OS processes over shared memory.

Usage::

    python examples/pi_monte_carlo.py [--pes 8] [--darts 20000]
    python examples/pi_monte_carlo.py --executor process
"""

import argparse

from repro import run_lolcode
from repro.workloads import get_workload


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--pes", type=int, default=8)
    parser.add_argument("--darts", type=int, default=20_000)
    parser.add_argument(
        "--executor", choices=("thread", "process"), default="thread"
    )
    parser.add_argument("--seed", type=int, default=2017)
    args = parser.parse_args()

    pi = get_workload("pi_montecarlo")
    params = pi.bind_params({"darts": args.darts})
    result = run_lolcode(
        pi.source(params), args.pes, executor=args.executor, seed=args.seed
    )
    print(result.output, end="")

    problems = pi.check(result, args.pes, params)
    if problems:
        raise SystemExit(f"registry checker failed: {problems}")
    print(
        f"({args.pes} PEs x {args.darts} darts on the "
        f"{args.executor} executor)"
    )


if __name__ == "__main__":
    main()
