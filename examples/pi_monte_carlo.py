#!/usr/bin/env python3
"""Classic classroom workload on the parallel LOLCODE stack: Monte-Carlo
estimation of pi, with the partial sums combined through the PGAS model.

Every PE throws darts with its own WHATEVAR stream, writes its hit count
into a symmetric array slot on PE 0 (one-sided put — no receive code,
the PGAS teaching point), and PE 0 reduces after a HUGZ.

Also demonstrates the process executor: with ``--executor process`` the
same program runs on real OS processes over shared memory.

Usage::

    python examples/pi_monte_carlo.py [--pes 8] [--darts 20000]
    python examples/pi_monte_carlo.py --executor process
"""

import argparse

from repro import run_lolcode

PI_LOL = """\
HAI 1.2
BTW one symmetric slot per PE, all living on PE 0's partition view
WE HAS A hits ITZ SRSLY LOTZ A NUMBRS AN THAR IZ {pes}
I HAS A mine ITZ A NUMBR AN ITZ 0

IM IN YR throw UPPIN YR i TIL BOTH SAEM i AN {darts}
  I HAS A x ITZ WHATEVAR
  I HAS A y ITZ WHATEVAR
  I HAS A d ITZ SUM OF SQUAR OF x AN SQUAR OF y
  SMALLR d AN 1.0, O RLY?
  YA RLY,
    mine R SUM OF mine AN 1
  OIC
IM OUTTA YR throw

BTW one-sided put of my tally into slot ME on PE 0
TXT MAH BFF 0, UR hits'Z ME R mine

HUGZ

BOTH SAEM ME AN 0, O RLY?
YA RLY,
  I HAS A total ITZ A NUMBR AN ITZ 0
  IM IN YR add UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
    total R SUM OF total AN hits'Z k
  IM OUTTA YR add
  I HAS A pi ITZ QUOSHUNT OF PRODUKT OF 4.0 AN total ...
    AN PRODUKT OF {darts}.0 AN MAH FRENZ
  VISIBLE "PI IZ BOUT " pi " (" total " HITZ OV " ...
    PRODUKT OF {darts} AN MAH FRENZ " DARTZ)"
OIC
KTHXBYE
"""


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--pes", type=int, default=8)
    parser.add_argument("--darts", type=int, default=20_000)
    parser.add_argument(
        "--executor", choices=("thread", "process"), default="thread"
    )
    parser.add_argument("--seed", type=int, default=2017)
    args = parser.parse_args()

    src = PI_LOL.format(pes=args.pes, darts=args.darts)
    result = run_lolcode(
        src, args.pes, executor=args.executor, seed=args.seed
    )
    print(result.output, end="")
    print(
        f"({args.pes} PEs x {args.darts} darts on the "
        f"{args.executor} executor)"
    )


if __name__ == "__main__":
    main()
