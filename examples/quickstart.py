#!/usr/bin/env python3
"""Quickstart: I CAN HAS SUPERCOMPUTER? in five minutes.

Runs a parallel "hello world" and the paper's Figure 2 barrier example
through the public API, shows the compiled-to-C output a student would
inspect, and demonstrates the race detector on the unsynchronized variant.

Usage::

    python examples/quickstart.py
"""

from repro import run_lolcode
from repro.compiler import compile_c, compile_python

HELLO = """\
HAI 1.2
BTW every PE runs this same program (SPMD)
VISIBLE "O HAI! I IZ PE " ME " OF " MAH FRENZ
KTHXBYE
"""

FIGURE2 = """\
HAI 1.2
WE HAS A a ITZ SRSLY A NUMBR
WE HAS A b ITZ SRSLY A NUMBR
a R SUM OF ME AN 1
HUGZ
I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ
TXT MAH BFF k, UR b R MAH a
{barrier}
I HAS A c ITZ SUM OF a AN b
VISIBLE "PE " ME " HAZ c=" c
KTHXBYE
"""


def main() -> None:
    print("=== 1. SPMD hello world on 8 PEs " + "=" * 30)
    result = run_lolcode(HELLO, n_pes=8)
    print(result.output, end="")

    print("\n=== 2. Figure 2: symmetric data movement with HUGZ " + "=" * 12)
    result = run_lolcode(FIGURE2.format(barrier="HUGZ"), n_pes=4, seed=1)
    print(result.output, end="")

    print("\n=== 3. The same program WITHOUT the barrier (race!) " + "=" * 11)
    racy = run_lolcode(
        FIGURE2.format(barrier="BTW (HUGZ removed)"),
        n_pes=4,
        seed=1,
        race_detection=True,
    )
    print(racy.output, end="")
    for report in racy.races[:3]:
        print("  [race detector]", report.describe())

    print("\n=== 4. What lcc would emit for the Cray (C + OpenSHMEM) " + "=" * 7)
    c_code = compile_c(FIGURE2.format(barrier="HUGZ"))
    interesting = [
        line
        for line in c_code.splitlines()
        if "shmem_" in line and "inline" not in line and "#" not in line
    ]
    for line in interesting:
        print("   ", line.strip())

    print("\n=== 5. ...and the runnable Python it compiles to here " + "=" * 9)
    py_code = compile_python(FIGURE2.format(barrier="HUGZ"))
    for line in py_code.splitlines():
        if "ctx." in line:
            print("   ", line.strip())


if __name__ == "__main__":
    main()
