from setuptools import find_packages, setup

setup(
    name="repro-lolcode",
    version="1.0.0",
    description="Reproduction of 'I Can Has Supercomputer?' — parallel "
    "LOLCODE over an OpenSHMEM-like SPMD/PGAS runtime",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={
        "repro.workloads": ["lol/*.lol"],
        # The bundled single-node SHMEM shim the native engine builds
        # generated C against (engine="c" / lolcc --build).
        "repro.compiler": ["lol_shmem_shim.c", "lol_shmem_shim.h"],
    },
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "lcc=repro.cli:lcc_main",
            "lolcc=repro.cli:lolcc_main",
            "loli=repro.cli:loli_main",
            "loldis=repro.cli:loldis_main",
            "lolrun=repro.cli:lolrun_main",
            "lollint=repro.cli:lollint_main",
            "lolfmt=repro.cli:lolfmt_main",
            "lolbench=repro.cli:lolbench_main",
            "lolserve=repro.cli:lolserve_main",
            "loltrace=repro.cli:loltrace_main",
            "lolprof=repro.cli:lolprof_main",
            "lolfuzz=repro.cli:lolfuzz_main",
        ]
    },
)
