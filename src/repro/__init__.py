"""repro — a reproduction of "I Can Has Supercomputer?" (Richie & Ross, 2017).

Parallel and distributed extensions to LOLCODE in a SPMD/PGAS model:

* :mod:`repro.lang` — lexer, parser, AST, type system;
* :mod:`repro.interp` — SPMD-aware tree-walking interpreter;
* :mod:`repro.compiler` — source-to-source compilers (LOLCODE -> C with
  OpenSHMEM, like the paper's ``lcc``; and LOLCODE -> Python targeting the
  bundled runtime);
* :mod:`repro.shmem` — OpenSHMEM-like runtime substrate (symmetric heap,
  barriers, locks, collectives; thread and process executors);
* :mod:`repro.noc` — Epiphany-III / Cray XC40 machine models for trace-
  driven performance estimation;
* :mod:`repro.launcher` — the ``lolrun`` SPMD launcher.

Quickstart::

    from repro import run_lolcode
    result = run_lolcode('''HAI 1.2
    VISIBLE "HAI ITZ " ME " OF " MAH FRENZ
    KTHXBYE''', n_pes=4)
    print(result.output)
"""

from .lang import LolError, LolType, parse, tokenize
from .interp import Interpreter, interpret, run_serial
from .launcher import run_file, run_lolcode
from .shmem import ShmemContext, SpmdResult, World, run_spmd, run_spmd_procs

__version__ = "1.0.0"

__all__ = [
    "LolError",
    "LolType",
    "parse",
    "tokenize",
    "Interpreter",
    "interpret",
    "run_serial",
    "run_file",
    "run_lolcode",
    "ShmemContext",
    "SpmdResult",
    "World",
    "run_spmd",
    "run_spmd_procs",
    "__version__",
]
