"""Path-sensitive static analysis over parallel LOLCODE.

The package builds control-flow graphs over :mod:`repro.lang.ast`
(:mod:`.cfg`), solves iterative dataflow problems on them
(:mod:`.dataflow`), and derives diagnostics that the old straight-line
checker could only guess at:

* :mod:`.pe_taint` — PE-dependence abstract interpretation and the
  barrier-matching verdict (``W101``),
* :mod:`.locks` — may/must lock-release analysis (``W103`` /
  ``W105`` / ``W106``),
* :mod:`.races` — barrier-epoch static happens-before (``W102``),
* :mod:`.bounds` — interval/affine analysis of symmetric array indices
  and PE targets (``E008`` / ``W107``),
* :mod:`.facts` — :class:`ProgramFacts` consumed by the engines.

:func:`analyze_program` runs the full stack and returns the combined,
position-sorted diagnostic list; :func:`repro.lang.checker.check_program`
calls it after its scope/type pass, so every entry point (``lollint``,
``run_lolcode(check=...)``, ``lcc --check``) sees one unified report.
"""

from __future__ import annotations

from ..lang import ast
from .bounds import BoundsResult, analyze_bounds
from .cfg import CFG, BasicBlock, build_cfg, build_program_cfgs
from .dataflow import ForwardAnalysis, run_forward
from .diagnostics import (
    Diagnostic,
    FixIt,
    render_json,
    render_sarif,
    sort_key,
)
from .facts import ProgramFacts, compute_facts
from .locks import check_locks
from .pe_taint import TaintResult, analyze_taint, check_barriers
from .races import check_races

__all__ = [
    "CFG",
    "BasicBlock",
    "BoundsResult",
    "Diagnostic",
    "FixIt",
    "ForwardAnalysis",
    "ProgramFacts",
    "TaintResult",
    "analyze_bounds",
    "analyze_program",
    "analyze_taint",
    "build_cfg",
    "build_program_cfgs",
    "check_barriers",
    "check_locks",
    "check_races",
    "compute_facts",
    "render_json",
    "render_sarif",
    "run_forward",
    "sort_key",
]


def analyze_program(program: ast.Program) -> list[Diagnostic]:
    """Run every CFG-based analysis; diagnostics sorted by position."""
    taint = analyze_taint(program)
    bounds = analyze_bounds(program)
    diags: list[Diagnostic] = []
    diags.extend(check_barriers(taint))
    diags.extend(check_locks(taint))
    diags.extend(bounds.diags)
    diags.extend(check_races(taint, bounds))
    return sorted(diags, key=sort_key)
