"""Constant-fold / interval analysis over indices and PE targets.

The value domain is affine in the SPMD parameters:

* ``Aff(me, np, c)`` — exactly ``me*ME + np*NP + c`` (``NP`` is
  ``MAH FRENZ``), so neighbour math like ``DIFF OF ME AN 1`` stays
  symbolic;
* ``Rng(lo, hi)`` — an interval whose bounds are :class:`Lin` forms
  ``np*NP + c`` (``ME`` is eliminated through the current refined
  ``ME``-range, which starts at ``[0, NP-1]``);
* ``None`` — unknown.

The walk is *path-refining*: ``O RLY?`` arms guarded by comparisons on
``ME`` (or on a variable holding an affine value) narrow the ranges, so
the canonical guarded halo exchange

.. code-block:: text

    BIGGER ME AN 0
    O RLY?  YA RLY, TXT MAH BFF up, ...  OIC

verifies (``up = ME-1 ∈ [0, NP-2]`` inside the arm).  Quantification is
over every world size ``NP >= 1``: a bound like ``NP-2`` is accepted
against ``NP-1`` because ``NP-2 <= NP-1`` for all ``NP``.

Diagnostics: ``E008`` for *definitely* out-of-range indices / PE
targets (provably outside for every ``NP``), ``W107`` when a fully
bounded range cannot be proven in-range.  Unknown or half-bounded
values stay silent — this keeps data-dependent kernels (tree reduction
strides, random histogram bins) quiet by construction.

As a side product the walk annotates every array access and ``TXT MAH
BFF`` target with its :class:`Rng` (``BoundsResult.index_ranges`` /
``pe_ranges``), which the barrier-epoch race analysis uses for
disjointness proofs on halo patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..lang import ast
from .diagnostics import Diagnostic

# ---------------------------------------------------------------------------
# The domain
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Lin:
    """``np*NP + c`` with integer coefficients."""

    np: int
    c: int

    def __add__(self, other: "Lin") -> "Lin":
        return Lin(self.np + other.np, self.c + other.c)

    def __sub__(self, other: "Lin") -> "Lin":
        return Lin(self.np - other.np, self.c - other.c)

    def scale(self, k: int) -> "Lin":
        return Lin(self.np * k, self.c * k)

    def shift(self, k: int) -> "Lin":
        return Lin(self.np, self.c + k)


def lin_le(a: Lin, b: Lin) -> bool:
    """``a <= b`` for every ``NP >= 1``?"""
    d = b - a
    return d.np >= 0 and d.np + d.c >= 0


def lin_lt(a: Lin, b: Lin) -> bool:
    return lin_le(a.shift(1), b)


def lin_max(a: Lin, b: Lin) -> Optional[Lin]:
    if lin_le(a, b):
        return b
    if lin_le(b, a):
        return a
    return None


def lin_min(a: Lin, b: Lin) -> Optional[Lin]:
    if lin_le(a, b):
        return a
    if lin_le(b, a):
        return b
    return None


@dataclass(frozen=True, slots=True)
class Aff:
    """``me*ME + np*NP + c`` exactly."""

    me: int
    np: int
    c: int

    @property
    def is_const(self) -> bool:
        return self.me == 0 and self.np == 0

    def lin(self) -> Optional[Lin]:
        return Lin(self.np, self.c) if self.me == 0 else None


@dataclass(frozen=True, slots=True)
class Rng:
    """Interval with optional (``None`` = unbounded) :class:`Lin` bounds."""

    lo: Optional[Lin]
    hi: Optional[Lin]

    @property
    def bounded(self) -> bool:
        return self.lo is not None and self.hi is not None


Value = Union[Aff, Rng, None]

FULL = Rng(None, None)


def const(v: int) -> Aff:
    return Aff(0, 0, v)


def rng_of(value: Value, me: tuple[Lin, Lin]) -> Rng:
    """Eliminate ``ME`` from a value using the current ``ME``-range."""
    if value is None:
        return FULL
    if isinstance(value, Rng):
        return value
    me_lo, me_hi = me
    base = Lin(value.np, value.c)
    if value.me == 0:
        return Rng(base, base)
    if value.me > 0:
        return Rng(
            me_lo.scale(value.me) + base, me_hi.scale(value.me) + base
        )
    return Rng(me_hi.scale(value.me) + base, me_lo.scale(value.me) + base)


def ranges_may_overlap(a: Optional[Rng], b: Optional[Rng]) -> bool:
    """May two index ranges touch the same element (any ``NP >= 1``)?"""
    if a is None or b is None:
        return True
    if a.hi is not None and b.lo is not None and lin_lt(a.hi, b.lo):
        return False
    if b.hi is not None and a.lo is not None and lin_lt(b.hi, a.lo):
        return False
    return True


def _add_vals(a: Value, b: Value, me: tuple[Lin, Lin], sign: int) -> Value:
    if isinstance(a, Aff) and isinstance(b, Aff):
        return Aff(a.me + sign * b.me, a.np + sign * b.np, a.c + sign * b.c)
    ra, rb = rng_of(a, me), rng_of(b, me)
    if sign < 0:
        rb = Rng(
            rb.hi.scale(-1) if rb.hi is not None else None,
            rb.lo.scale(-1) if rb.lo is not None else None,
        )
    lo = ra.lo + rb.lo if ra.lo is not None and rb.lo is not None else None
    hi = ra.hi + rb.hi if ra.hi is not None and rb.hi is not None else None
    if lo is None and hi is None:
        return None
    return Rng(lo, hi)


def _mul_vals(a: Value, b: Value, me: tuple[Lin, Lin]) -> Value:
    # only scaling by a known constant is modelled
    for x, y in ((a, b), (b, a)):
        if isinstance(x, Aff) and x.is_const:
            k = x.c
            if isinstance(y, Aff):
                return Aff(y.me * k, y.np * k, y.c * k)
            r = rng_of(y, me)
            if k == 0:
                return const(0)
            lo = r.lo.scale(k) if r.lo is not None else None
            hi = r.hi.scale(k) if r.hi is not None else None
            if k < 0:
                lo, hi = hi, lo
            if lo is None and hi is None:
                return None
            return Rng(lo, hi)
    return None


def _mod_vals(a: Value, b: Value) -> Value:
    # Python-style % with a positive divisor lands in [0, divisor-1]
    if isinstance(b, Aff) and b.me == 0:
        d = Lin(b.np, b.c)
        if lin_le(Lin(0, 1), d):  # divisor >= 1 for every NP
            return Rng(Lin(0, 0), d.shift(-1))
    return None


def _meet(a: Value, b: Value, me: tuple[Lin, Lin]) -> Value:
    if a is None:
        return b
    if b is None:
        return a
    if isinstance(a, Aff) and isinstance(b, Aff):
        return a  # equal or dead path; keep the existing fact
    ra, rb = rng_of(a, me), rng_of(b, me)
    lo = ra.lo if rb.lo is None else (rb.lo if ra.lo is None else None)
    if ra.lo is not None and rb.lo is not None:
        lo = lin_max(ra.lo, rb.lo) or ra.lo
    hi = ra.hi if rb.hi is None else (rb.hi if ra.hi is None else None)
    if ra.hi is not None and rb.hi is not None:
        hi = lin_min(ra.hi, rb.hi) or ra.hi
    if isinstance(a, Aff) and a.me != 0:
        return a  # keep the exact ME-form over a coarser interval
    return Rng(lo, hi)


# ---------------------------------------------------------------------------
# The walk
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class _Decl:
    name: str
    symmetric: bool
    is_array: bool
    size: Value


@dataclass(frozen=True, slots=True)
class BoundsResult:
    diags: list[Diagnostic]
    #: id(ast.Index) -> element range of the access (None = unknown)
    index_ranges: dict[int, Optional[Rng]]
    #: id(ast.TxtStmt) -> PE-target range (None = unknown)
    pe_ranges: dict[int, Optional[Rng]]


_ME_FULL: tuple[Lin, Lin] = (Lin(0, 0), Lin(1, -1))


class BoundsAnalyzer:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.diags: list[Diagnostic] = []
        self._seen: set[tuple[str, int, int, str]] = set()
        self.env: dict[str, Value] = {}
        self.me: tuple[Lin, Lin] = _ME_FULL
        self.decls: dict[str, _Decl] = {}
        self.index_ranges: dict[int, Optional[Rng]] = {}
        self.pe_ranges: dict[int, Optional[Rng]] = {}
        self._last_it: Optional[ast.Expr] = None

    def run(self) -> BoundsResult:
        self._body(self.program.body)
        for stmt in ast.walk_statements(self.program.body):
            if isinstance(stmt, ast.FuncDef):
                self.env = {p: None for p in stmt.params}
                self.me = _ME_FULL
                self._last_it = None
                self._body(stmt.body)
        return BoundsResult(self.diags, self.index_ranges, self.pe_ranges)

    # -- reporting -----------------------------------------------------

    def _report(self, code: str, message: str, pos: object) -> None:
        from ..lang.errors import SourcePos

        assert isinstance(pos, SourcePos)
        key = (code, pos.line, pos.col, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.diags.append(Diagnostic(code, message, pos))

    # -- expression evaluation (with access checking) ------------------

    def eval(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLit):
            return const(expr.value)
        if isinstance(expr, ast.TroofLit):
            return const(1 if expr.value else 0)
        if isinstance(expr, ast.MeExpr):
            return Aff(1, 0, 0)
        if isinstance(expr, ast.FrenzExpr):
            return Aff(0, 1, 0)
        if isinstance(expr, ast.VarRef):
            if expr.qualifier == "UR":
                return None
            return self.env.get(expr.name)
        if isinstance(expr, ast.Index):
            self._check_index(expr)
            return None
        if isinstance(expr, ast.BinOp):
            lhs = self.eval(expr.lhs)
            rhs = self.eval(expr.rhs)
            if expr.op == "add":
                return _add_vals(lhs, rhs, self.me, 1)
            if expr.op == "sub":
                return _add_vals(lhs, rhs, self.me, -1)
            if expr.op == "mul":
                return _mul_vals(lhs, rhs, self.me)
            if expr.op == "mod":
                return _mod_vals(lhs, rhs)
            return None
        if isinstance(expr, ast.UnaryOp):
            self.eval(expr.operand)
            return None
        if isinstance(expr, ast.NaryOp):
            for op in expr.operands:
                self.eval(op)
            return None
        if isinstance(expr, ast.Cast):
            inner = self.eval(expr.expr)
            if expr.to_type == "NUMBR" and isinstance(inner, (Aff, Rng)):
                return inner  # already integral in the domain
            return None
        if isinstance(expr, ast.SrsRef):
            self.eval(expr.expr)
            return None
        if isinstance(expr, ast.FuncCall):
            for a in expr.args:
                self.eval(a)
            return None
        return None  # literals/It/Random: unknown or uninteresting

    # -- access checks -------------------------------------------------

    def _check_index(self, node: ast.Index) -> None:
        value = self.eval(node.index)
        rng = rng_of(value, self.me)
        self.index_ranges[id(node)] = rng if rng != FULL else None
        base = node.base
        if not isinstance(base, ast.VarRef):
            return
        decl = self.decls.get(base.name)
        if decl is None or not decl.is_array:
            return
        size = decl.size
        if not isinstance(size, Aff) or size.me != 0:
            return
        limit = Lin(size.np, size.c - 1)  # size - 1
        self._check_range(
            rng,
            limit,
            node.pos,
            what=f"index into '{base.name}'",
            bound=f"0..{_fmt_lin(limit)}",
        )

    def _check_pe_target(self, stmt: ast.TxtStmt) -> None:
        value = self.eval(stmt.pe)
        rng = rng_of(value, self.me)
        self.pe_ranges[id(stmt)] = rng if rng != FULL else None
        limit = Lin(1, -1)  # MAH FRENZ - 1
        self._check_range(
            rng,
            limit,
            stmt.pos,
            what="TXT MAH BFF target PE",
            bound="0..MAH FRENZ-1",
        )

    def _check_range(
        self,
        rng: Rng,
        limit: Lin,
        pos: object,
        *,
        what: str,
        bound: str,
    ) -> None:
        zero = Lin(0, 0)
        lo_ok = rng.lo is not None and lin_le(zero, rng.lo)
        hi_ok = rng.hi is not None and lin_le(rng.hi, limit)
        if lo_ok and hi_ok:
            return
        # definitely out: the whole range below 0 or above the limit
        if rng.hi is not None and lin_lt(rng.hi, zero):
            self._report(
                "E008", f"{what} is always negative (valid: {bound})", pos
            )
            return
        if rng.lo is not None and lin_lt(limit, rng.lo):
            self._report(
                "E008",
                f"{what} is always past the end (valid: {bound})",
                pos,
            )
            return
        if rng.bounded:
            self._report(
                "W107",
                f"{what} may be out of range "
                f"({_fmt_rng(rng)}; valid: {bound})",
                pos,
            )

    # -- statements ----------------------------------------------------

    def _body(self, body: list[ast.Stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            size = self.eval(stmt.size) if stmt.size is not None else None
            init = self.eval(stmt.init) if stmt.init is not None else None
            self.decls[stmt.name] = _Decl(
                stmt.name, stmt.scope == "WE", stmt.is_array, size
            )
            self.env[stmt.name] = init if not stmt.is_array else None
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Index):
                self._check_index(target)
            elif isinstance(target, ast.VarRef):
                if target.qualifier != "UR":
                    self.env[target.name] = value
            elif isinstance(target, ast.SrsRef):
                self.eval(target.expr)
                self.env = {k: None for k in self.env}  # dynamic write
        elif isinstance(stmt, ast.CastStmt):
            if isinstance(stmt.target, ast.VarRef):
                if stmt.to_type != "NUMBR":
                    self.env[stmt.target.name] = None
        elif isinstance(stmt, ast.ExprStmt):
            self.eval(stmt.expr)
            self._last_it = stmt.expr
        elif isinstance(stmt, ast.Visible):
            for arg in stmt.args:
                self.eval(arg)
        elif isinstance(stmt, ast.Gimmeh):
            if isinstance(stmt.target, ast.VarRef):
                self.env[stmt.target.name] = None
            elif isinstance(stmt.target, ast.Index):
                self._check_index(stmt.target)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.Switch):
            self._switch(stmt)
        elif isinstance(stmt, ast.Loop):
            self._loop(stmt)
        elif isinstance(stmt, ast.Return):
            self.eval(stmt.expr)
        elif isinstance(stmt, ast.LockStmt):
            if stmt.kind == "trylock":
                self._last_it = None
        elif isinstance(stmt, ast.TxtStmt):
            self._check_pe_target(stmt)
            self._body(stmt.body)
        # Hugz / CanHas / Gtfo / FuncDef: no value effect here

    def _snapshot(self) -> tuple[dict[str, Value], tuple[Lin, Lin]]:
        return dict(self.env), self.me

    def _restore(
        self, snap: tuple[dict[str, Value], tuple[Lin, Lin]]
    ) -> None:
        self.env, self.me = dict(snap[0]), snap[1]

    def _join_envs(self, snaps: list[dict[str, Value]]) -> None:
        out: dict[str, Value] = {}
        for name in set().union(*[set(s) for s in snaps]) if snaps else set():
            vals = [s.get(name) for s in snaps]
            out[name] = vals[0] if all(v == vals[0] for v in vals) else None
        self.env = out

    def _if(self, stmt: ast.If) -> None:
        it_cond = self._last_it
        self._last_it = None
        base = self._snapshot()
        arm_envs: list[dict[str, Value]] = []
        # YA RLY — refined by the IT condition being truthy
        if it_cond is not None:
            self._refine(it_cond, True)
        self._body(stmt.ya_rly)
        arm_envs.append(self.env)
        for cond, body in stmt.mebbe:
            self._restore(base)
            self.eval(cond)
            self._refine(cond, True)
            self._body(body)
            arm_envs.append(self.env)
        self._restore(base)
        if it_cond is not None and not stmt.mebbe:
            self._refine(it_cond, False)
        self._body(stmt.no_wai)
        arm_envs.append(self.env)
        self.me = base[1]
        self._join_envs(arm_envs)

    def _switch(self, stmt: ast.Switch) -> None:
        self._last_it = None
        base = self._snapshot()
        arm_envs: list[dict[str, Value]] = []
        for lit, body in stmt.cases:
            self._restore(base)
            self.eval(lit)
            self._body(body)
            arm_envs.append(self.env)
        self._restore(base)
        self._body(stmt.default)
        arm_envs.append(self.env)
        self.me = base[1]
        self._join_envs(arm_envs)

    def _loop(self, stmt: ast.Loop) -> None:
        self._last_it = None
        body_assigned = _assigned_names(stmt.body)
        assigned = set(body_assigned)
        if stmt.var is not None:
            assigned.add(stmt.var)
        for name in assigned:
            if name in self.env:
                self.env[name] = None
        # counted-loop trip range: UPPIN from 0 against an affine limit
        if (
            stmt.var is not None
            and stmt.var not in body_assigned
            and stmt.op == "UPPIN"
            and stmt.cond is not None
            and isinstance(stmt.cond, ast.BinOp)
        ):
            cond = stmt.cond
            limit: Value = None
            if (
                stmt.cond_kind == "TIL"
                and cond.op == "eq"
                or stmt.cond_kind == "WILE"
                and cond.op == "lt"
            ):
                if (
                    isinstance(cond.lhs, ast.VarRef)
                    and cond.lhs.name == stmt.var
                ):
                    limit = self.eval(cond.rhs)
            if limit is not None:
                hi = rng_of(limit, self.me).hi
                if hi is not None:
                    self.env[stmt.var] = Rng(Lin(0, 0), hi.shift(-1))
        base_me = self.me
        self._body(stmt.body)
        self.me = base_me
        for name in assigned:
            self.env[name] = None
        self._last_it = None

    # -- refinement ----------------------------------------------------

    def _refine(self, cond: ast.Expr, truthy: bool) -> None:
        if isinstance(cond, ast.UnaryOp) and cond.op == "not":
            self._refine(cond.operand, not truthy)
            return
        if isinstance(cond, ast.BinOp):
            if cond.op == "and" and truthy:
                self._refine(cond.lhs, True)
                self._refine(cond.rhs, True)
                return
            if cond.op == "or" and not truthy:
                self._refine(cond.lhs, False)
                self._refine(cond.rhs, False)
                return
            if cond.op in ("eq", "ne", "gt", "lt"):
                self._refine_cmp(cond, truthy)

    def _refine_cmp(self, cond: ast.BinOp, truthy: bool) -> None:
        op = cond.op
        if op == "ne":
            op, truthy = "eq", not truthy
        if op == "eq" and not truthy:
            return  # != gives no interval information here
        for lhs, rhs, swapped in (
            (cond.lhs, cond.rhs, False),
            (cond.rhs, cond.lhs, True),
        ):
            if not _refinable(lhs):
                continue
            bound = self.eval(rhs)
            if bound is None:
                continue
            br = rng_of(bound, self.me)
            eff = op
            if swapped and op in ("gt", "lt"):
                eff = "lt" if op == "gt" else "gt"
            if not truthy:
                eff = {"gt": "le", "lt": "ge", "eq": "eq"}[eff]
            else:
                eff = {"gt": "gt", "lt": "lt", "eq": "eq"}[eff]
            self._apply_bound(lhs, eff, br)
            return

    def _apply_bound(self, target: ast.Expr, op: str, bound: Rng) -> None:
        # the refined interval for `target` implied by `target <op> bound`
        lo: Optional[Lin] = None
        hi: Optional[Lin] = None
        if op == "eq":
            lo, hi = bound.lo, bound.hi
        elif op == "gt":  # target > bound  =>  target >= bound.lo + 1
            lo = bound.lo.shift(1) if bound.lo is not None else None
        elif op == "ge":
            lo = bound.lo
        elif op == "lt":  # target < bound  =>  target <= bound.hi - 1
            hi = bound.hi.shift(-1) if bound.hi is not None else None
        elif op == "le":
            hi = bound.hi
        if lo is None and hi is None:
            return
        new = Rng(lo, hi)
        if isinstance(target, ast.MeExpr):
            cur_lo, cur_hi = self.me
            if lo is not None:
                cur_lo = lin_max(cur_lo, lo) or lo
            if hi is not None:
                cur_hi = lin_min(cur_hi, hi) or hi
            self.me = (cur_lo, cur_hi)
        elif isinstance(target, ast.VarRef) and target.qualifier != "UR":
            self.env[target.name] = _meet(
                self.env.get(target.name), new, self.me
            )


def _refinable(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.MeExpr) or (
        isinstance(expr, ast.VarRef) and expr.qualifier != "UR"
    )


def _assigned_names(body: list[ast.Stmt]) -> set[str]:
    names: set[str] = set()
    for stmt in ast.walk_statements(body):
        target: Optional[ast.Expr] = None
        if isinstance(stmt, ast.Assign):
            target = stmt.target
        elif isinstance(stmt, ast.Gimmeh):
            target = stmt.target
        elif isinstance(stmt, ast.CastStmt):
            target = stmt.target
        elif isinstance(stmt, ast.VarDecl):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Loop) and stmt.var is not None:
            names.add(stmt.var)
        if isinstance(target, ast.VarRef):
            names.add(target.name)
        elif isinstance(target, ast.Index) and isinstance(
            target.base, ast.VarRef
        ):
            names.add(target.base.name)
    return names


def _fmt_lin(lin: Lin) -> str:
    if lin.np == 0:
        return str(lin.c)
    npart = "MAH FRENZ" if lin.np == 1 else f"{lin.np}*MAH FRENZ"
    if lin.c == 0:
        return npart
    return f"{npart}{lin.c:+d}"


def _fmt_rng(rng: Rng) -> str:
    lo = _fmt_lin(rng.lo) if rng.lo is not None else "-inf"
    hi = _fmt_lin(rng.hi) if rng.hi is not None else "+inf"
    return f"range {lo}..{hi}"


def analyze_bounds(program: ast.Program) -> BoundsResult:
    return BoundsAnalyzer(program).run()
