"""Control-flow graphs over the LOLCODE AST.

:func:`build_cfg` lowers a statement list (a program body or a function
body) into basic blocks:

* ``O RLY?`` / ``WTF?`` / ``IM IN YR`` become :class:`Branch`
  terminators (mebbe arms chain into one branch per condition; switch
  cases keep their C-style fallthrough),
* ``GTFO`` jumps to the innermost loop/switch exit (or the function
  exit), ``FOUND YR`` to the function exit,
* ``TXT MAH BFF`` predication is *flattened*: its body statements are
  laid into blocks with the predication expression attached as context,
  so a predicated block body containing loops still gets real CFG
  structure (a :class:`TxtPe` pseudo-statement stands for the target
  expression's evaluation),
* counted loops get :class:`LoopInit` / :class:`LoopInc`
  pseudo-statements so dataflow analyses see the counter's definition
  and update.

Every block records the branch statements *governing* it (the
``O RLY?``/``WTF?``/loop nodes it is control-dependent on), which is
what the PE-taint analysis uses to decide whether an assignment happens
divergently.  :meth:`CFG.rpo` and :meth:`CFG.dominators` provide
reverse-postorder iteration and classic iterative dominator sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from ..lang import ast

# ---------------------------------------------------------------------------
# Pseudo-statements
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class LoopInit:
    """Counter initialisation (``UPPIN/NERFIN YR var`` starts at 0)."""

    var: str
    loop: ast.Loop


@dataclass(slots=True)
class LoopInc:
    """Counter increment/decrement on the loop back edge."""

    var: str
    loop: ast.Loop


@dataclass(slots=True)
class TxtPe:
    """Evaluation of a ``TXT MAH BFF`` target expression."""

    node: ast.TxtStmt


Pseudo = Union[LoopInit, LoopInc, TxtPe]

#: A block entry: the statement (or pseudo-statement) plus the
#: ``TXT MAH BFF`` predication expression in whose body it appears
#: (``None`` outside any predication).
CfgStmt = tuple[Union[ast.Stmt, Pseudo], Optional[ast.Expr]]

# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Exit:
    """Falls off the end of the body (or returns)."""


@dataclass(slots=True)
class Goto:
    target: int


@dataclass(slots=True)
class Branch:
    """Two-way branch.

    ``owner`` is the controlling AST node.  ``cond`` is the tested
    expression — ``None`` means the implicit ``IT`` (``O RLY?``).  For
    loops, ``on_true`` is the *exit* edge of a ``TIL`` loop and the
    *body* edge of a ``WILE`` loop (the sense is normalised so that
    ``on_true`` is taken when ``cond`` evaluates truthy).
    """

    owner: Union[ast.If, ast.Switch, ast.Loop]
    cond: Optional[ast.Expr]
    on_true: int
    on_false: int


@dataclass(slots=True)
class Dispatch:
    """``WTF?`` case dispatch on ``IT`` (fallthrough handled by edges)."""

    owner: ast.Switch
    cases: list[tuple[ast.Expr, int]]
    default: int


Term = Union[Exit, Goto, Branch, Dispatch]


def successors(term: Term) -> list[int]:
    if isinstance(term, Goto):
        return [term.target]
    if isinstance(term, Branch):
        return [term.on_true, term.on_false]
    if isinstance(term, Dispatch):
        return [b for _, b in term.cases] + [term.default]
    return []


# ---------------------------------------------------------------------------
# Blocks and graphs
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class BasicBlock:
    bid: int
    stmts: list[CfgStmt] = field(default_factory=list)
    term: Term = field(default_factory=Exit)
    preds: list[int] = field(default_factory=list)
    #: branch/loop AST nodes this block is control-dependent on, outermost
    #: first (identity — use ``id()`` to key these).
    governing: tuple[Union[ast.If, ast.Switch, ast.Loop], ...] = ()

    @property
    def succs(self) -> list[int]:
        return successors(self.term)


class CFG:
    """A built control-flow graph (entry is block 0)."""

    def __init__(self, blocks: list[BasicBlock], exit_id: int) -> None:
        self.blocks = blocks
        self.entry = 0
        self.exit = exit_id
        for block in blocks:
            block.preds = []
        for block in blocks:
            for s in block.succs:
                blocks[s].preds.append(block.bid)

    def __len__(self) -> int:
        return len(self.blocks)

    def rpo(self) -> list[int]:
        """Reverse postorder over reachable blocks, entry first."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(bid: int) -> None:
            stack: list[tuple[int, Iterator[int]]] = []
            seen.add(bid)
            stack.append((bid, iter(self.blocks[bid].succs)))
            while stack:
                cur, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, iter(self.blocks[nxt].succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(cur)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order

    def dominators(self) -> dict[int, set[int]]:
        """Classic iterative dominator sets over reachable blocks."""
        order = self.rpo()
        reachable = set(order)
        dom: dict[int, set[int]] = {b: set(reachable) for b in order}
        dom[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for bid in order:
                if bid == self.entry:
                    continue
                preds = [p for p in self.blocks[bid].preds if p in reachable]
                new: set[int] = set(reachable)
                for p in preds:
                    new &= dom[p]
                new.add(bid)
                if new != dom[bid]:
                    dom[bid] = new
                    changed = True
        return dom

    def barriers(self) -> list[ast.Hugz]:
        out: list[ast.Hugz] = []
        for block in self.blocks:
            for stmt, _ctx in block.stmts:
                if isinstance(stmt, ast.Hugz):
                    out.append(stmt)
        return out


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.cur: Optional[int] = None
        self.break_stack: list[int] = []
        self.exit_id = self._new(())

    def _new(
        self,
        governing: tuple[Union[ast.If, ast.Switch, ast.Loop], ...],
    ) -> int:
        bid = len(self.blocks)
        self.blocks.append(BasicBlock(bid, governing=governing))
        return bid

    def _start(
        self,
        governing: tuple[Union[ast.If, ast.Switch, ast.Loop], ...],
    ) -> int:
        bid = self._new(governing)
        self.cur = bid
        return bid

    def _emit(self, stmt: Union[ast.Stmt, Pseudo], ctx: Optional[ast.Expr]) -> None:
        assert self.cur is not None
        self.blocks[self.cur].stmts.append((stmt, ctx))

    def _finish(self, term: Term) -> None:
        if self.cur is not None:
            self.blocks[self.cur].term = term
            self.cur = None

    def lower_body(
        self,
        body: list[ast.Stmt],
        ctx: Optional[ast.Expr],
        governing: tuple[Union[ast.If, ast.Switch, ast.Loop], ...],
    ) -> None:
        """Lower ``body`` into the current block (must be open)."""
        for stmt in body:
            if self.cur is None:
                return  # unreachable code after GTFO / FOUND YR
            if isinstance(stmt, ast.FuncDef):
                continue  # functions get their own CFGs
            if isinstance(stmt, ast.If):
                self._lower_if(stmt, ctx, governing)
            elif isinstance(stmt, ast.Switch):
                self._lower_switch(stmt, ctx, governing)
            elif isinstance(stmt, ast.Loop):
                self._lower_loop(stmt, ctx, governing)
            elif isinstance(stmt, ast.Gtfo):
                target = (
                    self.break_stack[-1] if self.break_stack else self.exit_id
                )
                self._finish(Goto(target))
            elif isinstance(stmt, ast.Return):
                self._emit(stmt, ctx)
                self._finish(Goto(self.exit_id))
            elif isinstance(stmt, ast.TxtStmt):
                self._emit(TxtPe(stmt), ctx)
                self.lower_body(stmt.body, stmt.pe, governing)
            else:
                self._emit(stmt, ctx)

    def _lower_if(
        self,
        stmt: ast.If,
        ctx: Optional[ast.Expr],
        governing: tuple[Union[ast.If, ast.Switch, ast.Loop], ...],
    ) -> None:
        inner = governing + (stmt,)
        join = self._new(governing)
        arms: list[tuple[Optional[ast.Expr], list[ast.Stmt]]] = [
            (None, stmt.ya_rly),
            *[(cond, body) for cond, body in stmt.mebbe],
        ]
        for cond, body in arms:
            arm_entry = self._new(inner)
            next_test = self._new(governing)
            self._finish(Branch(stmt, cond, arm_entry, next_test))
            self.cur = arm_entry
            self.lower_body(body, ctx, inner)
            self._finish(Goto(join))
            self.cur = next_test
        # the final "no match" path runs NO WAI (possibly empty)
        no_wai = self._new(inner)
        self._finish(Goto(no_wai))
        self.cur = no_wai
        self.lower_body(stmt.no_wai, ctx, inner)
        self._finish(Goto(join))
        self.cur = join

    def _lower_switch(
        self,
        stmt: ast.Switch,
        ctx: Optional[ast.Expr],
        governing: tuple[Union[ast.If, ast.Switch, ast.Loop], ...],
    ) -> None:
        inner = governing + (stmt,)
        join = self._new(governing)
        entries = [self._new(inner) for _ in stmt.cases]
        default = self._new(inner)
        self._finish(
            Dispatch(
                stmt,
                [(lit, entries[i]) for i, (lit, _) in enumerate(stmt.cases)],
                default,
            )
        )
        self.break_stack.append(join)
        try:
            for i, (_lit, body) in enumerate(stmt.cases):
                self.cur = entries[i]
                self.lower_body(body, ctx, inner)
                # C-style fallthrough into the next case (or default)
                nxt = entries[i + 1] if i + 1 < len(entries) else default
                self._finish(Goto(nxt))
            self.cur = default
            self.lower_body(stmt.default, ctx, inner)
            self._finish(Goto(join))
        finally:
            self.break_stack.pop()
        self.cur = join

    def _lower_loop(
        self,
        stmt: ast.Loop,
        ctx: Optional[ast.Expr],
        governing: tuple[Union[ast.If, ast.Switch, ast.Loop], ...],
    ) -> None:
        inner = governing + (stmt,)
        exit_b = self._new(governing)
        if stmt.var is not None:
            self._emit(LoopInit(stmt.var, stmt), ctx)
        if stmt.cond is not None:
            cond_b = self._new(governing)
            body_b = self._new(inner)
            self._finish(Goto(cond_b))
            self.cur = cond_b
            if stmt.cond_kind == "TIL":
                self._finish(Branch(stmt, stmt.cond, exit_b, body_b))
            else:  # WILE: truthy -> keep looping
                self._finish(Branch(stmt, stmt.cond, body_b, exit_b))
            self.cur = body_b
            back_to = cond_b
        else:
            body_b = self._new(inner)
            self._finish(Goto(body_b))
            self.cur = body_b
            back_to = body_b
        self.break_stack.append(exit_b)
        try:
            self.lower_body(stmt.body, ctx, inner)
        finally:
            self.break_stack.pop()
        if self.cur is not None and stmt.var is not None:
            self._emit(LoopInc(stmt.var, stmt), ctx)
        self._finish(Goto(back_to))
        self.cur = exit_b


def build_cfg(body: list[ast.Stmt]) -> CFG:
    """Build the CFG of one statement list (program or function body)."""
    b = _Builder()
    entry = b._start(())
    b.lower_body(body, None, ())
    b._finish(Goto(b.exit_id))
    # Move the entry to index 0 by construction: block 0 is the exit we
    # pre-created, so swap ids to keep ``entry == 0`` as documented.
    blocks = b.blocks
    if entry != 0:
        blocks[0], blocks[entry] = blocks[entry], blocks[0]
        remap = {0: entry, entry: 0}

        def m(x: int) -> int:
            return remap.get(x, x)

        for block in blocks:
            term = block.term
            if isinstance(term, Goto):
                term.target = m(term.target)
            elif isinstance(term, Branch):
                term.on_true = m(term.on_true)
                term.on_false = m(term.on_false)
            elif isinstance(term, Dispatch):
                term.cases = [(lit, m(t)) for lit, t in term.cases]
                term.default = m(term.default)
        for i, block in enumerate(blocks):
            block.bid = i
        exit_id = m(b.exit_id)
    else:  # pragma: no cover — exit is always created first
        exit_id = b.exit_id
    return CFG(blocks, exit_id)


def build_program_cfgs(program: ast.Program) -> dict[Optional[str], CFG]:
    """CFGs for the main body (key ``None``) and every function."""
    out: dict[Optional[str], CFG] = {None: build_cfg(program.body)}
    for stmt in ast.walk_statements(program.body):
        if isinstance(stmt, ast.FuncDef):
            out[stmt.name] = build_cfg(stmt.body)
    return out
