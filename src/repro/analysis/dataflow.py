"""Generic iterative (worklist) dataflow over :mod:`repro.analysis.cfg`.

A forward analysis supplies a join-semilattice of states and monotone
transfer functions; :func:`run_forward` iterates blocks in reverse
postorder until the in-states stabilise.  ``refine_edge`` lets an
analysis sharpen the out-state per successor edge (used by the lock
analysis to model ``IM MESIN WIF`` try-lock results flowing into
``O RLY?``).
"""

from __future__ import annotations

from typing import Generic, TypeVar

from .cfg import CFG, BasicBlock, CfgStmt, Term, successors

S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """Interface for a forward dataflow problem (states must be
    immutable values comparable with ``==``)."""

    def boundary(self) -> S:
        """State at the CFG entry."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer_stmt(self, state: S, entry: CfgStmt, block: BasicBlock) -> S:
        raise NotImplementedError

    def transfer_term(self, state: S, term: Term, block: BasicBlock) -> S:
        """Account for the terminator's expression evaluation."""
        return state

    def refine_edge(
        self, state: S, block: BasicBlock, succ_index: int, succ: int
    ) -> S:
        """Sharpen the out-state along one successor edge."""
        return state


def transfer_block(
    analysis: ForwardAnalysis[S], state: S, block: BasicBlock
) -> S:
    for entry in block.stmts:
        state = analysis.transfer_stmt(state, entry, block)
    return analysis.transfer_term(state, block.term, block)


def run_forward(cfg: CFG, analysis: ForwardAnalysis[S]) -> dict[int, S]:
    """Solve to fixpoint; returns the in-state of every reachable block."""
    order = cfg.rpo()
    position = {bid: i for i, bid in enumerate(order)}
    in_states: dict[int, S] = {cfg.entry: analysis.boundary()}
    worklist = list(order)
    pending = set(worklist)
    # Deterministic worklist: always pick the earliest block in RPO.
    while worklist:
        worklist.sort(key=lambda b: position[b])
        bid = worklist.pop(0)
        pending.discard(bid)
        if bid not in in_states:
            continue  # not yet reached
        block = cfg.blocks[bid]
        out = transfer_block(analysis, in_states[bid], block)
        for i, succ in enumerate(successors(block.term)):
            edge_state = analysis.refine_edge(out, block, i, succ)
            if succ not in in_states:
                in_states[succ] = edge_state
                changed = True
            else:
                joined = analysis.join(in_states[succ], edge_state)
                changed = joined != in_states[succ]
                in_states[succ] = joined
            if changed and succ not in pending:
                worklist.append(succ)
                pending.add(succ)
    return in_states


def exit_state(
    cfg: CFG, analysis: ForwardAnalysis[S], in_states: dict[int, S]
) -> S:
    """The state at the CFG exit (boundary if the exit is unreachable)."""
    if cfg.exit in in_states:
        return transfer_block(
            analysis, in_states[cfg.exit], cfg.blocks[cfg.exit]
        )
    return analysis.boundary()
