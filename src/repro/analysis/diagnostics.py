"""Diagnostic objects shared by the static analyses and ``lollint``.

A :class:`Diagnostic` is what every pass produces: a stable code
(``E...`` = error, ``W...`` = warning), a human message, a *real* source
position (the analyses never fabricate ``0:0`` positions — every
diagnostic points at the construct that triggered it), and optionally a
machine-applicable :class:`FixIt` hint.

Rendering comes in three shapes, matching ``lollint --format``:

* ``text`` — the classic ``file:line:col: CODE: message`` lines (with an
  indented ``fix:`` line when a hint is attached),
* ``json`` — one object per diagnostic, stable keys,
* ``sarif`` — a minimal SARIF 2.1.0 log suitable for code-scanning
  upload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional

from ..lang.errors import SourcePos


@dataclass(frozen=True, slots=True)
class FixIt:
    """A cheap, machine-applicable fix: insert ``text`` as its own line
    immediately before ``pos.line`` (indentation is the applier's job)."""

    text: str
    pos: SourcePos

    def describe(self) -> str:
        return f"insert `{self.text}` before line {self.pos.line}"


@dataclass(frozen=True, slots=True)
class Diagnostic:
    code: str
    message: str
    pos: SourcePos
    fixit: Optional[FixIt] = None

    @property
    def is_error(self) -> bool:
        return self.code.startswith("E")

    def render(self) -> str:
        return f"{self.pos}: {self.code}: {self.message}"

    def render_text(self) -> str:
        """Full text-format rendering, including the fix-it line."""
        out = self.render()
        if self.fixit is not None:
            out += f"\n    fix: {self.fixit.describe()}"
        return out

    def to_json(self) -> dict[str, Any]:
        obj: dict[str, Any] = {
            "code": self.code,
            "severity": "error" if self.is_error else "warning",
            "message": self.message,
            "file": self.pos.filename,
            "line": self.pos.line,
            "col": self.pos.col,
        }
        if self.fixit is not None:
            obj["fixit"] = {
                "text": self.fixit.text,
                "line": self.fixit.pos.line,
                "col": self.fixit.pos.col,
            }
        return obj


def sort_key(diag: Diagnostic) -> tuple[int, int, str, str]:
    return (diag.pos.line, diag.pos.col, diag.code, diag.message)


def render_json(diags: list[Diagnostic]) -> str:
    return json.dumps([d.to_json() for d in diags], indent=2)


def render_sarif(diags: list[Diagnostic]) -> str:
    """Minimal SARIF 2.1.0 log (one run, one ``lollint`` driver)."""
    rules = sorted({d.code for d in diags})
    results = [
        {
            "ruleId": d.code,
            "level": "error" if d.is_error else "warning",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.pos.filename},
                        "region": {
                            "startLine": max(d.pos.line, 1),
                            "startColumn": max(d.pos.col, 1),
                        },
                    }
                }
            ],
        }
        for d in diags
    ]
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "lollint",
                        "informationUri": "https://example.invalid/lollint",
                        "rules": [{"id": r} for r in rules],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
