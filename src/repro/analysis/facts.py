"""Whole-program facts exported to the execution engines.

:class:`ProgramFacts` is the read side of the static analyses: engines
may consult it to *enable* optimisations that are only sound under a
proven property, never to change semantics.

* ``remote_unwritten`` — symmetric symbols that no statement ever
  stores to through a ``UR`` reference (and no dynamic ``SRS`` store
  could alias).  A read of such a symbol on the owning PE can be
  hoisted out of a loop: no peer can change it mid-loop, so one read
  standing for *n* reads is a valid interleaving even with the race
  detector on.  The VM vectorizer uses this to admit ``LOOP_VEC``
  plans whose trip count is a symmetric scalar (``TIL BOTH SAEM i AN
  n`` with ``WE HAS A n``), which previously bailed.
* ``epoch_local`` — symmetric symbols never accessed through ``UR`` at
  all (neither read nor written remotely).  They behave like private
  variables; diagnostics and engines can ignore them for communication
  purposes.

Any ``SRS``-qualified store (a computed lvalue) conservatively clears
``remote_unwritten`` — the store's target name is unknown, so every
symmetric symbol must be assumed written.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast
from .pe_taint import _walk_expr


@dataclass(frozen=True, slots=True)
class ProgramFacts:
    remote_unwritten: frozenset[str] = frozenset()
    epoch_local: frozenset[str] = frozenset()


def _store_target(stmt: ast.Stmt) -> ast.Expr | None:
    if isinstance(stmt, ast.Assign):
        return stmt.target
    if isinstance(stmt, (ast.Gimmeh, ast.CastStmt)):
        return stmt.target
    return None


def compute_facts(program: ast.Program) -> ProgramFacts:
    symmetric = {
        s.name
        for s in ast.walk_statements(program.body)
        if isinstance(s, ast.VarDecl) and s.scope == "WE"
    }
    remote_written: set[str] = set()
    remote_touched: set[str] = set()
    dynamic_store = False
    for stmt in ast.walk_statements(program.body):
        target = _store_target(stmt)
        if target is not None:
            base = target.base if isinstance(target, ast.Index) else target
            if isinstance(base, ast.VarRef):
                if base.qualifier == "UR":
                    remote_written.add(base.name)
            elif isinstance(base, ast.SrsRef):
                dynamic_store = True
        for expr in _stmt_exprs(stmt):
            for sub in _walk_expr(expr):
                if isinstance(sub, ast.VarRef) and sub.qualifier == "UR":
                    remote_touched.add(sub.name)
                elif isinstance(sub, ast.SrsRef) and sub.qualifier == "UR":
                    dynamic_store = True  # could alias any name, any way
    if dynamic_store:
        return ProgramFacts(frozenset(), frozenset())
    return ProgramFacts(
        frozenset(symmetric - remote_written),
        frozenset(symmetric - remote_touched - remote_written),
    )


def _stmt_exprs(stmt: ast.Stmt) -> list[ast.Expr]:
    out: list[ast.Expr] = []
    if isinstance(stmt, ast.VarDecl):
        out += [e for e in (stmt.size, stmt.init) if e is not None]
    elif isinstance(stmt, ast.Assign):
        out += [stmt.target, stmt.value]
    elif isinstance(stmt, (ast.Gimmeh, ast.CastStmt)):
        out.append(stmt.target)
    elif isinstance(stmt, ast.ExprStmt):
        out.append(stmt.expr)
    elif isinstance(stmt, ast.Visible):
        out += list(stmt.args)
    elif isinstance(stmt, ast.If):
        out += [cond for cond, _ in stmt.mebbe]
    elif isinstance(stmt, ast.Switch):
        out += [lit for lit, _ in stmt.cases]
    elif isinstance(stmt, ast.Loop):
        if stmt.cond is not None:
            out.append(stmt.cond)
    elif isinstance(stmt, ast.Return):
        out.append(stmt.expr)
    elif isinstance(stmt, ast.TxtStmt):
        out.append(stmt.pe)
    elif isinstance(stmt, ast.LockStmt):
        out.append(stmt.target)
    return out
