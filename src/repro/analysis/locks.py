"""Path-sensitive lock analysis (``W103`` / ``W105`` / ``W106``).

A forward may/must dataflow per CFG tracks, for every lock symbol:

* ``may`` — the set of acquire sites that may still hold the lock on
  some path to this point,
* ``must`` — whether the lock is held on *every* path.

Joins take the union of ``may`` and the intersection of ``must``.
Try-locks (``IM MESIN WIF``, result in ``IT``) are modelled
path-sensitively: when the very next ``O RLY?`` tests the try-lock's
``IT``, the YA RLY edge refines to *held* and the NO WAI edge to *not
held* — the idiomatic spin-loop therefore verifies as released.
``DUN MESIN WIF SRS <expr>`` (a dynamic name) conservatively releases
every tracked lock, so dynamic release patterns no longer false-positive
the way the old "no DUN MESIN WIF anywhere" heuristic did.

Diagnostics:

* ``W103`` — an acquire site whose lock may still be held at the
  function/program exit (reported at the acquire, a real position).
* ``W105`` — a blocking re-acquire while the lock is must-held
  (self-deadlock; the shim's global lock is not reentrant).
* ``W106`` — a lock acquired under a PE-divergent branch and not
  released within that branch arm: lock state diverges across PEs at
  the join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..lang import ast
from ..lang.errors import SourcePos
from .cfg import BasicBlock, Branch, CfgStmt, Term
from .dataflow import ForwardAnalysis, exit_state, run_forward
from .diagnostics import Diagnostic
from .pe_taint import TaintResult

#: per-lock fact: (name, sorted acquire positions may-holding, must-held)
LockItem = tuple[str, tuple[SourcePos, ...], bool]


@dataclass(frozen=True, slots=True)
class LockState:
    locks: tuple[LockItem, ...] = ()
    it_src: Optional[str] = None  # lock name whose trylock last set IT

    def as_dict(self) -> dict[str, tuple[frozenset[SourcePos], bool]]:
        return {n: (frozenset(may), must) for n, may, must in self.locks}


def _mk(
    d: dict[str, tuple[frozenset[SourcePos], bool]], it_src: Optional[str]
) -> LockState:
    items: list[LockItem] = []
    for name in sorted(d):
        may, must = d[name]
        if not may and not must:
            continue
        items.append(
            (name, tuple(sorted(may, key=lambda p: (p.line, p.col))), must)
        )
    return LockState(tuple(items), it_src)


class LockAnalysis(ForwardAnalysis[LockState]):
    def __init__(self, collector: "LockChecker") -> None:
        self.collector = collector

    def boundary(self) -> LockState:
        return LockState()

    def join(self, a: LockState, b: LockState) -> LockState:
        da, db = a.as_dict(), b.as_dict()
        out: dict[str, tuple[frozenset[SourcePos], bool]] = {}
        for name in set(da) | set(db):
            may_a, must_a = da.get(name, (frozenset(), False))
            may_b, must_b = db.get(name, (frozenset(), False))
            out[name] = (may_a | may_b, must_a and must_b)
        it_src = a.it_src if a.it_src == b.it_src else None
        return _mk(out, it_src)

    def transfer_stmt(
        self, state: LockState, entry: CfgStmt, block: BasicBlock
    ) -> LockState:
        stmt, _ctx = entry
        if isinstance(stmt, ast.LockStmt):
            return self._lock_stmt(state, stmt)
        if isinstance(stmt, ast.ExprStmt):
            state = self._calls(state, stmt.expr)
            return LockState(state.locks, None)  # IT redefined
        for expr in _exprs_of(stmt):
            state = self._calls(state, expr)
        return state

    def _lock_stmt(self, state: LockState, stmt: ast.LockStmt) -> LockState:
        d = state.as_dict()
        target = stmt.target
        if not isinstance(target, ast.VarRef):
            # SRS dynamic name: an unlock may release anything we track
            if stmt.kind == "unlock":
                return LockState((), state.it_src)
            if stmt.kind == "trylock":
                return LockState(state.locks, None)
            return state
        name = target.name
        may, must = d.get(name, (frozenset(), False))
        if stmt.kind == "lock":
            if must:
                self.collector.report(
                    "W105",
                    f"IM SRSLY MESIN WIF '{name}' while the lock is "
                    f"already held: this blocks forever (self-deadlock)",
                    stmt.pos,
                )
            d[name] = (may | {stmt.pos}, True)
            return _mk(d, state.it_src)
        if stmt.kind == "trylock":
            d[name] = (may | {stmt.pos}, must)
            return _mk(d, name)
        # unlock
        d[name] = (frozenset(), False)
        return _mk(d, state.it_src)

    def _calls(self, state: LockState, expr: ast.Expr) -> LockState:
        effects = self.collector.call_effects(expr)
        if effects is None:
            return state
        locked, unlocked, dynamic = effects
        if not (locked or unlocked or dynamic):
            return state
        d = state.as_dict()
        if dynamic:
            return LockState((), state.it_src)
        for name in unlocked:
            d[name] = (frozenset(), False)
        for name, pos in locked.items():
            may, _must = d.get(name, (frozenset(), False))
            d[name] = (may | {pos}, False)
        return _mk(d, state.it_src)

    def refine_edge(
        self, state: LockState, block: BasicBlock, succ_index: int, succ: int
    ) -> LockState:
        term = block.term
        if (
            not isinstance(term, Branch)
            or not isinstance(term.owner, ast.If)
            or term.cond is not None
            or state.it_src is None
        ):
            return state
        name = state.it_src
        d = state.as_dict()
        may, must = d.get(name, (frozenset(), False))
        if succ_index == 0:  # YA RLY: the trylock succeeded
            d[name] = (may, True)
        else:  # NO WAI: it did not acquire
            if not must:
                d[name] = (frozenset(), False)
        return _mk(d, state.it_src)


def _exprs_of(stmt: Union[ast.Stmt, object]) -> list[ast.Expr]:
    if isinstance(stmt, ast.VarDecl):
        return [e for e in (stmt.size, stmt.init) if e is not None]
    if isinstance(stmt, ast.Assign):
        return [stmt.value, stmt.target]
    if isinstance(stmt, ast.Visible):
        return list(stmt.args)
    if isinstance(stmt, ast.Return):
        return [stmt.expr]
    return []


class LockChecker:
    def __init__(self, taint: TaintResult) -> None:
        self.taint = taint
        self.program = taint.program
        self.diags: list[Diagnostic] = []
        self._seen: set[tuple[str, SourcePos]] = set()
        self._effects: dict[
            str, tuple[dict[str, SourcePos], set[str], bool]
        ] = {}
        for stmt in ast.walk_statements(self.program.body):
            if isinstance(stmt, ast.FuncDef):
                self._effects[stmt.name] = self._summarise(stmt)

    def report(self, code: str, message: str, pos: SourcePos) -> None:
        if (code, pos) in self._seen:
            return
        self._seen.add((code, pos))
        self.diags.append(Diagnostic(code, message, pos))

    def _summarise(
        self, func: ast.FuncDef
    ) -> tuple[dict[str, SourcePos], set[str], bool]:
        locked: dict[str, SourcePos] = {}
        unlocked: set[str] = set()
        dynamic = False
        for stmt in ast.walk_statements(func.body):
            if isinstance(stmt, ast.LockStmt):
                if isinstance(stmt.target, ast.VarRef):
                    if stmt.kind == "unlock":
                        unlocked.add(stmt.target.name)
                    else:
                        locked.setdefault(stmt.target.name, stmt.pos)
                elif stmt.kind == "unlock":
                    dynamic = True
        return locked, unlocked, dynamic

    def call_effects(
        self, expr: ast.Expr
    ) -> Optional[tuple[dict[str, SourcePos], set[str], bool]]:
        locked: dict[str, SourcePos] = {}
        unlocked: set[str] = set()
        dynamic = False
        found = False
        from .pe_taint import _walk_expr

        for sub in _walk_expr(expr):
            if isinstance(sub, ast.FuncCall):
                eff = self._effects.get(sub.name)
                if eff is None:
                    continue
                found = True
                locked.update(eff[0])
                unlocked |= eff[1]
                dynamic = dynamic or eff[2]
        return (locked, unlocked, dynamic) if found else None

    # -- driving -------------------------------------------------------

    def check(self) -> list[Diagnostic]:
        for _fname, cfg in self.taint.cfgs.items():
            analysis = LockAnalysis(self)
            in_states = run_forward(cfg, analysis)
            final = exit_state(cfg, analysis, in_states)
            for name, may, _must in final.locks:
                for pos in may:
                    self.report(
                        "W103",
                        f"lock on '{name}' acquired here may never be "
                        f"released on some path (add DUN MESIN WIF "
                        f"{name} before every exit)",
                        pos,
                    )
        self._check_divergent_acquires()
        return self.diags

    def _check_divergent_acquires(self) -> None:
        """``W106``: acquire under a divergent branch, no release in-arm."""
        for stmt in ast.walk_statements(self.program.body):
            if not isinstance(stmt, (ast.If, ast.Switch, ast.Loop)):
                continue
            if not self.taint.is_divergent(stmt):
                continue
            for arm in ast.child_statements(stmt):
                self._scan_arm(arm)

    def _scan_arm(self, arm: list[ast.Stmt]) -> None:
        released: set[str] = set()
        dynamic_release = False
        acquires: list[tuple[str, SourcePos]] = []
        for s in ast.walk_statements(arm):
            if isinstance(s, ast.LockStmt):
                if isinstance(s.target, ast.VarRef):
                    if s.kind == "unlock":
                        released.add(s.target.name)
                    elif s.kind == "lock":
                        acquires.append((s.target.name, s.pos))
                elif s.kind == "unlock":
                    dynamic_release = True
        if dynamic_release:
            return
        for name, pos in acquires:
            if name not in released:
                self.report(
                    "W106",
                    f"lock on '{name}' acquired under a PE-dependent "
                    f"branch and not released before the join: lock "
                    f"state diverges across PEs",
                    pos,
                )


def check_locks(taint: TaintResult) -> list[Diagnostic]:
    return LockChecker(taint).check()
