"""PE-dependence taint analysis and barrier alignment (``W101``).

Two cooperating pieces:

1. A forward dataflow (:class:`TaintAnalysis`) over each CFG computes,
   at every program point, the set of variables whose values may be
   **PE-dependent** — derived from ``ME``, ``WHATEVR``/``WHATEVAR``
   draws, ``GIMMEH`` input, remote (``UR``) data, or assigned under a
   PE-divergent branch.  The lattice per variable is the two-point
   chain ``UNIFORM ⊑ PE_DEP`` (a state is the set of ``PE_DEP``
   names; join is set union).  The implicit ``IT`` variable is tracked
   like any other, so ``O RLY?`` conditions routed through ``IT`` are
   classified precisely — including try-lock results, which are
   per-PE.

2. A structured barrier-alignment walk turns the per-branch divergence
   verdicts into the collective property the paper's barrier semantics
   require: **along every path, each ``HUGZ`` is reached by all PEs or
   by none**.  The abstraction per region is a barrier count in
   ``{0, 1, 2, …} ∪ {MANY}`` (``MANY`` = aligned but statically
   unknown, e.g. a uniform loop containing barriers).  A divergent
   branch is fine when all its arms have the same *exact* count — so
   ``BOTH SAEM ME AN 0, O RLY? YA RLY, HUGZ, NO WAI, HUGZ, OIC`` is
   clean — and flagged (``W101``) when counts differ, when a divergent
   loop body contains barriers, or when a ``GTFO``/``FOUND YR`` under
   divergent control can make PEs leave a barrier-bearing loop after
   different trip counts.

Soundness caveats (documented in ``docs/analysis.md``): function call
results are conservatively PE-dependent; ``SRS`` dynamic names are
untracked; uniformity of a loop condition is judged at fixpoint over
all iterations.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from ..lang import ast
from .cfg import (
    CFG,
    BasicBlock,
    Branch,
    CfgStmt,
    Dispatch,
    LoopInc,
    LoopInit,
    Term,
    TxtPe,
    build_program_cfgs,
)
from .dataflow import ForwardAnalysis, run_forward
from .diagnostics import Diagnostic

#: Taint state: frozenset of PE-dependent variable names ("IT" included).
TaintState = frozenset[str]

_IT = "IT"


def _walk_expr(expr: ast.Expr) -> Iterator[ast.Expr]:
    yield expr
    if isinstance(expr, ast.BinOp):
        yield from _walk_expr(expr.lhs)
        yield from _walk_expr(expr.rhs)
    elif isinstance(expr, ast.UnaryOp):
        yield from _walk_expr(expr.operand)
    elif isinstance(expr, ast.NaryOp):
        for op in expr.operands:
            yield from _walk_expr(op)
    elif isinstance(expr, ast.Cast):
        yield from _walk_expr(expr.expr)
    elif isinstance(expr, ast.Index):
        yield from _walk_expr(expr.base)
        yield from _walk_expr(expr.index)
    elif isinstance(expr, ast.SrsRef):
        yield from _walk_expr(expr.expr)
    elif isinstance(expr, ast.FuncCall):
        for a in expr.args:
            yield from _walk_expr(a)


def expr_taint(expr: ast.Expr, state: TaintState) -> bool:
    """May the value of ``expr`` differ across PEs in ``state``?"""
    for sub in _walk_expr(expr):
        if isinstance(sub, (ast.MeExpr, ast.RandomExpr, ast.FuncCall)):
            return True
        if isinstance(sub, ast.SrsRef):
            return True
        if isinstance(sub, ast.ItRef) and _IT in state:
            return True
        if isinstance(sub, ast.VarRef):
            if sub.qualifier == "UR" or sub.name in state:
                return True
    return False


class TaintAnalysis(ForwardAnalysis[TaintState]):
    def __init__(self, owner: "TaintResult") -> None:
        self.owner = owner

    def boundary(self) -> TaintState:
        return frozenset(self.owner.boundary_taint)

    def join(self, a: TaintState, b: TaintState) -> TaintState:
        return a | b

    def _divergent_context(self, block: BasicBlock) -> bool:
        return any(
            self.owner.branch_divergent.get(id(g), False)
            for g in block.governing
        )

    def transfer_stmt(
        self, state: TaintState, entry: CfgStmt, block: BasicBlock
    ) -> TaintState:
        stmt, _ctx = entry
        div = self._divergent_context(block)
        if isinstance(stmt, LoopInit):
            return (state | {stmt.var}) if div else (state - {stmt.var})
        if isinstance(stmt, (LoopInc, TxtPe)):
            return state
        if isinstance(stmt, ast.VarDecl):
            tainted = div or (
                stmt.init is not None and expr_taint(stmt.init, state)
            )
            return (state | {stmt.name}) if tainted else (state - {stmt.name})
        if isinstance(stmt, ast.Assign):
            return self._assign(state, stmt.target, stmt.value, div)
        if isinstance(stmt, ast.ExprStmt):
            tainted = div or expr_taint(stmt.expr, state)
            return (state | {_IT}) if tainted else (state - {_IT})
        if isinstance(stmt, ast.Gimmeh):
            name = _target_name(stmt.target)
            return (state | {name}) if name is not None else state
        if isinstance(stmt, ast.LockStmt):
            if stmt.kind == "trylock":
                return state | {_IT}  # per-PE success/failure
            return state
        return state

    def _assign(
        self,
        state: TaintState,
        target: ast.Expr,
        value: ast.Expr,
        div: bool,
    ) -> TaintState:
        tainted = div or expr_taint(value, state)
        if isinstance(target, ast.Index):
            tainted = tainted or expr_taint(target.index, state)
            base = target.base
            if isinstance(base, ast.VarRef) and base.qualifier != "UR":
                # weak update: one element changed, the array as a whole
                # becomes PE-dependent only if the write was
                return (state | {base.name}) if tainted else state
            return state
        if isinstance(target, ast.VarRef) and target.qualifier != "UR":
            name = target.name
            return (state | {name}) if tainted else (state - {name})
        return state  # UR / SRS targets: no local def to track

    def transfer_term(
        self, state: TaintState, term: Term, block: BasicBlock
    ) -> TaintState:
        if isinstance(term, Branch):
            cond_tainted = (
                _IT in state
                if term.cond is None
                else expr_taint(term.cond, state)
            )
            if cond_tainted:
                self.owner.mark_divergent(term.owner)
        elif isinstance(term, Dispatch):
            cond_tainted = _IT in state or any(
                expr_taint(lit, state) for lit, _ in term.cases
            )
            if cond_tainted:
                self.owner.mark_divergent(term.owner)
        return state


def _target_name(target: ast.Expr) -> Optional[str]:
    if isinstance(target, ast.VarRef) and target.qualifier != "UR":
        return target.name
    if isinstance(target, ast.Index) and isinstance(target.base, ast.VarRef):
        if target.base.qualifier != "UR":
            return target.base.name
    return None


class TaintResult:
    """Fixpoint taint facts for a whole program."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.cfgs = build_program_cfgs(program)
        self.branch_divergent: dict[int, bool] = {}
        self.block_states: dict[Optional[str], dict[int, TaintState]] = {}
        #: function parameters are conservatively PE-dependent
        self.boundary_taint: set[str] = set()
        self._changed = False
        self._solve()

    def mark_divergent(
        self, node: Union[ast.If, ast.Switch, ast.Loop]
    ) -> None:
        if not self.branch_divergent.get(id(node), False):
            self.branch_divergent[id(node)] = True
            self._changed = True

    def _solve(self) -> None:
        # The divergence verdicts feed back into the transfer function
        # (assignment under a divergent branch taints its target), so
        # iterate the whole dataflow until the verdict set stabilises.
        # Verdicts only ever flip UNIFORM -> PE_DEP: monotone, so this
        # terminates in at most |branches| rounds.
        for _round in range(len(self.branch_divergent) + 64):
            self._changed = False
            for fname, cfg in self.cfgs.items():
                self.boundary_taint = (
                    set() if fname is None else self._param_set(fname)
                )
                analysis = TaintAnalysis(self)
                self.block_states[fname] = run_forward(cfg, analysis)
            if not self._changed:
                break

    def _param_set(self, fname: str) -> set[str]:
        for stmt in ast.walk_statements(self.program.body):
            if isinstance(stmt, ast.FuncDef) and stmt.name == fname:
                return set(stmt.params)
        return set()

    def is_divergent(
        self, node: Union[ast.If, ast.Switch, ast.Loop]
    ) -> bool:
        return self.branch_divergent.get(id(node), False)


def analyze_taint(program: ast.Program) -> TaintResult:
    return TaintResult(program)


# ---------------------------------------------------------------------------
# Barrier alignment (W101)
# ---------------------------------------------------------------------------

#: Barrier count abstraction: exact ``int`` or MANY (aligned, unknown).
MANY = -1

#: Break/return divergence: none, uniform (all PEs together), divergent.
_NO, _UNIFORM, _DIVERGENT = 0, 1, 2


def _add(a: int, b: int) -> int:
    return MANY if (a == MANY or b == MANY) else a + b


class BarrierChecker:
    def __init__(self, taint: TaintResult) -> None:
        self.taint = taint
        self.diags: list[Diagnostic] = []
        self._flagged: set[int] = set()  # id(Hugz) already reported
        self.functions: dict[str, ast.FuncDef] = {
            s.name: s
            for s in ast.walk_statements(taint.program.body)
            if isinstance(s, ast.FuncDef)
        }
        self._summaries: dict[str, int] = {}
        self._in_progress: set[str] = set()

    # -- function barrier-count summaries ------------------------------

    def call_count(self, fname: str) -> int:
        if fname in self._summaries:
            return self._summaries[fname]
        func = self.functions.get(fname)
        if func is None or fname in self._in_progress:
            return 0  # unknown callee / recursion: assume barrier-free
        self._in_progress.add(fname)
        count, _br, _ret = self._body(func.body, quiet=True)
        self._in_progress.discard(fname)
        self._summaries[fname] = count
        return count

    def _stmt_call_count(self, stmt: ast.Stmt) -> int:
        total = 0
        for expr in _stmt_exprs(stmt):
            for sub in _walk_expr(expr):
                if isinstance(sub, ast.FuncCall):
                    total = _add(total, self.call_count(sub.name))
        return total

    # -- the walk ------------------------------------------------------

    def check(self) -> list[Diagnostic]:
        count, _br, ret = self._body(self.taint.program.body, quiet=False)
        if ret == _DIVERGENT and count != 0:
            self._flag_region(self.taint.program.body)
        for func in self.functions.values():
            count, _br, ret = self._body(func.body, quiet=False)
            if ret == _DIVERGENT and count != 0:
                self._flag_region(func.body)
        return self.diags

    def _body(
        self, body: list[ast.Stmt], *, quiet: bool
    ) -> tuple[int, int, int]:
        """Return ``(barrier_count, break_kind, return_kind)``."""
        count = 0
        brk = _NO
        ret = _NO
        for stmt in body:
            if isinstance(stmt, ast.Hugz):
                count = _add(count, 1)
            elif isinstance(stmt, ast.Gtfo):
                brk = max(brk, _UNIFORM)
            elif isinstance(stmt, ast.Return):
                ret = max(ret, _UNIFORM)
            elif isinstance(stmt, (ast.If, ast.Switch)):
                count, brk, ret = self._branch(
                    stmt, count, brk, ret, quiet=quiet
                )
            elif isinstance(stmt, ast.Loop):
                count, ret = self._loop(stmt, count, ret, quiet=quiet)
            elif isinstance(stmt, ast.TxtStmt):
                c, b, r = self._body(stmt.body, quiet=quiet)
                count = _add(count, c)
                brk = max(brk, b)
                ret = max(ret, r)
            elif isinstance(stmt, ast.FuncDef):
                continue
            else:
                count = _add(count, self._stmt_call_count(stmt))
        return count, brk, ret

    def _branch(
        self,
        stmt: Union[ast.If, ast.Switch],
        count: int,
        brk: int,
        ret: int,
        *,
        quiet: bool,
    ) -> tuple[int, int, int]:
        arms = ast.child_statements(stmt)
        results = [self._body(arm, quiet=quiet) for arm in arms]
        divergent = self.taint.is_divergent(stmt)
        arm_counts = [c for c, _b, _r in results]
        arm_brk = max((b for _c, b, _r in results), default=_NO)
        arm_ret = max((r for _c, _b, r in results), default=_NO)
        if divergent:
            aligned = (
                all(c == arm_counts[0] for c in arm_counts)
                and arm_counts[0] != MANY
            )
            if not aligned:
                if not quiet:
                    self._flag_region([stmt])
                return count, max(brk, self._div(arm_brk)), max(
                    ret, self._div(arm_ret)
                )
            return (
                _add(count, arm_counts[0]),
                max(brk, self._div(arm_brk)),
                max(ret, self._div(arm_ret)),
            )
        joined = arm_counts[0] if arm_counts else 0
        for c in arm_counts[1:]:
            if c != joined:
                joined = MANY  # uniform choice: aligned, count unknown
        return _add(count, joined), max(brk, arm_brk), max(ret, arm_ret)

    @staticmethod
    def _div(kind: int) -> int:
        return _DIVERGENT if kind != _NO else _NO

    def _loop(
        self, stmt: ast.Loop, count: int, ret: int, *, quiet: bool
    ) -> tuple[int, int]:
        c, brk, r = self._body(stmt.body, quiet=quiet)
        divergent = stmt.cond is not None and self.taint.is_divergent(stmt)
        if c != 0 and (divergent or brk == _DIVERGENT or r == _DIVERGENT):
            if not quiet:
                self._flag_region([stmt])
            return count, max(ret, self._div(r))
        if c != 0:
            count = _add(count, MANY)  # aligned, trip count unknown
        return count, max(ret, r)

    def _flag_region(self, stmts: list[ast.Stmt]) -> None:
        for stmt in ast.walk_statements(stmts):
            if isinstance(stmt, ast.Hugz) and id(stmt) not in self._flagged:
                self._flagged.add(id(stmt))
                self.diags.append(
                    Diagnostic(
                        "W101",
                        "HUGZ under PE-divergent control is not matched "
                        "on every path: PEs taking different paths "
                        "deadlock at the barrier",
                        stmt.pos,
                    )
                )
            else:
                for expr in _stmt_exprs(stmt):
                    for sub in _walk_expr(expr):
                        if (
                            isinstance(sub, ast.FuncCall)
                            and self.call_count(sub.name) != 0
                            and id(sub) not in self._flagged
                        ):
                            self._flagged.add(id(sub))
                            self.diags.append(
                                Diagnostic(
                                    "W101",
                                    f"call to '{sub.name}' (which "
                                    f"barriers) under PE-divergent "
                                    f"control may deadlock",
                                    sub.pos,
                                )
                            )


def _stmt_exprs(stmt: ast.Stmt) -> Iterator[ast.Expr]:
    """The expressions a statement evaluates directly (not nested blocks)."""
    if isinstance(stmt, ast.VarDecl):
        if stmt.size is not None:
            yield stmt.size
        if stmt.init is not None:
            yield stmt.init
    elif isinstance(stmt, ast.Assign):
        yield stmt.value
        yield stmt.target
    elif isinstance(stmt, ast.CastStmt):
        yield stmt.target
    elif isinstance(stmt, ast.ExprStmt):
        yield stmt.expr
    elif isinstance(stmt, ast.Visible):
        yield from stmt.args
    elif isinstance(stmt, ast.Gimmeh):
        yield stmt.target
    elif isinstance(stmt, ast.Return):
        yield stmt.expr
    elif isinstance(stmt, ast.If):
        for cond, _body in stmt.mebbe:
            yield cond
    elif isinstance(stmt, ast.Switch):
        for lit, _body in stmt.cases:
            yield lit
    elif isinstance(stmt, ast.Loop):
        if stmt.cond is not None:
            yield stmt.cond
    elif isinstance(stmt, ast.TxtStmt):
        yield stmt.pe


def check_barriers(taint: TaintResult) -> list[Diagnostic]:
    """``W101``: path-sensitive barrier-matching over taint verdicts."""
    return BarrierChecker(taint).check()
