"""Barrier-segmented static happens-before (``W102``).

Forward dataflow over each CFG.  The state is the set of *writes* to
symmetric symbols recorded since the last ``HUGZ`` (the current
*barrier epoch*), each tagged local/remote and with the array-index
range the bounds analysis computed for the access.  ``HUGZ`` clears
the epoch; joins take the union (a write pending on *some* path into a
block is pending in the block).

Within one epoch, program order is used as the SPMD order proxy (every
PE runs the same epoch code), and a conflict is flagged when the index
ranges may overlap:

* ``local write  → remote read``  — the ``nbody_racy`` bug: a getter
  may observe the owner's cell before/while the owner writes it;
* ``remote write → local read``  — the paper's Figure 2 bug;
* ``remote write → local write`` and ``local write → remote write`` —
  unordered write/write on the same cells.

A *remote read before a local write* (e.g. a tree reduction reading the
buddy's previous-epoch value and then updating its own) is deliberately
**not** flagged: the read targets data published before the epoch's
opening barrier.  Halo exchanges stay silent through index
disjointness (``u'Z 9`` vs ``u'Z 1``, interval-valued stencil loops).
Accesses made while a lock is must-held are assumed lock-synchronized
and skipped; purely remote↔remote conflicts are the lock analysis's
domain.  Every ``W102`` carries an insert-``HUGZ`` fix-it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..lang import ast
from ..lang.errors import SourcePos
from .bounds import BoundsResult, Rng, ranges_may_overlap
from .cfg import (
    BasicBlock,
    Branch,
    CfgStmt,
    Dispatch,
    LoopInc,
    LoopInit,
    Term,
    TxtPe,
)
from .dataflow import ForwardAnalysis, run_forward
from .diagnostics import Diagnostic, FixIt
from .pe_taint import TaintResult, _walk_expr

#: one recorded write: (symbol, "lw"|"rw", id(Index node) or -1)
WriteKey = tuple[str, str, int]


@dataclass(frozen=True, slots=True)
class EpochState:
    writes: frozenset[WriteKey] = frozenset()
    held: frozenset[str] = frozenset()  # must-held locks


@dataclass(frozen=True, slots=True)
class _Access:
    name: str
    remote: bool
    is_write: bool
    key: int  # id(Index node) or -1
    pos: SourcePos


@dataclass(frozen=True, slots=True)
class _Call:
    name: str
    pos: SourcePos


_Event = Union[_Access, _Call, None]


class RaceAnalysis(ForwardAnalysis[EpochState]):
    def __init__(self, checker: "RaceChecker") -> None:
        self.checker = checker

    def boundary(self) -> EpochState:
        return EpochState()

    def join(self, a: EpochState, b: EpochState) -> EpochState:
        return EpochState(a.writes | b.writes, a.held & b.held)

    def transfer_stmt(
        self, state: EpochState, entry: CfgStmt, block: BasicBlock
    ) -> EpochState:
        stmt, _ctx = entry
        if isinstance(stmt, (LoopInit, LoopInc)):
            return state
        if isinstance(stmt, TxtPe):
            return self._events(state, self.checker.expr_events(stmt.node.pe))
        if isinstance(stmt, ast.Hugz):
            return EpochState(frozenset(), state.held)
        if isinstance(stmt, ast.LockStmt):
            return self._lock(state, stmt)
        return self._events(state, self.checker.stmt_events(stmt))

    def transfer_term(
        self, state: EpochState, term: Term, block: BasicBlock
    ) -> EpochState:
        if isinstance(term, Branch) and term.cond is not None:
            return self._events(
                state, self.checker.expr_events(term.cond)
            )
        if isinstance(term, Dispatch):
            for lit, _b in term.cases:
                state = self._events(state, self.checker.expr_events(lit))
        return state

    def _lock(self, state: EpochState, stmt: ast.LockStmt) -> EpochState:
        if isinstance(stmt.target, ast.VarRef):
            name = stmt.target.name
            if stmt.kind == "lock":
                return EpochState(state.writes, state.held | {name})
            if stmt.kind == "unlock":
                return EpochState(state.writes, state.held - {name})
            return state
        if stmt.kind == "unlock":  # dynamic unlock: may release anything
            return EpochState(state.writes, frozenset())
        return state

    def _events(
        self, state: EpochState, events: list[_Event]
    ) -> EpochState:
        writes = state.writes
        for event in events:
            if event is None:
                continue
            if isinstance(event, _Call):
                summary = self.checker.summaries.get(event.name)
                if summary is None:
                    continue
                accesses, has_barrier = summary
                if has_barrier:
                    writes = frozenset()
                    continue
                for acc in accesses:
                    writes = self._one(
                        writes, acc, state.held, at=event.pos
                    )
                continue
            writes = self._one(writes, event, state.held, at=event.pos)
        return EpochState(writes, state.held)

    def _one(
        self,
        writes: frozenset[WriteKey],
        acc: _Access,
        held: frozenset[str],
        *,
        at: SourcePos,
    ) -> frozenset[WriteKey]:
        if held:
            return writes  # assumed lock-synchronized
        checker = self.checker
        if acc.is_write:
            against = "lw" if acc.remote else "rw"
            verb = (
                "remote write to '{0}' conflicts with a local write"
                if acc.remote
                else "local write to '{0}' conflicts with a remote write"
            )
            checker.conflicts(writes, acc, against, verb.format(acc.name), at)
            kind = "rw" if acc.remote else "lw"
            key = (acc.name, kind, acc.key)
            checker.note_pos(key, acc.pos)
            return writes | {key}
        if acc.remote:
            checker.conflicts(
                writes,
                acc,
                "lw",
                f"remote read of '{acc.name}' may observe an "
                f"unsynchronized local write",
                at,
            )
        else:
            checker.conflicts(
                writes,
                acc,
                "rw",
                f"local read of '{acc.name}' after a remote write "
                f"(the Figure 2 race)",
                at,
            )
        return writes


class RaceChecker:
    def __init__(self, taint: TaintResult, bounds: BoundsResult) -> None:
        self.taint = taint
        self.bounds = bounds
        self.program = taint.program
        self.diags: list[Diagnostic] = []
        self._seen: set[tuple[int, int, str]] = set()
        self.symmetric: set[str] = {
            s.name
            for s in ast.walk_statements(self.program.body)
            if isinstance(s, ast.VarDecl) and s.scope == "WE"
        }
        self.pos_of: dict[WriteKey, SourcePos] = {}
        self.summaries: dict[str, tuple[list[_Access], bool]] = {}
        for stmt in ast.walk_statements(self.program.body):
            if isinstance(stmt, ast.FuncDef):
                self.summaries[stmt.name] = self._summarise(stmt)

    # -- reporting -----------------------------------------------------

    def note_pos(self, key: WriteKey, pos: SourcePos) -> None:
        self.pos_of.setdefault(key, pos)

    def conflicts(
        self,
        writes: frozenset[WriteKey],
        acc: _Access,
        against_kind: str,
        message: str,
        at: SourcePos,
    ) -> None:
        rng = self._range(acc.key)
        for name, kind, key in writes:
            if name != acc.name or kind != against_kind:
                continue
            if not ranges_may_overlap(rng, self._range(key)):
                continue
            prior = self.pos_of.get((name, kind, key))
            where = f" at line {prior.line}" if prior is not None else ""
            self._report(
                Diagnostic(
                    "W102",
                    f"{message}{where} in the same barrier epoch "
                    f"(no HUGZ in between)",
                    at,
                    fixit=FixIt("HUGZ", at),
                )
            )
            return

    def _report(self, diag: Diagnostic) -> None:
        key = (diag.pos.line, diag.pos.col, diag.message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.diags.append(diag)

    def _range(self, key: int) -> Optional[Rng]:
        if key == -1:
            return None
        return self.bounds.index_ranges.get(key)

    # -- event extraction ----------------------------------------------

    def expr_events(
        self, expr: ast.Expr, skip: Optional[ast.Expr] = None
    ) -> list[_Event]:
        events: list[_Event] = []
        consumed: set[int] = set()
        for sub in _walk_expr(expr):
            if sub is skip:
                continue
            if isinstance(sub, ast.FuncCall):
                events.append(_Call(sub.name, sub.pos))
            elif isinstance(sub, ast.Index) and isinstance(
                sub.base, ast.VarRef
            ):
                base = sub.base
                consumed.add(id(base))
                if base.name in self.symmetric:
                    events.append(
                        _Access(
                            base.name,
                            base.qualifier == "UR",
                            False,
                            id(sub),
                            sub.pos,
                        )
                    )
            elif isinstance(sub, ast.VarRef) and id(sub) not in consumed:
                if sub.name in self.symmetric:
                    events.append(
                        _Access(
                            sub.name,
                            sub.qualifier == "UR",
                            False,
                            -1,
                            sub.pos,
                        )
                    )
        return events

    def _write_event(self, target: ast.Expr) -> Optional[_Access]:
        if isinstance(target, ast.VarRef):
            if target.name in self.symmetric:
                return _Access(
                    target.name,
                    target.qualifier == "UR",
                    True,
                    -1,
                    target.pos,
                )
            return None
        if isinstance(target, ast.Index) and isinstance(
            target.base, ast.VarRef
        ):
            base = target.base
            if base.name in self.symmetric:
                return _Access(
                    base.name,
                    base.qualifier == "UR",
                    True,
                    id(target),
                    target.pos,
                )
        return None

    def stmt_events(self, stmt: ast.Stmt) -> list[_Event]:
        events: list[_Event] = []
        if isinstance(stmt, ast.Assign):
            events += self.expr_events(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Index):
                events += self.expr_events(target.index)
            events.append(self._write_event(target))
        elif isinstance(stmt, ast.VarDecl):
            if stmt.size is not None:
                events += self.expr_events(stmt.size)
            if stmt.init is not None:
                events += self.expr_events(stmt.init)
        elif isinstance(stmt, ast.ExprStmt):
            events += self.expr_events(stmt.expr)
        elif isinstance(stmt, ast.Visible):
            for arg in stmt.args:
                events += self.expr_events(arg)
        elif isinstance(stmt, ast.Gimmeh):
            target = stmt.target
            if isinstance(target, ast.Index):
                events += self.expr_events(target.index)
            events.append(self._write_event(target))
        elif isinstance(stmt, ast.Return):
            events += self.expr_events(stmt.expr)
        return events

    # -- function summaries --------------------------------------------

    def _summarise(
        self, func: ast.FuncDef
    ) -> tuple[list[_Access], bool]:
        accesses: list[_Access] = []
        has_barrier = False
        for stmt in ast.walk_statements(func.body):
            if isinstance(stmt, ast.Hugz):
                has_barrier = True
                continue
            for event in self.stmt_events(stmt):
                if isinstance(event, _Access):
                    # summarised accesses lose their index precision
                    accesses.append(
                        _Access(
                            event.name,
                            event.remote,
                            event.is_write,
                            -1,
                            event.pos,
                        )
                    )
        reads = [a for a in accesses if not a.is_write]
        writes = [a for a in accesses if a.is_write]
        return reads + writes, has_barrier

    # -- driving -------------------------------------------------------

    def check(self) -> list[Diagnostic]:
        if not self.symmetric:
            return []
        for _fname, cfg in self.taint.cfgs.items():
            run_forward(cfg, RaceAnalysis(self))
        return self.diags


def check_races(taint: TaintResult, bounds: BoundsResult) -> list[Diagnostic]:
    return RaceChecker(taint, bounds).check()
