"""Experiment orchestration over the workload registry.

``repro.bench`` sweeps :mod:`repro.workloads` kernels across
engine x executor x PE-count, verifies every run twice (the workload's
own result checker, plus a cross-engine differential on VISIBLE output),
times best-of-reps wall clock, replays op traces on the NoC machine
models, and writes ``BENCH_workloads.json`` — with a ``--baseline``
mode that fails on >20% slowdowns.

Entry points: the ``lolbench`` console script, ``python -m repro.bench``,
or programmatically::

    from repro.bench import SweepConfig, run_sweep
    payload = run_sweep(SweepConfig(workloads=("ring", "heat2d"), smoke=True))
"""

from .baseline import (
    NOISE_FLOOR_S,
    Comparison,
    compare_to_baseline,
    regressions,
    render_comparison,
)
from .cli import main
from .orchestrator import (
    SweepConfig,
    best_of,
    collect_failures,
    default_machines,
    percentile,
    render_results,
    run_sweep,
)

__all__ = [
    "NOISE_FLOOR_S",
    "Comparison",
    "SweepConfig",
    "best_of",
    "collect_failures",
    "compare_to_baseline",
    "default_machines",
    "main",
    "percentile",
    "regressions",
    "render_comparison",
    "render_results",
    "run_sweep",
]
