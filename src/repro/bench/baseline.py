"""Regression comparison against a stored ``BENCH_workloads.json``.

``lolbench --baseline old.json`` reruns the sweep and compares each
(workload, engine, executor, n_pes) cell's best-of-reps seconds against
the stored run.  A cell regresses when it is more than ``threshold``
(default 20%) slower *and* the absolute slowdown exceeds a small noise
floor (interpreter cells can be sub-millisecond, where best-of timing
jitter alone exceeds 20%).  Any regression makes the CLI exit non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

#: absolute slowdown (seconds) below which a ratio miss is noise
NOISE_FLOOR_S = 0.002

Key = Tuple[str, str, str, int, Tuple[Tuple[str, int], ...]]


def _key(row: Mapping) -> Key:
    # Params are part of the identity: a smoke-sized cell must never be
    # compared against a full-sized one (the "regression" would just be
    # the problem size).
    return (
        str(row["workload"]),
        str(row["engine"]),
        str(row["executor"]),
        int(row["n_pes"]),
        tuple(sorted(row.get("params", {}).items())),
    )


def _render_key(key: Key) -> str:
    name, engine, executor, n_pes, params = key
    cell = f"{name}/{engine}/{executor}/{n_pes}"
    if params:
        cell += "[" + ",".join(f"{k}={v}" for k, v in params) + "]"
    return cell


def _timed_rows(payload: Mapping) -> Dict[Key, float]:
    return {
        _key(row): float(row["seconds"])
        for row in payload.get("results", [])
        if "seconds" in row
    }


@dataclass(frozen=True, slots=True)
class Comparison:
    key: Key
    baseline_s: float
    current_s: float

    @property
    def ratio(self) -> float:
        if self.baseline_s <= 0.0:
            return float("inf") if self.current_s > 0.0 else 1.0
        return self.current_s / self.baseline_s

    def is_regression(self, threshold: float) -> bool:
        return (
            self.ratio > 1.0 + threshold
            and self.current_s - self.baseline_s > NOISE_FLOOR_S
        )


def compare_to_baseline(
    current: Mapping, baseline: Mapping
) -> List[Comparison]:
    """Pair up every cell present in both payloads."""
    base = _timed_rows(baseline)
    cur = _timed_rows(current)
    return [
        Comparison(key, base[key], cur[key])
        for key in sorted(cur)
        if key in base
    ]


def render_comparison(
    comparisons: Sequence[Comparison], threshold: float
) -> str:
    """Terminal report; regressions are flagged on their row."""
    if not comparisons:
        return (
            "baseline comparison: no overlapping cells (same workloads, "
            "engines, executors, PE counts, and parameter sizes?)"
        )
    width = max(len(_render_key(c.key)) for c in comparisons)
    lines = [
        f"{'cell':<{width}} {'baseline':>10} {'current':>10} {'ratio':>7}"
    ]
    for c in comparisons:
        flag = "  << REGRESSION" if c.is_regression(threshold) else ""
        lines.append(
            f"{_render_key(c.key):<{width}} {c.baseline_s:>10.4f} "
            f"{c.current_s:>10.4f} {c.ratio:>6.2f}x{flag}"
        )
    regressions = [c for c in comparisons if c.is_regression(threshold)]
    lines.append(
        f"{len(comparisons)} cells compared, {len(regressions)} "
        f"regression(s) beyond {threshold:.0%} (+{NOISE_FLOOR_S * 1e3:.0f}ms "
        "noise floor)"
    )
    return "\n".join(lines)


def regressions(
    comparisons: Sequence[Comparison], threshold: float
) -> List[Comparison]:
    return [c for c in comparisons if c.is_regression(threshold)]
