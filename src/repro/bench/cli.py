"""The ``lolbench`` command line (also ``python -m repro.bench``).

Examples::

    lolbench                               # full sweep -> BENCH_workloads.json
    lolbench --smoke --reps 2              # CI-sized run
    lolbench --workloads heat2d scan --pes 1 2 4
    lolbench --set nbody.particles=16 --set nbody.steps=4
    lolbench --baseline BENCH_workloads.json   # non-zero exit on >20% slowdown
    lolbench --list                        # show the registry
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, Optional, Sequence

from ..launcher import ENGINES, EXECUTORS
from ..workloads import WorkloadError, all_workloads, get_workload
from .baseline import compare_to_baseline, regressions, render_comparison
from .orchestrator import SweepConfig, render_results, run_sweep

DEFAULT_OUT = "BENCH_workloads.json"


def _parse_set(entries: Sequence[str]) -> Dict[str, Dict[str, int]]:
    """``--set workload.param=value`` overrides -> nested dict."""
    params: Dict[str, Dict[str, int]] = {}
    for entry in entries:
        try:
            dotted, value = entry.split("=", 1)
            workload, param = dotted.split(".", 1)
            params.setdefault(workload, {})[param] = int(value)
        except ValueError:
            raise WorkloadError(
                f"bad --set {entry!r} (expected workload.param=int)"
            ) from None
    for name, overrides in params.items():
        # Typo-proofing: an unknown workload/param or an out-of-range
        # value must fail loudly here, before any cell has been swept.
        for param, value in overrides.items():
            get_workload(name).param(param).validate(value)
    return params


def _render_registry() -> str:
    rows = [(w.name, w.domain, w.comm_pattern) for w in all_workloads()]
    widths = [max(len(r[i]) for r in rows + [("name", "domain", "comm pattern")]) for i in range(3)]
    lines = [
        f"{'name':<{widths[0]}}  {'domain':<{widths[1]}}  comm pattern",
        f"{'-' * widths[0]}  {'-' * widths[1]}  {'-' * widths[2]}",
    ]
    for w in all_workloads():
        lines.append(
            f"{w.name:<{widths[0]}}  {w.domain:<{widths[1]}}  {w.comm_pattern}"
        )
        for p in w.params:
            lines.append(
                f"  {'':<{widths[0]}}--set {w.name}.{p.name}=N "
                f"(default {p.default}): {p.doc}"
            )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lolbench",
        description="workload sweep orchestrator: engine x executor x "
        "PE-count with checker + differential verification and NoC "
        "machine-model projections",
    )
    parser.add_argument(
        "--workloads", nargs="*", default=None, metavar="NAME",
        help="workloads to run (default: every registered workload)",
    )
    parser.add_argument(
        "--engines", nargs="+", default=tuple(ENGINES),
        choices=ENGINES, help="execution engines to sweep",
    )
    parser.add_argument(
        "--executors", nargs="+", default=("thread",), choices=EXECUTORS,
        help="PE executors to sweep (default: thread)",
    )
    parser.add_argument(
        "--pes", nargs="+", type=int, default=(1, 4), metavar="N",
        help="PE counts to sweep (default: 1 4)",
    )
    parser.add_argument("--reps", type=int, default=3, help="best-of reps")
    parser.add_argument("--seed", type=int, default=42, help="RNG seed")
    parser.add_argument(
        "--smoke", action="store_true",
        help="use each workload's small smoke parameters (CI sizes)",
    )
    parser.add_argument(
        "--set", action="append", default=[], metavar="WORKLOAD.PARAM=N",
        dest="overrides", help="override a workload parameter",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT, help=f"output JSON (default {DEFAULT_OUT})"
    )
    parser.add_argument(
        "--baseline", default=None, metavar="JSON",
        help="compare against a stored BENCH_workloads.json; exit non-zero "
        "on regressions",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="regression threshold as a fraction (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="attach per-row observability blocks (barrier-wait p50/p99, "
        "comm-op counts, VM events) via one extra instrumented run per "
        "row; timed reps stay uninstrumented",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered workloads and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        print(_render_registry())
        return 0
    baseline_payload = None
    if args.baseline:
        # Load before the sweep: a typo'd path must not cost a full run.
        try:
            baseline_payload = json.loads(
                pathlib.Path(args.baseline).read_text()
            )
        except (OSError, json.JSONDecodeError) as exc:
            print(f"lolbench: bad --baseline {args.baseline!r}: {exc}",
                  file=sys.stderr)
            return 2
    try:
        config = SweepConfig(
            workloads=tuple(args.workloads or ()),
            engines=tuple(args.engines),
            executors=tuple(args.executors),
            pe_counts=tuple(args.pes),
            reps=args.reps,
            seed=args.seed,
            smoke=args.smoke,
            params=_parse_set(args.overrides),
            obs=args.obs,
        )
        config.selected()  # validate workload names before sweeping
        payload = run_sweep(config)
    except WorkloadError as exc:
        print(f"lolbench: {exc}", file=sys.stderr)
        return 2

    print(render_results(payload["results"]))
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")

    exit_code = 0
    if payload["failures"]:
        print(f"\n{len(payload['failures'])} verification failure(s):",
              file=sys.stderr)
        for failure in payload["failures"]:
            print(f"  {failure}", file=sys.stderr)
        exit_code = 1

    if baseline_payload is not None:
        comparisons = compare_to_baseline(payload, baseline_payload)
        print()
        print(render_comparison(comparisons, args.threshold))
        if regressions(comparisons, args.threshold):
            exit_code = exit_code or 3
    return exit_code
