"""The experiment orchestrator: sweep workloads across engine x
executor x PE-count, verify every run, and collect structured results.

For each (workload, executor, n_pes) cell the orchestrator:

1. generates the kernel source from the workload registry;
2. runs it **traced** once per engine, feeding the result to the
   workload's checker and capturing the op trace;
3. cross-checks the engines **differentially** (bit-identical VISIBLE
   output for the same ``(source, n_pes, seed)`` — skipped only for
   workloads registered ``deterministic=False``);
4. times best-of-``reps`` untraced runs per engine;
5. replays the op trace against the NoC machine models (Epiphany-III,
   Cray XC40, ...) for modeled time projections.

``run_sweep`` returns the full ``BENCH_workloads.json`` payload;
verification failures are recorded in the rows (and summarized in
``payload["failures"]``) rather than raised, so one broken cell cannot
hide the rest of the sweep.

``engine="c"`` rows are special-cased three ways: they always run on
the process executor (native PEs are OS processes), they carry no
trace/projection data (native binaries are not instrumented), and a
host without a C compiler records an explicit per-row skip instead of
an error — the matrix stays green on interpreter-only machines.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence


from ..compiler import CompileError, NativeToolchainError
from ..compiler.native import uses_random
from ..launcher import run_lolcode
from ..noc import MachineModel, cray_xc40, epiphany_iii
from ..noc.report import projection_rows
from ..workloads import Workload, all_workloads, get_workload

SCHEMA_VERSION = 1


def best_of(fn, reps: int) -> float:
    """Best-of-``reps`` wall-clock seconds for ``fn()``."""
    best = float("inf")
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# The shared p50/p99 helper now lives in the observability plane
# (histogram summaries use it too); re-exported here so every historic
# ``from repro.bench import percentile`` import keeps working.
from ..obs import percentile  # noqa: E402,F401


def default_machines() -> List[MachineModel]:
    """The paper's two demonstration platforms."""
    return [epiphany_iii(), cray_xc40()]


@dataclass(frozen=True)
class SweepConfig:
    """What to run: the experiment matrix plus measurement knobs."""

    workloads: Sequence[str] = ()  # empty = every registered workload
    engines: Sequence[str] = ("closure", "ast", "vm", "compiled")
    executors: Sequence[str] = ("thread",)
    pe_counts: Sequence[int] = (1, 4)
    reps: int = 3
    seed: int = 42
    smoke: bool = False  # use each workload's small smoke sizes
    #: per-workload param overrides, e.g. {"nbody": {"particles": 16}}
    params: Mapping[str, Mapping[str, int]] = field(default_factory=dict)
    machines: Optional[Sequence[MachineModel]] = None
    #: attach an ``obs`` block (barrier-wait p50/p99, comm-op counts,
    #: VM engine events) to every row via one extra metrics-armed run —
    #: outside the timed reps, so ``seconds`` stays uninstrumented
    obs: bool = False

    def selected(self) -> List[Workload]:
        if not self.workloads:
            return all_workloads()
        return [get_workload(name) for name in self.workloads]


def _measure_cell(
    workload: Workload,
    executor: str,
    n_pes: int,
    config: SweepConfig,
    machines: Sequence[MachineModel],
) -> List[dict]:
    """All engine rows for one (workload, executor, n_pes) cell."""
    params = workload.bind_params(
        config.params.get(workload.name), smoke=config.smoke
    )
    source = workload.source(params)
    rows: List[dict] = []
    outputs: Dict[str, str] = {}
    for engine in config.engines:
        native = engine == "c"
        # The native engine's PEs are always OS processes; record the
        # executor that actually hosts them rather than the sweep label.
        executor_used = "process" if native else executor

        def once(trace: bool = False):
            return run_lolcode(
                source,
                n_pes,
                executor=executor_used,
                seed=config.seed,
                engine=engine,
                trace=trace,
                filename=f"<workload:{workload.name}>",
            )

        row = {
            "workload": workload.name,
            "engine": engine,
            "executor": executor_used,
            "n_pes": n_pes,
            "params": dict(params),
        }
        try:
            # Native binaries are not instrumented: their checker run is
            # untraced and their rows carry no trace/projection data.
            traced = once(trace=not native)
        except NativeToolchainError as exc:
            # No C compiler on this host: an environment skip, recorded
            # per row exactly like a compile restriction.
            row["skipped"] = f"native toolchain unavailable: {exc}"
            rows.append(row)
            continue
        except CompileError as exc:
            # A documented compile-time restriction of the compiled
            # backend (SRS computed identifiers, nested/symmetric
            # declarations in functions).  Record an explicit skip with
            # the reason — never silently fall back to another engine.
            row["skipped"] = f"compile-time restriction: {exc}"
            rows.append(row)
            continue
        except Exception as exc:  # noqa: BLE001 - recorded, not raised
            row["error"] = f"{type(exc).__name__}: {exc}"
            rows.append(row)
            continue
        try:
            problems = workload.check(traced, n_pes, params)
        except Exception as exc:  # noqa: BLE001 - a checker tripping over
            # malformed output is itself a verification failure, not a
            # reason to lose the rest of the sweep
            problems = [f"checker raised {type(exc).__name__}: {exc}"]
        row["checker"] = "pass" if not problems else problems
        outputs[engine] = traced.output
        once()  # warm the untraced compile cache before timing
        row["seconds"] = round(best_of(once, config.reps), 6)
        if config.obs and not native:
            row["obs"] = _instrumented_run(once)
        if traced.trace is not None:
            row["trace"] = traced.trace.summary()
            row["projections"] = projection_rows(traced.trace, list(machines))
        rows.append(row)

    # Differential verification: every engine must emit identical output.
    # The native engine draws from C's rand(), not the interpreters'
    # seeded Mersenne Twister, so RNG-using kernels cannot be compared
    # against it bit-for-bit; that skip is recorded explicitly.
    native_rng_differs = False
    if "c" in outputs:
        try:
            native_rng_differs = uses_random(source)
        except Exception:  # noqa: BLE001 - analysis is best-effort here
            native_rng_differs = False
    baseline_engine = next(
        (e for e in outputs if e != "c"), next(iter(outputs), None)
    )
    for row in rows:
        engine = row["engine"]
        if "error" in row or "skipped" in row or engine not in outputs:
            continue
        involves_native = engine == "c" or baseline_engine == "c"
        if not workload.deterministic:
            row["differential"] = "skipped (nondeterministic workload)"
        elif len(outputs) < 2:
            row["differential"] = "skipped (single engine)"
        elif involves_native and native_rng_differs:
            row["differential"] = (
                "skipped (native rand() stream differs from the Python "
                "engines' seeded RNG)"
            )
        elif outputs[engine] == outputs[baseline_engine]:
            row["differential"] = "pass"
        else:
            row["differential"] = (
                f"output differs from engine {baseline_engine!r}"
            )
    return rows


def _instrumented_run(once) -> dict:
    """One extra metrics-armed run for a row's ``obs`` block.

    Snapshot-diffing (rather than draining) means a concurrently armed
    caller keeps its registry intact; arming state is restored after.
    """
    from .. import obs as _obs

    prior = _obs.ACTIVE
    if prior is None or not prior.metrics_on:
        _obs.arm(prior.mode + ",metrics" if prior is not None else "metrics")
    reg = _obs.get_registry()
    before = reg.snapshot(collect=False)
    try:
        once()
    finally:
        after = reg.snapshot(collect=False)
        if prior is None:
            _obs.disarm()
        else:
            _obs.ACTIVE = prior
    delta = _obs.diff_snapshots(before, after)
    out: dict = {}
    bar = delta.get("lol_barrier_wait_seconds")
    if bar and bar.get("series"):
        samples = [
            s for state in bar["series"].values() for s in state["samples"]
        ]
        count = sum(state["count"] for state in bar["series"].values())
        if samples:
            out["barrier_wait"] = {
                "count": count,
                "p50_s": round(percentile(samples, 50), 9),
                "p99_s": round(percentile(samples, 99), 9),
            }
    for metric, label, key in (
        ("lol_comm_ops_total", "op", "comm_ops"),
        ("lol_comm_bytes_total", "op", "comm_bytes"),
        ("lol_vm_events_total", "event", "vm_events"),
    ):
        payload = delta.get(metric)
        if payload and payload.get("series"):
            out[key] = {
                dict(json.loads(raw)).get(label, "?"): value
                for raw, value in sorted(payload["series"].items())
            }
    return out


def run_sweep(config: SweepConfig) -> dict:
    """Execute the whole matrix; returns the JSON payload."""
    machines = (
        list(config.machines) if config.machines else default_machines()
    )
    results: List[dict] = []
    for workload in config.selected():
        for executor in config.executors:
            for n_pes in config.pe_counts:
                if n_pes < workload.min_pes:
                    continue
                results.extend(
                    _measure_cell(workload, executor, n_pes, config, machines)
                )
    payload = {
        "schema": SCHEMA_VERSION,
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "reps": config.reps,
            "seed": config.seed,
            "smoke": config.smoke,
            "machines": [m.name for m in machines],
            "note": "seconds = best-of-reps untraced wall clock via "
            "run_lolcode; projections = op-trace replay on machine models",
        },
        "results": results,
        "failures": collect_failures(results),
    }
    return payload


def collect_failures(results: Sequence[Mapping]) -> List[str]:
    """Human-readable list of every failed verification in a sweep."""
    failures: List[str] = []
    for row in results:
        tag = (
            f"{row['workload']}[{row['engine']}/{row['executor']}"
            f"/np{row['n_pes']}]"
        )
        if "skipped" in row:
            # An explicit, reasoned skip (compiled-engine restriction)
            # is a recorded outcome, not a verification failure.
            continue
        if "error" in row:
            failures.append(f"{tag}: error: {row['error']}")
            continue
        if row.get("checker") != "pass":
            problems = row.get("checker") or ["no checker result"]
            failures.append(f"{tag}: checker: {problems[0]}")
        diff = row.get("differential", "pass")
        if diff != "pass" and not diff.startswith("skipped"):
            failures.append(f"{tag}: differential: {diff}")
    return failures


def render_results(results: Sequence[Mapping]) -> str:
    """Fixed-width summary table for the terminal."""
    if not results:
        return "(no results)"
    width = max(len(r["workload"]) for r in results)
    lines = [
        f"{'workload':<{width}} {'engine':>8} {'exec':>7} {'PEs':>4} "
        f"{'seconds':>10} {'check':>6} {'diff':>5} "
        f"{'epiphany':>11} {'xc40':>11}"
    ]
    for r in results:
        if "skipped" in r:
            lines.append(
                f"{r['workload']:<{width}} {r['engine']:>8} "
                f"{r['executor']:>7} {r['n_pes']:>4} SKIP: {r['skipped']}"
            )
            continue
        if "error" in r:
            lines.append(
                f"{r['workload']:<{width}} {r['engine']:>8} "
                f"{r['executor']:>7} {r['n_pes']:>4} ERROR: {r['error']}"
            )
            continue
        check = "ok" if r.get("checker") == "pass" else "FAIL"
        diff = r.get("differential", "-")
        diff = {"pass": "ok"}.get(diff, "skip" if diff.startswith("skipped") else "FAIL")
        proj = {p["machine"]: p["makespan_s"] for p in r.get("projections", [])}
        epiphany = next(
            (v for k, v in proj.items() if "Epiphany" in k), None
        )
        xc40 = next((v for k, v in proj.items() if "XC40" in k), None)

        def _ms(value):
            # Untraced rows (the native engine) have no projections.
            return f"{value * 1e3:>9.3f}ms" if value is not None else f"{'-':>11}"

        lines.append(
            f"{r['workload']:<{width}} {r['engine']:>8} {r['executor']:>7} "
            f"{r['n_pes']:>4} {r['seconds']:>10.4f} {check:>6} {diff:>5} "
            f"{_ms(epiphany)} {_ms(xc40)}"
        )
    return "\n".join(lines)
