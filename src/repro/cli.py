"""Command-line tools.

* ``lcc`` — the paper's source-to-source compiler: LOLCODE in, C with
  OpenSHMEM out (``--emit=c``, default, exactly Section VI.E:
  ``lcc code.lol -o executable.c``) or runnable Python out
  (``--emit=python``).
* ``lolcc`` — the native compiler *driver* on top of ``lcc``: dump the
  C a program compiles to for a given launch width, or ``--build`` a
  standalone executable against the bundled single-node SHMEM shim
  (what ``run_lolcode(engine="c")`` uses under the hood).
* ``loli`` — serial reference interpreter (the role of ``lci``).
* ``loldis`` — disassembler for the register-bytecode VM engine: print
  the bytecode a program compiles to (``--engine vm``'s executable form).
* ``lolrun`` — SPMD launcher, the ``coprsh`` / ``aprun`` analogue:
  ``lolrun -np 16 code.lol`` (``--engine c`` runs the natively
  compiled binary, one OS process per PE).
* ``lolbench`` — workload sweep orchestrator over the
  :mod:`repro.workloads` registry (also ``python -m repro.bench``).
* ``lolserve`` — persistent execution service: warm worker pool behind a
  JSON-over-unix-socket job queue (:mod:`repro.service`).
* ``loltrace`` — run a program or workload with tracing armed and write
  Chrome trace-event JSON (opens in Perfetto; :mod:`repro.obs`).
* ``lolprof`` — per-opcode VM profiler: self-time and dispatch counts
  for the register-bytecode engine.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .lang.errors import LolError


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def _fail(exc: LolError) -> int:
    print(exc.render(), file=sys.stderr)
    return 1


def _check_gate(text: str, filename: str) -> int:
    """Run the static checker before a compile; 2 blocks the build."""
    from .lang.checker import check_source

    diags = check_source(text, filename=filename)
    for diag in diags:
        print(diag.render(), file=sys.stderr)
    return 2 if any(d.is_error for d in diags) else 0


def lcc_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lcc",
        description="LOLCODE source-to-source compiler "
        "(I Can Has Supercomputer? reproduction)",
    )
    parser.add_argument("source", help="input .lol file ('-' for stdin)")
    parser.add_argument(
        "-o", "--output", default="-", help="output file (default stdout)"
    )
    parser.add_argument(
        "--emit",
        choices=("c", "python"),
        default="c",
        help="target language (default: c, the paper's backend)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the static analyses first; E-codes block the compile "
        "(exit 2), warnings go to stderr",
    )
    args = parser.parse_args(argv)
    try:
        text = _read(args.source)
        if args.check:
            rc = _check_gate(text, args.source)
            if rc:
                return rc
        if args.emit == "c":
            from .compiler import compile_c

            out = compile_c(text, filename=args.source)
        else:
            from .compiler import compile_python

            out = compile_python(text, filename=args.source)
    except LolError as exc:
        return _fail(exc)
    if args.output == "-":
        sys.stdout.write(out)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(out)
    return 0


def lolcc_main(argv: Optional[Sequence[str]] = None) -> int:
    """Native compiler driver: dump generated C or build an executable."""
    parser = argparse.ArgumentParser(
        prog="lolcc",
        description="native LOLCODE compiler driver: print the C a "
        "program compiles to, or --build a standalone executable against "
        "the bundled single-node SHMEM shim",
        epilog="a built binary runs serially as-is; for an n-PE world "
        "launch one process per PE with LOL_SHMEM_PE/LOL_SHMEM_NPES/"
        "LOL_SHMEM_FILE set (or just use `lolrun --engine c`)",
    )
    parser.add_argument("source", help="input .lol file ('-' for stdin)")
    parser.add_argument(
        "-o",
        "--output",
        default="-",
        help="output path (default: C to stdout; with --build, print the "
        "cached binary's path instead of copying it)",
    )
    parser.add_argument(
        "--build",
        action="store_true",
        help="compile the generated C with the system C compiler instead "
        "of dumping it",
    )
    parser.add_argument(
        "-np",
        "--n-pes",
        type=int,
        default=1,
        dest="n_pes",
        help="launch width folded into MAH FRENZ symmetric array extents "
        "(default 1; the binary is specific to this width when the "
        "program sizes arrays with MAH FRENZ)",
    )
    parser.add_argument(
        "--cc",
        default=None,
        help="C compiler to use (default: $LOL_CC, cc, gcc, clang)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the static analyses first; E-codes block the build "
        "(exit 2), warnings go to stderr",
    )
    args = parser.parse_args(argv)
    try:
        text = _read(args.source)
        if args.check:
            rc = _check_gate(text, args.source)
            if rc:
                return rc
        if args.build:
            import shutil

            from .compiler.native import build_native

            binary = build_native(
                text, filename=args.source, n_pes=args.n_pes, cc=args.cc
            )
            if args.output == "-":
                print(binary)
            else:
                shutil.copy2(binary, args.output)
                print(f"built {args.output}")
            return 0
        from .compiler import compile_c

        out = compile_c(text, filename=args.source, n_pes=args.n_pes)
    except LolError as exc:
        return _fail(exc)
    if args.output == "-":
        sys.stdout.write(out)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(out)
    return 0


def loli_main(argv: Optional[Sequence[str]] = None) -> int:
    from .interp import ENGINES

    parser = argparse.ArgumentParser(
        prog="loli", description="serial LOLCODE interpreter"
    )
    parser.add_argument("source", help="input .lol file ('-' for stdin)")
    parser.add_argument(
        "--max-steps", type=int, default=None, help="statement step limit"
    )
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="execution engine (closure = compiled closures, default; "
        "ast = reference tree-walker; vm = register-bytecode VM; "
        "compiled = lcc-style LOLCODE-to-Python compilation; c = "
        "natively compiled single-PE binary; with --max-steps the "
        "default becomes vm, which counts steps natively)",
    )
    args = parser.parse_args(argv)
    # Step limits are honoured natively by vm and ast only; the closure
    # default would be refused, so a bare --max-steps routes to the VM.
    engine = args.engine or ("vm" if args.max_steps is not None else "closure")
    try:
        from .launcher import run_lolcode

        result = run_lolcode(
            _read(args.source),
            1,
            executor="serial",
            filename=args.source,
            seed=args.seed,
            max_steps=args.max_steps,
            engine=engine,
        )
    except LolError as exc:
        return _fail(exc)
    sys.stdout.write(result.output)
    return 0


def loldis_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="loldis",
        description="disassemble a LOLCODE program to the register "
        "bytecode the VM engine executes",
    )
    parser.add_argument("source", help="input .lol file ('-' for stdin)")
    parser.add_argument(
        "--count-flops",
        action="store_true",
        help="compile with FLOP accounting (what a traced run executes)",
    )
    parser.add_argument(
        "--count-steps",
        action="store_true",
        help="compile with statement-step counting (what a --max-steps "
        "run executes; disables loop vectorization)",
    )
    args = parser.parse_args(argv)
    try:
        from .vm import disassemble_source

        out = disassemble_source(
            _read(args.source),
            filename=args.source,
            count_flops=args.count_flops,
            count_steps=args.count_steps,
        )
    except LolError as exc:
        return _fail(exc)
    print(out)
    return 0


def lolrun_main(argv: Optional[Sequence[str]] = None) -> int:
    from .interp import ENGINES

    parser = argparse.ArgumentParser(
        prog="lolrun",
        description="SPMD launcher for parallel LOLCODE "
        "(the coprsh/aprun analogue)",
    )
    parser.add_argument("source", help="input .lol file ('-' for stdin)")
    parser.add_argument(
        "-np",
        "--n-pes",
        type=int,
        default=4,
        dest="n_pes",
        help="number of processing elements (default 4)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process", "pool"),
        default=None,
        help="PE executor (default: thread, or process for --engine c; "
        "process = true parallelism, numeric data only; pool = process "
        "worlds on warm persistent workers)",
    )
    parser.add_argument(
        "--compiled",
        action="store_true",
        help="(deprecated) alias for --engine compiled",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="closure",
        help="execution engine (closure = compiled closures, default; "
        "ast = reference tree-walker; vm = register-bytecode VM, the "
        "fastest pure-Python engine; compiled = lcc-style "
        "LOLCODE-to-Python compilation; c = natively compiled binary "
        "over the bundled SHMEM shim, one OS process per PE)",
    )
    parser.add_argument(
        "--race-check",
        action="store_true",
        help="enable the barrier-epoch race detector (thread executor)",
    )
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print an op-trace summary (puts/gets/barriers/bytes)",
    )
    parser.add_argument(
        "--check",
        choices=("off", "warn", "error"),
        default="off",
        help="static analysis before launch: warn prints diagnostics to "
        "stderr, error refuses to launch on any E-code (default off)",
    )
    args = parser.parse_args(argv)
    engine = args.engine
    if args.compiled:
        print(
            "lolrun: --compiled is deprecated, use --engine compiled",
            file=sys.stderr,
        )
        engine = "compiled"
    # Native PEs are always OS processes, so --engine c defaults the
    # executor to "process"; an explicit conflicting --executor still
    # gets the launcher's refusal rather than a silent override.
    executor = args.executor or ("process" if engine == "c" else "thread")
    try:
        source = _read(args.source)
        from .launcher import run_lolcode

        result = run_lolcode(
            source,
            args.n_pes,
            executor=executor,
            filename=args.source,
            seed=args.seed,
            trace=args.trace,
            race_detection=args.race_check,
            engine=engine,
            check=args.check,
        )
    except LolError as exc:
        return _fail(exc)
    sys.stdout.write(result.output)
    if args.trace and result.trace is not None:
        print(f"[trace] {result.trace.summary()}", file=sys.stderr)
    for report in result.races:
        print(f"[race] {report.describe()}", file=sys.stderr)
    return 2 if result.races else 0


def lolbench_main(argv: Optional[Sequence[str]] = None) -> int:
    """Workload sweep orchestrator (thin alias for ``repro.bench.main``)."""
    from .bench import main

    return main(argv)


def lolserve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Execution service CLI (thin alias for ``repro.service.cli.main``)."""
    from .service.cli import main

    return main(argv)


def loltrace_main(argv: Optional[Sequence[str]] = None) -> int:
    """Traced run -> Chrome trace JSON (alias for ``repro.obs.cli``)."""
    from .obs.cli import loltrace_main as main

    return main(argv)


def lolprof_main(argv: Optional[Sequence[str]] = None) -> int:
    """Per-opcode VM profiler (alias for ``repro.obs.cli``)."""
    from .obs.cli import lolprof_main as main

    return main(argv)


def lolfuzz_main(argv: Optional[Sequence[str]] = None) -> int:
    """Coverage-guided differential fuzzer (alias for ``repro.fuzz.cli``)."""
    from .fuzz.cli import lolfuzz_main as main

    return main(argv)


def lollint_main(argv: Optional[Sequence[str]] = None) -> int:
    """Static checker CLI over :mod:`repro.analysis`.

    Exit codes: ``0`` clean (or warnings without ``--strict``), ``1``
    warnings under ``--strict``, ``2`` any error (including parse
    errors, which are reported as ``E000``).
    """
    parser = argparse.ArgumentParser(
        prog="lollint",
        description="path-sensitive static checker for parallel LOLCODE "
        "(E-codes are errors, W-codes warnings; see docs/analysis.md "
        "for the catalog)",
    )
    parser.add_argument("sources", nargs="+", help=".lol files ('-' stdin)")
    parser.add_argument(
        "--errors-only", action="store_true", help="suppress W-codes"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any warning is reported (errors still exit 2)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="fmt",
        help="output format (default text; json/sarif collect every "
        "file's diagnostics into one document on stdout)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="CODE",
        help="suppress a diagnostic code (repeatable, e.g. "
        "--disable W102 --disable W104)",
    )
    args = parser.parse_args(argv)
    from .analysis.diagnostics import (
        Diagnostic,
        render_json,
        render_sarif,
    )
    from .lang.errors import SourcePos
    from .lang.checker import check_source

    disabled = set(args.disable)
    collected: list[Diagnostic] = []
    for path in args.sources:
        try:
            diags = check_source(_read(path), filename=path)
        except LolError as exc:
            collected.append(
                Diagnostic(
                    "E000",
                    exc.message,
                    exc.pos
                    if exc.pos.line
                    else SourcePos(1, 1, path),
                )
            )
            continue
        collected.extend(diags)
    shown = [
        d
        for d in collected
        if d.code not in disabled
        and not (args.errors_only and not d.is_error)
    ]
    if args.fmt == "json":
        print(render_json(shown))
    elif args.fmt == "sarif":
        print(render_sarif(shown))
    else:
        for diag in shown:
            print(diag.render_text())
    if any(d.is_error for d in shown):
        return 2
    if shown and args.strict:
        return 1
    return 0


def lolfmt_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lolfmt", description="canonical LOLCODE formatter"
    )
    parser.add_argument("source", help="input .lol file ('-' for stdin)")
    parser.add_argument(
        "-i", "--in-place", action="store_true", help="rewrite the file"
    )
    args = parser.parse_args(argv)
    from .lang.formatter import format_source

    try:
        formatted = format_source(_read(args.source), filename=args.source)
    except LolError as exc:
        return _fail(exc)
    if args.in_place and args.source != "-":
        with open(args.source, "w", encoding="utf-8") as fh:
            fh.write(formatted)
    else:
        sys.stdout.write(formatted)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(lolrun_main())
