"""Source-to-source compilers: the reproduction of the paper's ``lcc``.

* :func:`compile_c` — LOLCODE -> C + OpenSHMEM (the paper's target);
* :func:`compile_python` — LOLCODE -> Python targeting :mod:`repro.shmem`
  (the runnable compiled path: ``run_lolcode(..., engine="compiled")``);
* :func:`compile_python_cached` — the bounded LRU over parse + compile +
  exec, shared by all thread PEs of a launch;
* :func:`compiled_worker` — picklable per-PE entry point (process
  workers compile in-worker through their own per-process cache);
* :func:`run_compiled` — deprecated shim over
  ``run_lolcode(engine="compiled")``;
* :class:`CompileError` — diagnostics for interpret-only constructs.
"""

from .c_backend import CBackend, compile_c
from .py_backend import (
    PyBackend,
    compile_python,
    compile_python_cached,
    compiled_worker,
    load_pe_main,
    run_compiled,
)
from .symtab import CompileError, SymbolTable, analyze

__all__ = [
    "CBackend",
    "compile_c",
    "PyBackend",
    "compile_python",
    "compile_python_cached",
    "compiled_worker",
    "load_pe_main",
    "run_compiled",
    "CompileError",
    "SymbolTable",
    "analyze",
]
