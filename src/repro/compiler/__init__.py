"""Source-to-source compilers: the reproduction of the paper's ``lcc``.

* :func:`compile_c` — LOLCODE -> C + OpenSHMEM (the paper's target);
* :func:`compile_python` — LOLCODE -> Python targeting :mod:`repro.shmem`
  (the runnable compiled path in this reproduction);
* :func:`run_compiled` — compile-to-Python and launch SPMD;
* :class:`CompileError` — diagnostics for interpret-only constructs.
"""

from .c_backend import CBackend, compile_c
from .py_backend import PyBackend, compile_python, load_pe_main, run_compiled
from .symtab import CompileError, SymbolTable, analyze

__all__ = [
    "CBackend",
    "compile_c",
    "PyBackend",
    "compile_python",
    "load_pe_main",
    "run_compiled",
    "CompileError",
    "SymbolTable",
    "analyze",
]
