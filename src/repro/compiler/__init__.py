"""Source-to-source compilers: the reproduction of the paper's ``lcc``.

* :func:`compile_c` — LOLCODE -> C + OpenSHMEM (the paper's target;
  ``n_pes=`` folds ``MAH FRENZ`` array extents for a fixed width);
* :func:`build_native` / :func:`run_native_source` — build that C with
  the system compiler against the bundled single-node SHMEM shim and
  run it as real OS processes (``run_lolcode(..., engine="c")``);
* :func:`compile_python` — LOLCODE -> Python targeting :mod:`repro.shmem`
  (the runnable compiled path: ``run_lolcode(..., engine="compiled")``);
* :func:`compile_python_cached` — the bounded LRU over parse + compile +
  exec, shared by all thread PEs of a launch;
* :func:`compiled_worker` — picklable per-PE entry point (process
  workers compile in-worker through their own per-process cache);
* :func:`run_compiled` — deprecated shim over
  ``run_lolcode(engine="compiled")``;
* :class:`CompileError` — diagnostics for interpret-only constructs;
* :class:`NativeToolchainError` — this host cannot build native
  binaries (no C compiler); distinct from program restrictions so
  benches and tests can skip rather than fail;
* :class:`NativeBuildError` — the C compiler *rejected* generated
  code: a codegen/program failure that must stay loud (never a skip).
"""

from .c_backend import CBackend, compile_c
from .native import (
    NativeBuildError,
    NativeBuildTransientError,
    NativeToolchainError,
    build_native,
    find_cc,
    native_stats,
    run_native,
    run_native_source,
)
from .py_backend import (
    PyBackend,
    compile_python,
    compile_python_cached,
    compiled_worker,
    load_pe_main,
    run_compiled,
)
from .symtab import CompileError, SymbolTable, analyze

__all__ = [
    "CBackend",
    "compile_c",
    "NativeBuildError",
    "NativeBuildTransientError",
    "NativeToolchainError",
    "build_native",
    "find_cc",
    "native_stats",
    "run_native",
    "run_native_source",
    "PyBackend",
    "compile_python",
    "compile_python_cached",
    "compiled_worker",
    "load_pe_main",
    "run_compiled",
    "CompileError",
    "SymbolTable",
    "analyze",
]
