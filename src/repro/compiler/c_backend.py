"""LOLCODE -> C + OpenSHMEM source-to-source compiler.

This is the reproduction of the paper's ``lcc``: it translates extended
LOLCODE into a single self-contained C translation unit that targets the
OpenSHMEM API (Section II: "translates LOLCODE with parallel extensions to
C with OpenSHMEM routines"; a standard C compiler then produces the
executable).

This module docstring is the single source of truth for the emitted-C ↔
LOLCODE mapping; ``docs/language.md`` carries the user-facing version of
the same table and must stay in sync with it.

Mapping (Tables II/III -> C):

=============================== ==========================================
LOLCODE                          emitted C
=============================== ==========================================
``ME`` / ``MAH FRENZ``           ``shmem_my_pe()`` / ``shmem_n_pes()``
``HUGZ``                         ``shmem_barrier_all()``
``WE HAS A x ITZ SRSLY A NUMBR`` file-scope ``static long long x LOL_SYMMETRIC;``
``... AN IM SHARIN IT``          plus ``static long __lock_x LOL_SYMMETRIC;``
``TXT MAH BFF k, ...``           scoped ``{ int __tgt = (k); ... }``
``UR x`` (NUMBAR)                ``shmem_double_g(&x, __tgt)``
``UR x R v``                     ``shmem_double_p(&x, v, __tgt)``
``MAH a R UR b`` (arrays)        ``shmem_double_get(a, b, n, __tgt)``
``IM SRSLY MESIN WIF x``         ``shmem_set_lock(&__lock_x)``
``IM MESIN WIF x`` (trylock)     ``__it = lol_from_b(shmem_test_lock(...) == 0)``
``WHATEVR`` / ``WHATEVAR``       ``lol_rand_i()`` / ``lol_rand_f()``
=============================== ==========================================

(``LOL_SYMMETRIC`` is the prelude macro that places symmetric objects in
the bundled shim's remappable section under ``-DLOL_SHMEM_SHIM`` and
expands to nothing for real OpenSHMEM builds.)

Statically typed variables become native C objects; dynamically typed
variables use the ``lol_value_t`` tagged union from the embedded prelude.
Top-level declarations are emitted at file scope (each PE is an OS process
under SHMEM, so file-scope statics are per-PE — this is what makes them
addressable from LOLCODE functions), with initialisers run at their
original program point in ``main``.

Backend-specific restrictions, each diagnosed as a
:class:`~repro.compiler.symtab.CompileError` at compile time:

* ``SRS`` computed identifiers (fundamentally dynamic);
* YARN-typed *symmetric* data (OpenSHMEM moves raw memory);
* symmetric array extents must fold to an integer at compile time — an
  integer literal always works, and when the launch width is known
  (``compile_c(..., n_pes=N)``, as the ``engine="c"`` driver does)
  ``MAH FRENZ`` arithmetic folds too, so registry kernels sized
  ``THAR IZ MAH FRENZ`` compile per launch width;
* functions may touch their parameters, their locals, and file-scope
  (top-level / symmetric) data only.
"""

from __future__ import annotations

from typing import Optional

from ..lang import ast
from ..lang.errors import LolError, SourcePos
from ..lang.parser import parse
from ..lang.types import LolType, to_array_size
from ..interp.interpreter import KNOWN_LIBRARIES
from ..interp.values import binop, unop
from .c_prelude import C_PRELUDE
from .symtab import CompileError, SymbolInfo, SymbolTable, analyze

#: C scalar kind codes: i=long long, f=double, s=const char*, b=int,
#: d=lol_value_t (dynamic).
_KIND_OF_TYPE = {
    LolType.NUMBR: "i",
    LolType.NUMBAR: "f",
    LolType.YARN: "s",
    LolType.TROOF: "b",
}
_C_DECL = {
    "i": "long long",
    "f": "double",
    "s": "const char *",
    "b": "int",
    "d": "lol_value_t",
}
_SHMEM_TYPE = {"i": "longlong", "f": "double", "b": "int"}

_CONV: dict[tuple[str, str], str] = {
    ("i", "f"): "(double)({0})",
    ("b", "f"): "((double)({0}))",
    ("s", "f"): "strtod({0}, NULL)",
    ("d", "f"): "lol_to_f({0})",
    ("f", "i"): "(long long)({0})",
    ("b", "i"): "((long long)({0}))",
    ("s", "i"): "strtoll({0}, NULL, 10)",
    ("d", "i"): "lol_to_i({0})",
    ("i", "b"): "(({0}) != 0)",
    ("f", "b"): "(({0}) != 0.0)",
    ("s", "b"): "(({0})[0] != '\\0')",
    ("d", "b"): "lol_truthy({0})",
    ("i", "s"): "lol_fmt_i({0})",
    ("f", "s"): "lol_fmt_f({0})",
    ("b", "s"): '(({0}) ? "WIN" : "FAIL")',
    ("d", "s"): "lol_to_s({0})",
    ("i", "d"): "lol_from_i({0})",
    ("f", "d"): "lol_from_f({0})",
    ("b", "d"): "lol_from_b({0})",
    ("s", "d"): "lol_from_s({0})",
}


def conv(code: str, src: str, dst: str) -> str:
    """Wrap C expression ``code`` in the ``src`` -> ``dst`` kind coercion."""
    if src == dst:
        return code
    return _CONV[(src, dst)].format(code)


class _NotConstant(Exception):
    """An extent expression that cannot fold at compile time (fine for
    block-local VLAs, fatal for file-scope arrays)."""


def _fold_extent(expr: ast.Expr, n_pes: int) -> object:
    """Constant-fold an array-extent expression for a known launch width.

    Mirrors the launcher's symmetric-plan folding (``MAH FRENZ`` becomes
    ``n_pes``; ``ME`` raises :class:`CompileError` because per-PE
    symmetric extents would break the symmetric layout) so the C
    backend admits exactly the extents the process executor admits.
    Genuinely dynamic extents raise :class:`_NotConstant`.
    """
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.FrenzExpr):
        return n_pes
    if isinstance(expr, ast.BinOp):
        return binop(
            expr.op,
            _fold_extent(expr.lhs, n_pes),
            _fold_extent(expr.rhs, n_pes),
            expr.pos,
        )
    if isinstance(expr, ast.UnaryOp):
        return unop(expr.op, _fold_extent(expr.operand, n_pes), expr.pos)
    if isinstance(expr, ast.MeExpr):
        raise CompileError(
            "symmetric array sizes cannot depend on ME (all PEs must "
            "allocate identically)",
            expr.pos,
        )
    raise _NotConstant


def c_string(text: str) -> str:
    out = ['"']
    for ch in text:
        if ch == '"':
            out.append('\\"')
        elif ch == "\\":
            out.append("\\\\")
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\t":
            out.append("\\t")
        elif ch == "\a":
            out.append("\\a")
        elif 32 <= ord(ch) < 127:
            out.append(ch)
        else:
            out.append(f"\\u{ord(ch):04x}" if ord(ch) > 0xFF else f"\\x{ord(ch):02x}")
    out.append('"')
    return "".join(out)


def c_float(value: float) -> str:
    text = repr(value)
    if "e" not in text and "E" not in text and "." not in text:
        text += ".0"
    return text


class CBackend:
    """One-shot code generator: ``CBackend(program).generate()``.

    ``n_pes`` optionally fixes the launch width at compile time so
    symmetric array extents written in terms of ``MAH FRENZ`` fold to C
    constants; leave it ``None`` for width-independent output (only
    literal extents compile then).  Expression generation is the
    ``gen_expr`` dispatch (returns ``(C expression, kind code)``),
    statement generation the ``gen_stmt`` dispatch (appends to
    ``body_lines``); both raise
    :class:`~repro.compiler.symtab.CompileError` with a source position
    for every interpret-only construct they meet.
    """

    def __init__(
        self,
        program: ast.Program,
        table: Optional[SymbolTable] = None,
        n_pes: Optional[int] = None,
    ):
        self.program = program
        self.n_pes = n_pes
        self.table = table if table is not None else analyze(program)
        self.body_lines: list[str] = []
        self.file_lines: list[str] = []
        self.indent = 1
        self._tmp = 0
        self._txt_depth = 0
        self._gtfo_ok = 0  # nesting depth of loop/switch
        self._current_func: Optional[str] = None
        self._func_locals: dict[str, SymbolInfo] = {}
        self._emitted_globals: set[str] = set()
        # Lexical scope stack for block-local declarations and loop
        # counters (mirrors the C block scoping of the emitted code).
        self._scopes: list[dict[str, SymbolInfo]] = []
        self._at_top = False  # True while emitting a top-level statement
        self._lock_names: list[str] = []

    # -- emit helpers -----------------------------------------------------

    def out(self, line: str) -> None:
        self.body_lines.append("    " * self.indent + line)

    def _fresh(self, prefix: str) -> str:
        self._tmp += 1
        return f"__{prefix}{self._tmp}"

    # -- symbol classification ----------------------------------------------

    def _info(self, name: str, pos: SourcePos) -> SymbolInfo:
        """Resolve ``name`` at the current emission point.

        Resolution order matches the emitted C's scoping: innermost
        block scope, then (inside a function) locals and parameters,
        then file-scope/symmetric globals.  The failure diagnostic
        spells out the C backend's function restriction because that is
        where interpreter-legal programs most often trip it.
        """
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        if self._current_func is not None:
            finfo = self.table.functions[self._current_func]
            if name in finfo.locals:
                return finfo.locals[name]
            if name in finfo.params:
                return SymbolInfo(name)  # dynamic parameter
        info = self.table.globals.get(name)
        if info is not None:
            return info
        raise CompileError(
            f"'{name}' is not declared"
            + (
                f" (C backend functions may only touch parameters, locals, "
                f"and top-level/symmetric variables)"
                if self._current_func is not None
                else ""
            ),
            pos,
        )

    def _declare_local(self, info: SymbolInfo) -> None:
        if self._scopes:
            self._scopes[-1][info.name] = info
        elif self._current_func is not None:
            self._func_locals[info.name] = info

    def _kind_of(self, info: SymbolInfo) -> str:
        if info.static_type is None:
            return "d"
        return _KIND_OF_TYPE[info.static_type]

    # -- expressions -----------------------------------------------------------

    def gen_expr(self, node: ast.Expr) -> tuple[str, str]:
        """Compile one expression; returns ``(C expression, kind code)``.

        The kind code is the scalar classification from ``_KIND_OF_TYPE``
        (``i``/``f``/``s``/``b`` for statically typed values, ``d`` for a
        dynamic ``lol_value_t``); callers coerce with :func:`conv`.
        Dispatches over every AST expression class; the only
        interpret-only expression is ``SRS`` (computed identifiers),
        diagnosed here as a :class:`CompileError`.
        """
        if isinstance(node, ast.IntLit):
            return f"{node.value}LL", "i"
        if isinstance(node, ast.FloatLit):
            return c_float(node.value), "f"
        if isinstance(node, ast.StringLit):
            return self._gen_string(node)
        if isinstance(node, ast.TroofLit):
            return ("1", "b") if node.value else ("0", "b")
        if isinstance(node, ast.NoobLit):
            return "lol_noob()", "d"
        if isinstance(node, ast.ItRef):
            return "__it", "d"
        if isinstance(node, ast.MeExpr):
            return "((long long)shmem_my_pe())", "i"
        if isinstance(node, ast.FrenzExpr):
            return "((long long)shmem_n_pes())", "i"
        if isinstance(node, ast.RandomExpr):
            return (
                ("lol_rand_i()", "i")
                if node.kind == "int"
                else ("lol_rand_f()", "f")
            )
        if isinstance(node, ast.BinOp):
            return self._gen_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._gen_unop(node)
        if isinstance(node, ast.NaryOp):
            return self._gen_nary(node)
        if isinstance(node, ast.Cast):
            return self._gen_cast(node)
        if isinstance(node, ast.VarRef):
            return self._gen_var_read(node.name, node.qualifier, node.pos)
        if isinstance(node, ast.Index):
            return self._gen_index_read(node)
        if isinstance(node, ast.FuncCall):
            return self._gen_call(node)
        if isinstance(node, ast.SrsRef):
            raise CompileError(
                "SRS computed identifiers are interpret-only", node.pos
            )
        raise CompileError(
            f"cannot compile expression {type(node).__name__}", node.pos
        )

    def _gen_string(self, node: ast.StringLit) -> tuple[str, str]:
        if node.is_plain():
            return c_string(node.plain_text()), "s"
        code: Optional[str] = None
        for part in node.parts:
            piece = (
                c_string(part)
                if isinstance(part, str)
                else conv(*self._gen_var_read(part[1], None, node.pos), "s")
            )
            code = piece if code is None else f"lol_concat({code}, {piece})"
        return code or '""', "s"

    def _arith_char(self, op: str) -> str:
        return {
            "add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "%",
            "max": ">", "min": "<",
        }[op]

    def _gen_binop(self, node: ast.BinOp) -> tuple[str, str]:
        op = node.op
        ca, ta = self.gen_expr(node.lhs)
        cb, tb = self.gen_expr(node.rhs)
        if op in ("add", "sub", "mul", "div", "mod", "max", "min"):
            if ta in ("s", "d") or tb in ("s", "d"):
                return (
                    f"lol_arith('{self._arith_char(op)}', "
                    f"{conv(ca, ta, 'd')}, {conv(cb, tb, 'd')})",
                    "d",
                )
            kind = "f" if "f" in (ta, tb) else "i"
            xa, xb = conv(ca, ta, kind), conv(cb, tb, kind)
            if op in ("add", "sub", "mul"):
                sym = {"add": "+", "sub": "-", "mul": "*"}[op]
                return f"({xa} {sym} {xb})", kind
            if op == "div":
                return f"({xa} / {xb})", kind
            if op == "mod":
                return (
                    (f"fmod({xa}, {xb})", "f")
                    if kind == "f"
                    else (f"lol_trunc_mod({xa}, {xb})", "i")
                )
            fn = f"lol_{'max' if op == 'max' else 'min'}_{kind}"
            return f"{fn}({xa}, {xb})", kind
        if op in ("eq", "ne"):
            bang = "!" if op == "ne" else ""
            if ta in ("i", "f", "b") and tb in ("i", "f", "b"):
                return f"({bang}({conv(ca, ta, 'f')} == {conv(cb, tb, 'f')}))", "b"
            if ta == "s" and tb == "s":
                return f"({bang}(strcmp({ca}, {cb}) == 0))", "b"
            return (
                f"({bang}lol_eq({conv(ca, ta, 'd')}, {conv(cb, tb, 'd')}))",
                "b",
            )
        if op in ("gt", "lt"):
            sym = ">" if op == "gt" else "<"
            return f"({conv(ca, ta, 'f')} {sym} {conv(cb, tb, 'f')})", "b"
        if op in ("and", "or", "xor"):
            xa, xb = conv(ca, ta, "b"), conv(cb, tb, "b")
            if op == "and":
                return f"({xa} && {xb})", "b"
            if op == "or":
                return f"({xa} || {xb})", "b"
            return f"((!!{xa}) != (!!{xb}))", "b"
        raise CompileError(f"unknown binary op {op!r}", node.pos)

    def _gen_unop(self, node: ast.UnaryOp) -> tuple[str, str]:
        code, kind = self.gen_expr(node.operand)
        if node.op == "not":
            return f"(!{conv(code, kind, 'b')})", "b"
        if node.op == "square":
            if kind == "i" or kind == "b":
                return f"lol_squar_i({conv(code, kind, 'i')})", "i"
            return f"lol_squar_f({conv(code, kind, 'f')})", "f"
        if node.op == "sqrt":
            return f"sqrt({conv(code, kind, 'f')})", "f"
        if node.op == "recip":
            return f"(1.0 / {conv(code, kind, 'f')})", "f"
        raise CompileError(f"unknown unary op {node.op!r}", node.pos)

    def _gen_nary(self, node: ast.NaryOp) -> tuple[str, str]:
        parts = [self.gen_expr(e) for e in node.operands]
        if node.op in ("all", "any"):
            joiner = " && " if node.op == "all" else " || "
            return (
                "(" + joiner.join(conv(c, k, "b") for c, k in parts) + ")",
                "b",
            )
        # SMOOSH
        code: Optional[str] = None
        for c, k in parts:
            piece = conv(c, k, "s")
            code = piece if code is None else f"lol_concat({code}, {piece})"
        return code or '""', "s"

    def _gen_cast(self, node: ast.Cast) -> tuple[str, str]:
        code, kind = self.gen_expr(node.expr)
        target = LolType(node.to_type)
        if target is LolType.NOOB:
            return "lol_noob()", "d"
        return conv(code, kind, _KIND_OF_TYPE[target]), _KIND_OF_TYPE[target]

    def _gen_call(self, node: ast.FuncCall) -> tuple[str, str]:
        finfo = self.table.functions.get(node.name)
        if finfo is None:
            raise CompileError(f"no function named '{node.name}'", node.pos)
        if len(node.args) != len(finfo.params):
            raise CompileError(
                f"function '{node.name}' wants {len(finfo.params)} "
                f"arguments, got {len(node.args)}",
                node.pos,
            )
        args = ", ".join(
            conv(*self.gen_expr(a), "d") for a in node.args
        )
        return f"lol_fn_{node.name}({args})", "d"

    # -- variable access -----------------------------------------------------------

    def _require_tgt(self, name: str, pos: SourcePos) -> None:
        if self._txt_depth == 0:
            raise CompileError(
                f"'UR {name}' used outside a TXT MAH BFF predicated "
                f"statement or block",
                pos,
            )

    def _shmem_kind(self, info: SymbolInfo, pos: SourcePos) -> str:
        kind = self._kind_of(info)
        if kind not in _SHMEM_TYPE:
            raise CompileError(
                f"symmetric symbol '{info.name}' must be numeric for the C "
                f"backend (YARN cannot cross PEs via OpenSHMEM)",
                pos,
            )
        return kind

    def _gen_var_read(
        self, name: str, qualifier: Optional[str], pos: SourcePos
    ) -> tuple[str, str]:
        info = self._info(name, pos)
        if qualifier == "UR":
            self._require_tgt(name, pos)
            if not info.symmetric:
                raise CompileError(
                    f"'UR {name}': not a symmetric variable", pos
                )
            kind = self._shmem_kind(info, pos)
            if info.is_array:
                raise CompileError(
                    f"whole-array 'UR {name}' is only valid on the right "
                    f"side of an array assignment",
                    pos,
                )
            return f"shmem_{_SHMEM_TYPE[kind]}_g(&{name}, __tgt)", kind
        if info.is_array:
            raise CompileError(
                f"'{name}' is an array: index it with {name}'Z <expr>", pos
            )
        return name, self._kind_of(info)

    def _gen_index_read(self, node: ast.Index) -> tuple[str, str]:
        if not isinstance(node.base, ast.VarRef):
            raise CompileError(
                "SRS computed identifiers are interpret-only", node.pos
            )
        name = node.base.name
        info = self._info(name, node.pos)
        if not info.is_array:
            raise CompileError(f"'{name}' is not an array", node.pos)
        idx = conv(*self.gen_expr(node.index), "i")
        kind = self._kind_of(info)
        if node.base.qualifier == "UR":
            self._require_tgt(name, node.pos)
            kind = self._shmem_kind(info, node.pos)
            return f"shmem_{_SHMEM_TYPE[kind]}_g(&{name}[{idx}], __tgt)", kind
        return f"{name}[{idx}]", kind

    # -- statements ---------------------------------------------------------------

    def gen_block(self, body: list[ast.Stmt]) -> None:
        """Compile a statement list inside a fresh lexical scope.

        Mirrors the C block scoping of the emitted code: declarations
        made in the block shadow outer ones and vanish when it closes.
        """
        saved_top = self._at_top
        self._at_top = False
        self._scopes.append({})
        try:
            for stmt in body:
                self.gen_stmt(stmt)
        finally:
            self._scopes.pop()
            self._at_top = saved_top

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        """Compile one statement into ``body_lines``.

        Dispatches over every AST statement class.  Restriction
        diagnostics raised from here (and from the ``_gen_*`` helpers
        it fans out to) carry the statement's source position, so
        ``lcc``/``lolcc`` point at the offending LOLCODE line rather
        than at generated C.
        """
        if isinstance(stmt, ast.VarDecl):
            self._gen_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._gen_assign(stmt.target, stmt.value)
        elif isinstance(stmt, ast.CastStmt):
            self._gen_cast_stmt(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            code, kind = self.gen_expr(stmt.expr)
            self.out(f"__it = {conv(code, kind, 'd')};")
        elif isinstance(stmt, ast.Visible):
            for arg in stmt.args:
                code, kind = self.gen_expr(arg)
                self.out(f"fputs({conv(code, kind, 's')}, stdout);")
            if stmt.newline:
                self.out('fputs("\\n", stdout);')
        elif isinstance(stmt, ast.Gimmeh):
            self._gen_store(stmt.target, "lol_readline()", "s")
        elif isinstance(stmt, ast.CanHas):
            if stmt.library.upper() not in KNOWN_LIBRARIES:
                raise CompileError(
                    f"CAN HAS {stmt.library}?: unknown library", stmt.pos
                )
            self.out(f"/* CAN HAS {stmt.library}? */")
        elif isinstance(stmt, ast.If):
            self.out("if (lol_truthy(__it)) {")
            self.indent += 1
            self.gen_block(stmt.ya_rly)
            self.indent -= 1
            for cond, body in stmt.mebbe:
                code, kind = self.gen_expr(cond)
                self.out(f"}} else if ({conv(code, kind, 'b')}) {{")
                self.indent += 1
                self.gen_block(body)
                self.indent -= 1
            self.out("} else {")
            self.indent += 1
            self.gen_block(stmt.no_wai)
            self.indent -= 1
            self.out("}")
        elif isinstance(stmt, ast.Switch):
            self._gen_switch(stmt)
        elif isinstance(stmt, ast.Loop):
            self._gen_loop(stmt)
        elif isinstance(stmt, ast.Gtfo):
            if self._gtfo_ok > 0:
                self.out("break;")
            elif self._current_func is not None:
                self.out("return lol_noob();")
            else:
                raise CompileError(
                    "GTFO outside a loop, switch, or function", stmt.pos
                )
        elif isinstance(stmt, ast.FuncDef):
            pass  # emitted at file scope in generate()
        elif isinstance(stmt, ast.Return):
            if self._current_func is None:
                raise CompileError("FOUND YR outside a function", stmt.pos)
            code, kind = self.gen_expr(stmt.expr)
            self.out(f"return {conv(code, kind, 'd')};")
        elif isinstance(stmt, ast.Hugz):
            self.out("shmem_barrier_all();")
        elif isinstance(stmt, ast.LockStmt):
            self._gen_lock(stmt)
        elif isinstance(stmt, ast.TxtStmt):
            code, kind = self.gen_expr(stmt.pe)
            self.out(f"{{ int __tgt = (int)({conv(code, kind, 'i')});")
            self.indent += 1
            self._txt_depth += 1
            self.gen_block(stmt.body)
            self._txt_depth -= 1
            self.indent -= 1
            self.out("}")
        else:
            raise CompileError(
                f"cannot compile statement {type(stmt).__name__}", stmt.pos
            )

    # -- declarations ----------------------------------------------------------

    def _const_size(
        self, expr: ast.Expr, name: str, *, file_scope: bool = False
    ) -> Optional[int]:
        """Fold an array extent to a C constant, or ``None`` if dynamic.

        Integer literals always fold; with a fixed launch width
        (``self.n_pes``) any ``MAH FRENZ`` arithmetic folds too.
        Extents that fold to a non-integral value are rejected through
        the same :func:`~repro.lang.types.to_array_size` guard every
        engine's allocation path uses.  ``file_scope`` propagates
        semantic folding errors (``ME``-dependent symmetric extents);
        block-local callers fall back to the VLA path instead.
        """
        if isinstance(expr, ast.IntLit):
            return expr.value
        if self.n_pes is not None:
            try:
                value = _fold_extent(expr, self.n_pes)
            except CompileError:
                if file_scope:
                    raise
                return None
            except (_NotConstant, LolError):
                # Genuinely dynamic extent: legal for block-local arrays
                # (emitted as a VLA); file-scope declarations reject the
                # None in emit_file_scope_decl.
                return None
            size = to_array_size(value, expr.pos)
            if size < 1:
                # C has no zero/negative-length arrays; diagnose here
                # rather than letting cc reject the emitted unit.
                raise CompileError(
                    f"array '{name}': extent folds to {size}, but the C "
                    f"backend needs at least 1 element",
                    expr.pos,
                )
            return size
        return None

    def _decl_c(self, info: SymbolInfo, size_code: Optional[str]) -> str:
        kind = self._kind_of(info)
        base = _C_DECL[kind]
        if info.is_array:
            return f"{base} {info.name}[{size_code}]"
        return f"{base} {info.name}"

    def emit_file_scope_decl(self, decl: ast.VarDecl) -> None:
        """Emit the file-scope C object for one top-level declaration.

        Symmetric objects (``WE HAS A``) are tagged ``LOL_SYMMETRIC`` so
        the bundled shim can place them in its remappable section;
        ``AN IM SHARIN IT`` additionally emits the symbol's lock word.
        Initialisers are *not* handled here — ``_gen_decl`` runs them at
        the declaration's original program point in ``main``.
        """
        info = (
            self.table.globals[decl.name]
            if decl.name in self.table.globals
            else None
        )
        assert info is not None
        size_code: Optional[str] = None
        if info.is_array:
            size = self._const_size(decl.size, decl.name, file_scope=True)
            if size is None:
                raise CompileError(
                    f"file-scope array '{decl.name}' needs a compile-time "
                    f"size for the C backend (an integer literal, or MAH "
                    f"FRENZ arithmetic when compiling for a known launch "
                    f"width)",
                    decl.pos,
                )
            size_code = str(size)
        qual = "static "
        attr = " LOL_SYMMETRIC" if info.symmetric else ""
        comment = " /* symmetric */" if info.symmetric else ""
        self.file_lines.append(
            f"{qual}{self._decl_c(info, size_code)}{attr};{comment}"
        )
        if info.shared_lock:
            # The (void) cast in main keeps -Wunused-variable quiet when a
            # program declares IM SHARIN IT but never takes the lock.
            self.file_lines.append(
                f"static long __lock_{info.name} LOL_SYMMETRIC = 0L;"
            )
            self._lock_names.append(info.name)
        self._emitted_globals.add(info.name)

    def _gen_decl(self, stmt: ast.VarDecl) -> None:
        # File-scope (top-level) declarations were already emitted; here we
        # only run their initialiser at the original program point.
        if self._at_top and stmt.name in self._emitted_globals:
            info = self.table.globals[stmt.name]
            if stmt.init is not None:
                code, kind = self.gen_expr(stmt.init)
                self.out(f"{stmt.name} = {conv(code, kind, self._kind_of(info))};")
            elif self._kind_of(info) == "d":
                self.out(f"{stmt.name} = lol_noob();")
            elif self._kind_of(info) == "s" and not info.is_array:
                self.out(f'{stmt.name} = "";')
            return
        # Block-local declaration.
        info = SymbolInfo(
            name=stmt.name,
            static_type=(LolType(stmt.static_type) if stmt.static_type else None),
            is_array=stmt.is_array,
        )
        self._declare_local(info)
        kind = self._kind_of(info)
        if stmt.is_array:
            size_lit = self._const_size(stmt.size, stmt.name)
            if size_lit is not None:
                self.out(f"{self._decl_c(info, str(size_lit))} = {{0}};")
            else:
                size_code = conv(*self.gen_expr(stmt.size), "i")
                n = self._fresh("n")
                self.out(f"long long {n} = {size_code};")
                self.out(f"{self._decl_c(info, n)};")
                self.out(
                    f"memset({stmt.name}, 0, sizeof {stmt.name});"
                    if kind != "s"
                    else f"for (long long __z = 0; __z < {n}; __z++) "
                    f'{stmt.name}[__z] = "";'
                )
            return
        if stmt.init is not None:
            code, k = self.gen_expr(stmt.init)
            if kind == "d":
                code = conv(code, k, "d")
            else:
                code = conv(code, k, kind)
            self.out(f"{self._decl_c(info, None)} = {code};")
        elif kind == "d":
            self.out(f"{self._decl_c(info, None)} = lol_noob();")
        elif kind == "s":
            self.out(f'{self._decl_c(info, None)} = "";')
        else:
            self.out(f"{self._decl_c(info, None)} = 0;")

    # -- assignment --------------------------------------------------------------

    def _gen_assign(self, target: ast.Expr, value: ast.Expr) -> None:
        # Whole-array transfers first (they need the shmem_get/put forms).
        if isinstance(target, ast.VarRef) and not isinstance(value, ast.Index):
            tinfo = self._info(target.name, target.pos)
            if tinfo.is_array:
                self._gen_array_copy(target, tinfo, value)
                return
        code, kind = self.gen_expr(value)
        self._gen_store(target, code, kind)

    def _gen_array_copy(
        self, target: ast.VarRef, tinfo: SymbolInfo, value: ast.Expr
    ) -> None:
        if not isinstance(value, ast.VarRef):
            raise CompileError(
                f"whole-array assignment to '{target.name}' needs an array "
                f"on the right-hand side",
                target.pos,
            )
        sinfo = self._info(value.name, value.pos)
        if not sinfo.is_array:
            raise CompileError(
                f"cannot assign scalar '{value.name}' to whole array "
                f"'{target.name}'",
                target.pos,
            )
        count = f"(sizeof {target.name} / sizeof {target.name}[0])"
        if value.qualifier == "UR":
            self._require_tgt(value.name, value.pos)
            kind = self._shmem_kind(sinfo, value.pos)
            self.out(
                f"shmem_{_SHMEM_TYPE[kind]}_get({target.name}, "
                f"{value.name}, {count}, __tgt);"
            )
            return
        if target.qualifier == "UR":
            self._require_tgt(target.name, target.pos)
            kind = self._shmem_kind(tinfo, target.pos)
            self.out(
                f"shmem_{_SHMEM_TYPE[kind]}_put({target.name}, "
                f"{value.name}, {count}, __tgt);"
            )
            return
        self.out(
            f"memcpy({target.name}, {value.name}, sizeof {target.name});"
        )

    def _gen_store(self, target: ast.Expr, code: str, kind: str) -> None:
        if isinstance(target, ast.Index):
            if not isinstance(target.base, ast.VarRef):
                raise CompileError(
                    "SRS computed identifiers are interpret-only", target.pos
                )
            name = target.base.name
            info = self._info(name, target.pos)
            if not info.is_array:
                raise CompileError(f"'{name}' is not an array", target.pos)
            idx = conv(*self.gen_expr(target.index), "i")
            ekind = self._kind_of(info)
            if target.base.qualifier == "UR":
                self._require_tgt(name, target.pos)
                ekind = self._shmem_kind(info, target.pos)
                self.out(
                    f"shmem_{_SHMEM_TYPE[ekind]}_p(&{name}[{idx}], "
                    f"{conv(code, kind, ekind)}, __tgt);"
                )
                return
            self.out(f"{name}[{idx}] = {conv(code, kind, ekind)};")
            return
        if isinstance(target, ast.VarRef):
            name = target.name
            info = self._info(name, target.pos)
            vkind = self._kind_of(info)
            if target.qualifier == "UR":
                self._require_tgt(name, target.pos)
                if not info.symmetric:
                    raise CompileError(
                        f"'UR {name}': not a symmetric variable", target.pos
                    )
                vkind = self._shmem_kind(info, target.pos)
                self.out(
                    f"shmem_{_SHMEM_TYPE[vkind]}_p(&{name}, "
                    f"{conv(code, kind, vkind)}, __tgt);"
                )
                return
            if info.is_array:
                raise CompileError(
                    f"cannot assign a scalar to whole array '{name}'",
                    target.pos,
                )
            self.out(f"{name} = {conv(code, kind, vkind)};")
            return
        raise CompileError("invalid assignment target", target.pos)

    def _gen_cast_stmt(self, stmt: ast.CastStmt) -> None:
        code, kind = self.gen_expr(stmt.target)
        target_type = LolType(stmt.to_type)
        if target_type is LolType.NOOB:
            self._gen_store(stmt.target, "lol_noob()", "d")
            return
        tkind = _KIND_OF_TYPE[target_type]
        self._gen_store(stmt.target, conv(code, kind, tkind), tkind)

    # -- control flow ------------------------------------------------------------

    def _gen_switch(self, stmt: ast.Switch) -> None:
        sw = self._fresh("sw")
        m = self._fresh("m")
        self.out(f"{{ lol_value_t {sw} = __it; int {m} = 0;")
        self.indent += 1
        self.out("while (1) {")
        self.indent += 1
        self._gtfo_ok += 1
        for literal, body in stmt.cases:
            code, kind = self.gen_expr(literal)
            self.out(f"if ({m} || lol_eq({sw}, {conv(code, kind, 'd')})) {{")
            self.indent += 1
            self.out(f"{m} = 1;")
            self.gen_block(body)
            self.indent -= 1
            self.out("}")
        self.gen_block(stmt.default)
        self.out("break;")
        self._gtfo_ok -= 1
        self.indent -= 1
        self.out("}")
        self.indent -= 1
        self.out("}")

    def _gen_loop(self, stmt: ast.Loop) -> None:
        opener = "{"
        self._scopes.append({})
        if stmt.var is not None:
            opener = f"{{ long long {stmt.var} = 0;"
            self._scopes[-1][stmt.var] = SymbolInfo(
                stmt.var, static_type=LolType.NUMBR
            )
        self.out(opener)
        self.indent += 1
        self.out("while (1) {")
        self.indent += 1
        self._gtfo_ok += 1
        if stmt.cond is not None:
            code, kind = self.gen_expr(stmt.cond)
            cond = conv(code, kind, "b")
            if stmt.cond_kind == "TIL":
                self.out(f"if ({cond}) break;")
            else:
                self.out(f"if (!{cond}) break;")
        elif stmt.var is None and not any(
            isinstance(s, ast.Gtfo) for s in ast.walk_statements(stmt.body)
        ):
            raise CompileError(
                f"loop '{stmt.label}' has no counter, no condition and no "
                f"GTFO",
                stmt.pos,
            )
        self.gen_block(stmt.body)
        if stmt.var is not None:
            step = "+ 1" if stmt.op == "UPPIN" else "- 1"
            self.out(f"{stmt.var} = {stmt.var} {step};")
        self._gtfo_ok -= 1
        self.indent -= 1
        self.out("}")
        self.indent -= 1
        self.out("}")
        self._scopes.pop()

    def _gen_lock(self, stmt: ast.LockStmt) -> None:
        if not isinstance(stmt.target, ast.VarRef):
            raise CompileError(
                "SRS computed identifiers are interpret-only", stmt.pos
            )
        name = stmt.target.name
        info = self.table.globals.get(name)
        if info is None or not info.symmetric or not info.shared_lock:
            raise CompileError(
                f"cannot lock '{name}': declare it with 'WE HAS A {name} "
                f"... AN IM SHARIN IT'",
                stmt.pos,
            )
        if stmt.kind == "lock":
            self.out(f"shmem_set_lock(&__lock_{name});")
        elif stmt.kind == "trylock":
            self.out(
                f"__it = lol_from_b(shmem_test_lock(&__lock_{name}) == 0);"
            )
        else:
            self.out(f"shmem_clear_lock(&__lock_{name});")

    # -- functions / program -----------------------------------------------------

    def _gen_function(self, fdef: ast.FuncDef) -> list[str]:
        finfo = self.table.functions[fdef.name]
        saved_body, self.body_lines = self.body_lines, []
        saved_indent, self.indent = self.indent, 1
        saved_locals, self._func_locals = self._func_locals, dict(finfo.locals)
        saved_scopes, self._scopes = self._scopes, []
        self._current_func = fdef.name
        params = ", ".join(f"lol_value_t {p}" for p in fdef.params) or "void"
        lines = [f"static lol_value_t lol_fn_{fdef.name}({params})", "{"]
        self.out("lol_value_t __it = lol_noob();")
        self.gen_block(fdef.body)
        self.out("return __it;")
        lines.extend(self.body_lines)
        lines.append("}")
        self.body_lines = saved_body
        self.indent = saved_indent
        self._func_locals = saved_locals
        self._scopes = saved_scopes
        self._current_func = None
        return lines

    def generate(self) -> str:
        """Emit the complete self-contained C translation unit."""
        # 1. file-scope data for every top-level declaration
        for stmt in self.program.body:
            if isinstance(stmt, ast.VarDecl):
                self.emit_file_scope_decl(stmt)
        # 2. functions (prototypes handled by definition order: emit all
        #    definitions before main; forward calls between functions get
        #    prototypes)
        func_blocks: list[list[str]] = []
        protos: list[str] = []
        for stmt in self.program.body:
            if isinstance(stmt, ast.FuncDef):
                finfo = self.table.functions[stmt.name]
                params = ", ".join("lol_value_t" for _ in finfo.params) or "void"
                protos.append(f"static lol_value_t lol_fn_{stmt.name}({params});")
                func_blocks.append(self._gen_function(stmt))
        # 3. main body
        self.body_lines = []
        self.indent = 1
        self.out("shmem_init();")
        if self.table.uses_random:
            self.out("srand(lol_seed(1234u) + (unsigned)shmem_my_pe());")
        self.out("lol_value_t __it = lol_noob();")
        # Reference every file-scope object once so -Wunused-variable stays
        # quiet for symbols a program declares but never touches.
        for gname in sorted(self._emitted_globals):
            self.out(f"(void){gname};")
        for lock_name in self._lock_names:
            self.out(f"(void)__lock_{lock_name};")
        self._scopes = [{}]
        self._at_top = True
        for stmt in self.program.body:
            if not isinstance(stmt, ast.FuncDef):
                self.gen_stmt(stmt)
        self._at_top = False
        self._scopes = []
        self.out("(void)__it;")
        self.out("shmem_finalize();")
        self.out("return 0;")

        parts: list[str] = [C_PRELUDE]
        if self.file_lines:
            parts.append("/* -- symmetric & top-level program data -- */")
            parts.extend(self.file_lines)
            parts.append("")
        if protos:
            parts.extend(protos)
            parts.append("")
        for block in func_blocks:
            parts.extend(block)
            parts.append("")
        parts.append("int main(void)")
        parts.append("{")
        parts.extend(self.body_lines)
        parts.append("}")
        return "\n".join(parts) + "\n"


def compile_c(
    source_or_program,
    filename: str = "<string>",
    *,
    n_pes: Optional[int] = None,
) -> str:
    """Compile LOLCODE source to a C + OpenSHMEM translation unit.

    With ``n_pes`` the launch width is fixed at compile time: symmetric
    array extents written as ``MAH FRENZ`` arithmetic fold to constants
    (the output is then specific to that width — the native build cache
    keys on the folded C text, so each width gets its own binary).
    """
    program = (
        source_or_program
        if isinstance(source_or_program, ast.Program)
        else parse(source_or_program, filename)
    )
    return CBackend(program, n_pes=n_pes).generate()
