/* Single-node OpenSHMEM shim implementation.  See lol_shmem_shim.h for
 * the model and the launch protocol.
 *
 * World layout inside the shared file:
 *
 *   [ control page ][ PE 0 slot ][ PE 1 slot ] ... [ PE n-1 slot ]
 *
 * where every slot is the program's `lol_sym` section rounded up to a
 * whole number of pages.  The control page carries the sense-reversing
 * barrier and a layout checksum; symmetric locks are ordinary symmetric
 * longs and are arbitrated with compare-and-swap on PE 0's copy, which
 * is the OpenSHMEM lock-home convention.
 *
 * Synchronisation uses the GCC/Clang __atomic builtins on plain
 * integers in the shared mapping (lock-free at 4/8 bytes on every
 * target we care about); waits spin briefly, then yield, then sleep,
 * and give up with a diagnostic once the deadline passes so a diverged
 * program turns into a per-PE error instead of a hung test suite.
 */
#define _DEFAULT_SOURCE /* MAP_ANONYMOUS on glibc */
#include "lol_shmem_shim.h"

#include <errno.h>
#include <fcntl.h>
#include <sched.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/mman.h>
#include <time.h>
#include <unistd.h>

extern char __start_lol_sym[], __stop_lol_sym[];

typedef struct {
    uint64_t slot_bytes;   /* published by the first PE; sanity check   */
    uint32_t barrier_count;
    uint32_t barrier_sense;
    uint32_t abort_flag;   /* a dying PE trips this so siblings exit    */
} lol_ctrl_t;

static int g_pe = 0;
static int g_npes = 1;
static char *g_world = NULL;      /* whole-file mapping; NULL = standalone */
static lol_ctrl_t *g_ctrl = NULL;
static size_t g_ctrl_bytes = 0;
static size_t g_slot = 0;
static int g_sense = 1;
static long long g_timeout_ms = 120000;

static long long lol_now_ms(void)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (long long)ts.tv_sec * 1000 + ts.tv_nsec / 1000000;
}

static void lol_die(const char *what)
{
    fprintf(stderr, "lol-shmem[PE %d]: %s (errno: %s)\n", g_pe, what,
            strerror(errno));
    if (g_ctrl)
        __atomic_store_n(&g_ctrl->abort_flag, 1u, __ATOMIC_SEQ_CST);
    exit(3);
}

static void lol_pause(unsigned spins)
{
    if (spins < 1024)
        return; /* stay hot: barriers are usually near-simultaneous */
    if (spins < 4096) {
        sched_yield();
        return;
    }
    struct timespec ts = {0, 200000}; /* 200us */
    nanosleep(&ts, NULL);
}

static void lol_check_world(long long deadline, const char *who)
{
    if (g_ctrl && __atomic_load_n(&g_ctrl->abort_flag, __ATOMIC_SEQ_CST))
        lol_die("a sibling PE aborted");
    if (lol_now_ms() > deadline)
        lol_die(who);
}

/* Translate a symmetric address in THIS process to the same object in
 * `pe`'s slot.  Offsets are portable across the PEs because they all
 * run the same executable, hence the same section layout. */
static char *lol_sym_addr(const void *local, int pe)
{
    ptrdiff_t off = (const char *)local - __start_lol_sym;
    if (pe < 0 || pe >= g_npes)
        lol_die("remote target PE out of range");
    if (off < 0 || off >= __stop_lol_sym - __start_lol_sym)
        lol_die("address is not a symmetric object");
    if (g_world == NULL) /* standalone single PE: no remapping happened */
        return (char *)(uintptr_t)local;
    return g_world + g_ctrl_bytes + (size_t)pe * g_slot + (size_t)off;
}

void shmem_init(void)
{
    const char *pe_env = getenv("LOL_SHMEM_PE");
    const char *np_env = getenv("LOL_SHMEM_NPES");
    const char *file = getenv("LOL_SHMEM_FILE");
    const char *to_env = getenv("LOL_SHMEM_TIMEOUT_MS");

    g_pe = pe_env ? atoi(pe_env) : 0;
    g_npes = np_env ? atoi(np_env) : 1;
    if (to_env)
        g_timeout_ms = atoll(to_env);
    if (g_npes < 1 || g_pe < 0 || g_pe >= g_npes)
        lol_die("bad LOL_SHMEM_PE/LOL_SHMEM_NPES");
    if (file == NULL) {
        if (g_npes != 1)
            lol_die("LOL_SHMEM_NPES > 1 needs LOL_SHMEM_FILE");
        return; /* standalone serial run: private memory is already correct */
    }

    size_t page = (size_t)sysconf(_SC_PAGESIZE);
    size_t seg = (size_t)(__stop_lol_sym - __start_lol_sym);
    g_slot = (seg + page - 1) / page * page;
    g_ctrl_bytes = (sizeof(lol_ctrl_t) + page - 1) / page * page;
    size_t total = g_ctrl_bytes + g_slot * (size_t)g_npes;

    int fd = open(file, O_RDWR);
    if (fd < 0)
        lol_die("cannot open LOL_SHMEM_FILE");
    if (ftruncate(fd, (off_t)total) != 0) /* idempotent: all PEs agree */
        lol_die("cannot size the shared world file");
    g_world = mmap(NULL, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    if (g_world == MAP_FAILED)
        lol_die("cannot map the shared world file");
    g_ctrl = (lol_ctrl_t *)g_world;

    /* Every PE publishes the slot size it computed; a mismatch means
     * different binaries were pointed at one world file. */
    uint64_t zero = 0;
    if (!__atomic_compare_exchange_n(&g_ctrl->slot_bytes, &zero,
                                     (uint64_t)g_slot, 0, __ATOMIC_SEQ_CST,
                                     __ATOMIC_SEQ_CST) &&
        zero != (uint64_t)g_slot)
        lol_die("shared world was created by a different binary");

    /* Seed my slot with my section's current contents, then remap the
     * section onto the slot.  The copy covers the whole page span; the
     * tail bytes past the section end belong only to this PE's slot
     * and are never addressed remotely (remote offsets are bounded by
     * the section size), so sharing them is harmless. */
    memcpy(g_world + g_ctrl_bytes + (size_t)g_pe * g_slot, __start_lol_sym,
           g_slot);
    if (mmap(__start_lol_sym, g_slot, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_FIXED, fd,
             (off_t)(g_ctrl_bytes + (size_t)g_pe * g_slot)) == MAP_FAILED)
        lol_die("cannot remap the symmetric section");
    close(fd);

    /* No PE may touch a sibling before that sibling has remapped. */
    shmem_barrier_all();
}

void shmem_finalize(void)
{
    if (g_world != NULL)
        shmem_barrier_all();
    fflush(stdout);
}

int shmem_my_pe(void) { return g_pe; }
int shmem_n_pes(void) { return g_npes; }

void shmem_barrier_all(void)
{
    if (g_npes == 1 || g_ctrl == NULL)
        return;
    __atomic_thread_fence(__ATOMIC_SEQ_CST);
    long long deadline = lol_now_ms() + g_timeout_ms;
    uint32_t pos = __atomic_fetch_add(&g_ctrl->barrier_count, 1u,
                                      __ATOMIC_SEQ_CST);
    if (pos + 1 == (uint32_t)g_npes) {
        /* Last arriver: reset the counter for the next round, then
         * release everyone by flipping the sense. */
        __atomic_store_n(&g_ctrl->barrier_count, 0u, __ATOMIC_SEQ_CST);
        __atomic_store_n(&g_ctrl->barrier_sense, (uint32_t)g_sense,
                         __ATOMIC_RELEASE);
    } else {
        unsigned spins = 0;
        while (__atomic_load_n(&g_ctrl->barrier_sense, __ATOMIC_ACQUIRE) !=
               (uint32_t)g_sense) {
            lol_check_world(deadline, "HUGZ barrier timed out "
                                      "(PEs diverged or a sibling died)");
            lol_pause(spins++);
        }
    }
    g_sense = !g_sense;
    __atomic_thread_fence(__ATOMIC_SEQ_CST);
}

/* -- one-sided data movement ------------------------------------------ */

#define LOL_DEF_SCALAR(NAME, TYPE)                                          \
    TYPE shmem_##NAME##_g(const TYPE *src, int pe)                          \
    {                                                                       \
        TYPE v;                                                             \
        __atomic_thread_fence(__ATOMIC_SEQ_CST);                            \
        memcpy(&v, lol_sym_addr(src, pe), sizeof v);                        \
        __atomic_thread_fence(__ATOMIC_SEQ_CST);                            \
        return v;                                                           \
    }                                                                       \
    void shmem_##NAME##_p(TYPE *dst, TYPE value, int pe)                    \
    {                                                                       \
        __atomic_thread_fence(__ATOMIC_SEQ_CST);                            \
        memcpy(lol_sym_addr(dst, pe), &value, sizeof value);                \
        __atomic_thread_fence(__ATOMIC_SEQ_CST);                            \
    }                                                                       \
    void shmem_##NAME##_get(TYPE *dst, const TYPE *src, size_t n, int pe)   \
    {                                                                       \
        __atomic_thread_fence(__ATOMIC_SEQ_CST);                            \
        memcpy(dst, lol_sym_addr(src, pe), n * sizeof *dst);                \
        __atomic_thread_fence(__ATOMIC_SEQ_CST);                            \
    }                                                                       \
    void shmem_##NAME##_put(TYPE *dst, const TYPE *src, size_t n, int pe)   \
    {                                                                       \
        __atomic_thread_fence(__ATOMIC_SEQ_CST);                            \
        memcpy(lol_sym_addr(dst, pe), src, n * sizeof *dst);                \
        __atomic_thread_fence(__ATOMIC_SEQ_CST);                            \
    }

LOL_DEF_SCALAR(longlong, long long)
LOL_DEF_SCALAR(double, double)
LOL_DEF_SCALAR(int, int)

/* -- locks -------------------------------------------------------------
 * OpenSHMEM convention: the lock word's home is PE 0's copy; owners
 * store pe+1 so 0 always means "free". */

void shmem_set_lock(long *lock)
{
    long *home = (long *)lol_sym_addr(lock, 0);
    long long deadline = lol_now_ms() + g_timeout_ms;
    unsigned spins = 0;
    for (;;) {
        long expected = 0;
        if (__atomic_compare_exchange_n(home, &expected, (long)g_pe + 1, 0,
                                        __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST))
            return;
        lol_check_world(deadline,
                        "IM SRSLY MESIN WIF: lock wait timed out");
        lol_pause(spins++);
    }
}

int shmem_test_lock(long *lock)
{
    long *home = (long *)lol_sym_addr(lock, 0);
    long expected = 0;
    if (__atomic_compare_exchange_n(home, &expected, (long)g_pe + 1, 0,
                                    __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST))
        return 0; /* acquired */
    return 1;
}

void shmem_clear_lock(long *lock)
{
    long *home = (long *)lol_sym_addr(lock, 0);
    __atomic_store_n(home, 0L, __ATOMIC_SEQ_CST);
}
