/* Bundled single-node OpenSHMEM shim for lcc-emitted programs.
 *
 * This header is included by the generated translation unit when it is
 * built with -DLOL_SHMEM_SHIM (the engine="c" path driven by
 * repro.compiler.native).  It implements the subset of the OpenSHMEM
 * API the C backend emits -- init/finalize, my_pe/n_pes, barrier_all,
 * typed scalar p/g, contiguous get/put, and the set/test/clear lock
 * trio -- over one mmap'd file shared by n_pes ordinary OS processes.
 *
 * The trick that makes the backend's "file-scope statics are per-PE"
 * model hold: every symmetric object is tagged LOL_SYMMETRIC, which
 * places it in the dedicated page-aligned `lol_sym` section.  At
 * shmem_init each PE copies that section into its own slot of the
 * shared file and remaps the section MAP_FIXED onto the slot, so
 *
 *   - plain C accesses to a symmetric variable keep working unchanged
 *     (same virtual addresses, now backed by the shared file), and
 *   - a sibling PE's copy is reachable as  slot(pe) + (addr - section
 *     start); the section layout is identical in every process because
 *     all PEs run the same executable.
 *
 * Launch protocol (what repro.compiler.native sets up):
 *   LOL_SHMEM_NPES        number of PEs (default 1)
 *   LOL_SHMEM_PE          this process's PE id (default 0)
 *   LOL_SHMEM_FILE        path to the (initially empty) shared file;
 *                         may be omitted when NPES is 1, in which case
 *                         the binary runs standalone in private memory
 *   LOL_SHMEM_TIMEOUT_MS  barrier/lock deadline (default 120000)
 *
 * A binary built by `lolcc --build` therefore runs directly as a
 * serial program with no environment at all.
 */
#ifndef LOL_SHMEM_SHIM_H
#define LOL_SHMEM_SHIM_H

#include <stddef.h>

/* Symmetric data lives in the remappable page-aligned section. */
#define LOL_SYMMETRIC __attribute__((section("lol_sym"), aligned(8)))

/* Force the section to exist (even for programs with no symmetric
 * data) and pin its start to a page boundary so MAP_FIXED cannot
 * clobber unrelated data in front of it.  Each translation unit gets
 * its own anchor; `used` keeps -O2 from discarding it. */
__attribute__((section("lol_sym"), aligned(4096), used)) static char
    __lol_sym_anchor;

void shmem_init(void);
void shmem_finalize(void);
int shmem_my_pe(void);
int shmem_n_pes(void);
void shmem_barrier_all(void);

long long shmem_longlong_g(const long long *src, int pe);
void shmem_longlong_p(long long *dst, long long value, int pe);
double shmem_double_g(const double *src, int pe);
void shmem_double_p(double *dst, double value, int pe);
int shmem_int_g(const int *src, int pe);
void shmem_int_p(int *dst, int value, int pe);

void shmem_longlong_get(long long *dst, const long long *src, size_t n, int pe);
void shmem_longlong_put(long long *dst, const long long *src, size_t n, int pe);
void shmem_double_get(double *dst, const double *src, size_t n, int pe);
void shmem_double_put(double *dst, const double *src, size_t n, int pe);
void shmem_int_get(int *dst, const int *src, size_t n, int pe);
void shmem_int_put(int *dst, const int *src, size_t n, int pe);

void shmem_set_lock(long *lock);
void shmem_clear_lock(long *lock);
int shmem_test_lock(long *lock);

#endif /* LOL_SHMEM_SHIM_H */
