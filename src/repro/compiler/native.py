"""Build and launch natively compiled LOLCODE — the ``engine="c"`` path.

This is the half of the paper's deployment story the C backend alone
cannot provide: after :func:`~repro.compiler.c_backend.compile_c` emits
the translation unit, something must play the role of ``cc`` plus
``coprsh -np 16 ./x``.  On a development machine that is:

1. :func:`build_native` — write the TU next to the bundled single-node
   SHMEM shim (``lol_shmem_shim.c``/``.h``), invoke the system C
   compiler, and cache the binary on disk under ``~/.cache/repro-lcc``
   (override with ``$LOL_CC_CACHE``) keyed by the SHA-256 of the folded
   C text + shim sources + compiler + flags, with a single-flight guard
   so concurrent identical builds compile once;
2. :func:`run_native` — launch ``n_pes`` OS processes of that binary
   around a fresh shared world file (``/dev/shm`` when available),
   capture each PE's stdout/exit status, and marshal them into the
   standard :class:`~repro.shmem.runtime_threads.SpmdResult` shape.

Missing toolchains raise :class:`NativeToolchainError` (distinct from
program-level :class:`~repro.compiler.symtab.CompileError` restrictions)
so callers — the launcher, ``lolbench`` skip rows, the ``requires_cc``
test marker — can tell "this host cannot build" from "this program
cannot compile".

Knobs the native engine cannot honour (``max_steps``, op tracing, the
race detector) are refused by the launcher before this module is ever
reached; ``seed`` is forwarded as ``$LOL_SEED`` (reproducible within the
native engine, but the C ``rand()`` stream is not the interpreters'
Mersenne Twister — see :func:`uses_random` for the differential-skip
helper built on that fact).
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import shutil
import subprocess
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from functools import lru_cache
from typing import Optional, Sequence

from .. import obs as _obs
from ..faults import inject
from ..lang.errors import LolError, LolParallelError
from ..lang.parser import parse_cached
from ..shmem.api import DEFAULT_BARRIER_TIMEOUT
from ..shmem.runtime_threads import SpmdResult
from ..singleflight import SingleFlight
from .c_backend import compile_c
from .symtab import analyze

_SHIM_DIR = pathlib.Path(__file__).resolve().parent
SHIM_HEADER = _SHIM_DIR / "lol_shmem_shim.h"
SHIM_SOURCE = _SHIM_DIR / "lol_shmem_shim.c"

#: Flags for the generated TU + shim.  -O2 is the point of the engine;
#: the sources are kept warning-clean but -Werror is deliberately not
#: used (unknown host compilers must not fail the build on taste).
CFLAGS = ("-O2", "-std=c11", "-Wall")

_build_flight = SingleFlight()

#: In-process memo of finished builds: (source, n_pes, cc) -> binary
#: path.  Saves the codegen + hashing work on warm calls (the service's
#: steady state, and every timed bench rep); the on-disk cache remains
#: the cross-process source of truth, so a hit is re-validated with an
#: existence check and entries never go stale.
_BUILD_MEMO: dict[tuple, pathlib.Path] = {}
_BUILD_MEMO_LOCK = threading.Lock()
_BUILD_MEMO_MAX = 256

#: Extra cc attempts after a *transient* failure (a compiler killed by a
#: signal — OOM kill, interrupted — or an injected ``native.build``
#: fault).  A compiler that runs and *rejects* the C is never retried.
DEFAULT_BUILD_RETRIES = 2

#: Observability counters for the build/cache plane: one registry
#: counter family labelled by event, so ``lolserve stats`` (``native``)
#: and the Prometheus ``metrics`` op read the *same* series — the
#: registry is the single source of truth, not a copy that can drift.
_NATIVE_EVENTS = ("builds", "cache_hits", "corrupt_rebuilds", "transient_retries")
_M_NATIVE = _obs.get_registry().counter(
    "lol_native_events_total",
    "Native build/cache events (builds, cache hits, corrupt rebuilds, "
    "transient cc retries)",
)


def _bump(key: str) -> None:
    _M_NATIVE.inc(event=key)


def native_stats() -> dict:
    """Snapshot of the native build/cache counters (the ``native``
    block of ``lolserve stats``) — read straight off the registry."""
    return {key: int(_M_NATIVE.value(event=key)) for key in _NATIVE_EVENTS}


def reset_native_stats() -> None:
    """Zero the counters (test isolation)."""
    _M_NATIVE.reset()


@lru_cache(maxsize=1)
def _shim_sources() -> tuple[str, str]:
    """The bundled shim's header and implementation text (read once)."""
    return SHIM_HEADER.read_text(), SHIM_SOURCE.read_text()


class NativeToolchainError(LolError):
    """This host cannot produce native binaries (no C compiler found).

    Deliberately *not* a :class:`~repro.compiler.symtab.CompileError`:
    the program may be perfectly compilable — the environment is what is
    lacking — and consumers (bench skip rows, the ``requires_cc``
    marker) skip rather than diagnose the source.  Strictly reserved
    for the compiler-not-found case: a compiler that *runs and rejects*
    the generated C is a codegen/program failure
    (:class:`NativeBuildError`) and must stay loud.
    """


class NativeBuildError(LolError):
    """The C compiler rejected the generated translation unit.

    Either a program-level problem the backend failed to diagnose or a
    codegen regression; never an environment condition, so benches
    record it as a failure, not a skip.
    """


class NativeBuildTransientError(NativeBuildError):
    """The toolchain failed in a way a fresh attempt may survive.

    Raised only when the in-module retry budget
    (:data:`DEFAULT_BUILD_RETRIES`, override ``$LOL_BUILD_RETRIES``) is
    exhausted: a cc killed by a signal, or an injected ``native.build``
    fault.  Carries ``retryable = True`` so the scheduler's
    :class:`~repro.faults.RetryPolicy` re-submits the job.
    """

    retryable = True


def find_cc() -> Optional[str]:
    """Absolute path of the system C compiler, or ``None``.

    ``$LOL_CC`` wins; otherwise the conventional names are probed in
    order (``cc``, ``gcc``, ``clang``).
    """
    override = os.environ.get("LOL_CC")
    candidates = [override] if override else ["cc", "gcc", "clang"]
    for cand in candidates:
        path = shutil.which(cand)
        if path:
            return path
    return None


def cache_dir() -> pathlib.Path:
    root = os.environ.get("LOL_CC_CACHE")
    base = (
        pathlib.Path(root)
        if root
        else pathlib.Path.home() / ".cache" / "repro-lcc"
    )
    base.mkdir(parents=True, exist_ok=True)
    return base


def _checksum_path(binary: pathlib.Path) -> pathlib.Path:
    return binary.parent / (binary.name + ".sha256")


def _file_sha256(path: pathlib.Path) -> Optional[str]:
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return None


def _verify_cached(binary: pathlib.Path) -> bool:
    """Integrity-check an on-disk cached binary before warm reuse.

    The cache *key* hashes the inputs (C text, shim, compiler, flags) —
    it says nothing about the bytes actually sitting in the file, which
    a truncated write, a disk error, or a meddling sibling process can
    have corrupted.  So every build also records the binary's own
    sha256 next to it; a mismatch (or a missing/unreadable checksum)
    evicts the entry and reports ``False`` so the caller rebuilds —
    a corrupt cache entry costs one silent rebuild, never an exec of a
    bad binary.
    """
    expected = None
    try:
        expected = _checksum_path(binary).read_text().strip()
    except OSError:
        pass
    if expected is not None and _file_sha256(binary) == expected:
        return True
    _bump("corrupt_rebuilds")
    for stale in (binary, _checksum_path(binary)):
        try:
            stale.unlink()
        except OSError:
            pass
    return False


def _apply_cache_fault(binary: pathlib.Path, kind: str) -> None:
    """Damage a cached binary in place (``native.cache`` injection).

    Corruption happens to real cache files in the real cache directory,
    so the verification path under test is exactly the production one.
    """
    try:
        if kind == "truncate":
            size = binary.stat().st_size
            with open(binary, "r+b") as fh:
                fh.truncate(max(1, size // 2))
        elif kind == "corrupt":
            size = binary.stat().st_size
            with open(binary, "r+b") as fh:
                fh.seek(size // 2)
                span = fh.read(min(16, max(1, size - size // 2)))
                # XOR, not overwrite-with-a-pattern: the region might
                # already hold that pattern (ELF padding is zeros), and
                # a "corruption" that leaves the bytes unchanged tests
                # nothing.
                fh.seek(size // 2)
                fh.write(bytes(b ^ 0xFF for b in span))
    except OSError:
        pass


def uses_random(source: str, filename: str = "<string>") -> bool:
    """True when the program draws ``WHATEVR``/``WHATEVAR`` values.

    The native engine's rand() stream differs from the interpreters'
    seeded Mersenne Twister, so consumers (bench differential, the
    engine-differential suite) must not expect bit-identical output from
    such programs and use this predicate to skip the comparison
    explicitly.
    """
    return analyze(parse_cached(source, filename), allow_srs=True).uses_random


def build_native(
    source: str,
    filename: str = "<string>",
    *,
    n_pes: int = 1,
    cc: Optional[str] = None,
) -> pathlib.Path:
    """Compile LOLCODE to a cached native binary; returns its path.

    Program restrictions surface as ``CompileError`` before any
    toolchain work; a missing compiler raises
    :class:`NativeToolchainError`, and a compiler that rejects the
    generated C raises :class:`NativeBuildError`.  The cache key covers
    the folded C text (hence ``source`` *and* ``n_pes``), both shim
    sources, the compiler path, and the flag set, so stale binaries
    cannot be reused across any input that changes the build.
    """
    cc = cc or find_cc()
    if cc is None:
        raise NativeToolchainError(
            "engine='c' needs a host C compiler (cc, gcc, clang, or "
            "$LOL_CC); none was found on PATH"
        )
    # Warm path: skip codegen + hashing entirely (filename only affects
    # diagnostic positions, never the generated C, so it is not keyed).
    memo_key = (source, n_pes, cc)
    with _BUILD_MEMO_LOCK:
        hit = _BUILD_MEMO.get(memo_key)
    if hit is not None and hit.exists():
        rule = inject("native.cache")
        if rule is not None:
            _apply_cache_fault(hit, rule.kind)
        if _verify_cached(hit):
            _bump("cache_hits")
            return hit
        # Corrupt/truncated on disk: drop the memo entry and fall
        # through to a full (silent) rebuild.
        with _BUILD_MEMO_LOCK:
            _BUILD_MEMO.pop(memo_key, None)
    c_source = compile_c(source, filename, n_pes=n_pes)
    shim_header, shim_source = _shim_sources()
    digest = hashlib.sha256(
        "\x00".join(
            [c_source, shim_header, shim_source, cc, " ".join(CFLAGS)]
        ).encode()
    ).hexdigest()
    binary = cache_dir() / f"lol-{digest[:24]}"

    def _build() -> pathlib.Path:
        if binary.exists():
            # Warm hit (possibly from a concurrent builder) — verified
            # against its recorded checksum before reuse.
            rule = inject("native.cache")
            if rule is not None:
                _apply_cache_fault(binary, rule.kind)
            if _verify_cached(binary):
                _bump("cache_hits")
                return binary
        workdir = pathlib.Path(
            tempfile.mkdtemp(prefix="build-", dir=cache_dir())
        )
        rt = _obs.ACTIVE
        t0 = time.perf_counter() if rt is not None else 0.0
        try:
            tu = workdir / "program.c"
            tu.write_text(c_source)
            tmp_bin = workdir / "program"
            retries = int(
                os.environ.get("LOL_BUILD_RETRIES", DEFAULT_BUILD_RETRIES)
            )
            attempts = 1 + max(0, retries)
            for attempt in range(1, attempts + 1):
                rule = inject("native.build")
                if rule is not None and rule.kind == "fail":
                    # Injected transient toolchain failure (a cc OOM
                    # kill, a flaky NFS cache dir, ...).
                    if attempt < attempts:
                        _bump("transient_retries")
                        continue
                    raise NativeBuildTransientError(
                        f"injected fault at site 'native.build' exhausted "
                        f"{attempts} build attempts"
                    )
                proc = subprocess.run(
                    [
                        cc,
                        *CFLAGS,
                        "-DLOL_SHMEM_SHIM",
                        f"-I{_SHIM_DIR}",
                        str(tu),
                        str(SHIM_SOURCE),
                        "-o",
                        str(tmp_bin),
                        "-lm",
                    ],
                    capture_output=True,
                    text=True,
                )
                if proc.returncode == 0:
                    break
                if proc.returncode < 0:
                    # Killed by a signal: environmental, not a verdict
                    # on the generated C — retry within budget.
                    if attempt < attempts:
                        _bump("transient_retries")
                        continue
                    raise NativeBuildTransientError(
                        f"{cc} was killed by signal {-proc.returncode} "
                        f"on all {attempts} attempts:\n{proc.stderr.strip()}"
                    )
                raise NativeBuildError(
                    f"{cc} rejected the generated C "
                    f"(exit {proc.returncode}):\n{proc.stderr.strip()}"
                )
            # Record the binary's own checksum *before* publishing the
            # binary: a reader that can see the binary can always see
            # its checksum (the reverse orphan is harmlessly evicted).
            digest = hashlib.sha256(tmp_bin.read_bytes()).hexdigest()
            tmp_sum = workdir / "program.sha256"
            tmp_sum.write_text(digest + "\n")
            os.replace(tmp_sum, _checksum_path(binary))
            os.replace(tmp_bin, binary)  # atomic vs. concurrent builders
            _bump("builds")
            if rt is not None and rt.trace_on:
                rt.tracer.complete(
                    "build",
                    "cc",
                    t0,
                    time.perf_counter() - t0,
                    args={"cc": cc, "binary": binary.name, "attempts": attempt},
                )
            return binary
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    built = _build_flight.guard(str(binary), _build)
    with _BUILD_MEMO_LOCK:
        if len(_BUILD_MEMO) >= _BUILD_MEMO_MAX:
            _BUILD_MEMO.clear()  # whole-source keys: a flat reset is fine
        _BUILD_MEMO[memo_key] = built
    return built


def _shm_dir() -> Optional[str]:
    """Preferred directory for the world file (RAM-backed when possible)."""
    return "/dev/shm" if os.path.isdir("/dev/shm") else None


def _drain(
    proc: subprocess.Popen,
    stdin_data: Optional[str],
    deadline: float,
) -> tuple[int, str, str, bool]:
    """Feed stdin / collect output for one PE; returns (rc, out, err, late)."""
    try:
        out, err = proc.communicate(
            input=stdin_data, timeout=max(0.1, deadline - time.monotonic())
        )
        return proc.returncode, out, err, False
    except subprocess.TimeoutExpired:
        proc.kill()
        out, err = proc.communicate()
        return proc.returncode, out or "", err or "", True


def run_native(
    binary: pathlib.Path,
    n_pes: int,
    *,
    seed: Optional[int] = None,
    stdin_lines: Optional[Sequence[Sequence[str]]] = None,
    barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
) -> SpmdResult:
    """Launch ``n_pes`` processes of a built binary as one SHMEM world.

    Every PE's stdout is captured separately (the per-PE ``outputs`` of
    the result); stderr is reserved for shim/program diagnostics and
    quoted in the error when a PE fails.  Stragglers are killed at the
    overall deadline and named by rank, mirroring the process executor.
    """
    if n_pes < 1:
        raise LolParallelError(f"need at least 1 PE, got {n_pes}")
    with tempfile.TemporaryDirectory(
        prefix="lol-world-", dir=_shm_dir()
    ) as tmp:
        world = pathlib.Path(tmp) / "world"
        world.touch()
        feeds: list[Optional[str]] = [
            (
                "\n".join(stdin_lines[pe]) + "\n"
                if stdin_lines and stdin_lines[pe] is not None
                else None
            )
            for pe in range(n_pes)
        ]
        procs: list[subprocess.Popen] = []
        try:
            for pe in range(n_pes):
                env = dict(os.environ)
                env["LOL_SHMEM_PE"] = str(pe)
                env["LOL_SHMEM_NPES"] = str(n_pes)
                env["LOL_SHMEM_FILE"] = str(world)
                env["LOL_SHMEM_TIMEOUT_MS"] = str(
                    int(barrier_timeout * 1000)
                )
                if seed is not None:
                    env["LOL_SEED"] = str(seed)
                procs.append(
                    subprocess.Popen(
                        [str(binary)],
                        stdin=(
                            subprocess.PIPE
                            if feeds[pe] is not None
                            else subprocess.DEVNULL
                        ),
                        stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE,
                        env=env,
                        text=True,
                    )
                )
            # Grace beyond the in-binary barrier deadline so the shim's
            # own per-PE diagnostic (exit 3) wins the race when PEs
            # diverge and only truly wedged processes get killed here.
            deadline = time.monotonic() + barrier_timeout + 15.0
            with ThreadPoolExecutor(max_workers=n_pes) as pool:
                results = list(
                    pool.map(
                        lambda pe: _drain(procs[pe], feeds[pe], deadline),
                        range(n_pes),
                    )
                )
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()

    late = [pe for pe, (_, _, _, timed_out) in enumerate(results) if timed_out]
    if late:
        raise LolParallelError(
            f"native PEs {late} failed to terminate within "
            f"{barrier_timeout + 15.0:.0f}s (deadlock?)"
        )
    failed = [
        (pe, rc, err)
        for pe, (rc, _, err, _) in enumerate(results)
        if rc != 0
    ]
    if failed:
        # A dying PE trips the shim's abort flag, so siblings exit with
        # the secondary "a sibling PE aborted" diagnostic; report the
        # root-cause PE, not the lowest-ranked casualty.
        failed.sort(key=lambda f: ("a sibling PE aborted" in f[2], f[0]))
        pe, rc, err = failed[0]
        detail = err.strip().splitlines()
        raise LolParallelError(
            f"native PE {pe} exited with status {rc}"
            + (f": {detail[-1]}" if detail else "")
            + (
                f" ({len(failed) - 1} more PE(s) also failed)"
                if len(failed) > 1
                else ""
            )
        )
    return SpmdResult(
        n_pes=n_pes,
        outputs=[out for _, out, _, _ in results],
        returns=[None] * n_pes,
    )


def run_native_source(
    source: str,
    n_pes: int = 1,
    *,
    filename: str = "<string>",
    seed: Optional[int] = None,
    stdin_lines: Optional[Sequence[Sequence[str]]] = None,
    barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
) -> SpmdResult:
    """Compile (cached), build (cached), and run in one call.

    This is what ``run_lolcode(..., engine="c")`` dispatches to; compile
    restrictions and toolchain absence both surface here, in the caller,
    never from inside a worker.
    """
    binary = build_native(source, filename, n_pes=n_pes)
    return run_native(
        binary,
        n_pes,
        seed=seed,
        stdin_lines=stdin_lines,
        barrier_timeout=barrier_timeout,
    )
