"""Runtime support library for Python code emitted by the compiler.

The generated module imports these helpers under short underscore names.
They delegate to the same :mod:`repro.interp.values` operator semantics the
interpreter uses, which is what makes interpreter-vs-compiled differential
testing meaningful: any divergence is a codegen bug, not a semantics fork.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..lang.errors import LolParallelError, LolRuntimeError, LolTypeError
from ..lang.types import (
    LolType,
    cast as _cast_impl,
    coerce_static,
    default_value,
    format_yarn,
    to_array_size,
    to_numbr,
    to_troof,
)
from ..interp.values import FLOP_COST, binop, equals, naryop, unop
from ..shmem.heap import ArrayCell

TYPES = {t.value: t for t in LolType}

# Re-exported operator kernels (names the generated code uses).
_binop = binop
_unop = unop
_nary = naryop
_eq = equals
_troof = to_troof
_numbr = to_numbr
_yarn = format_yarn


def _binop_f(op: str, lhs: object, rhs: object, ctx) -> object:
    """FLOP-counting :func:`_binop` — emitted only by traced compiles,
    so the untraced generated code carries no accounting calls (the same
    compile-time split the closure engine makes)."""
    ctx.add_flops(FLOP_COST.get(op, 0))
    return binop(op, lhs, rhs)


def _unop_f(op: str, value: object, ctx) -> object:
    """FLOP-counting :func:`_unop` (traced compiles only)."""
    ctx.add_flops(FLOP_COST.get(op, 0))
    return unop(op, value)


def _cast(value: object, type_name: str) -> object:
    return _cast_impl(value, TYPES[type_name])


def _coerce(value: object, type_name: str, var_name: str) -> object:
    return coerce_static(value, TYPES[type_name], var_name)


def _default(type_name: str) -> object:
    return default_value(TYPES[type_name])


_asize = to_array_size


def _mkarray(type_name: str, size: object) -> ArrayCell:
    n = to_array_size(size)
    if n <= 0:
        raise LolRuntimeError(f"array must have positive size, got {n}")
    return ArrayCell(TYPES[type_name], n)


def _elem(value: object, type_name: Optional[str]) -> object:
    if type_name is None:
        return value
    return coerce_static(value, TYPES[type_name], "<element>")


def _write_all(cell: ArrayCell, value: object, name: str) -> None:
    if not isinstance(value, (list, np.ndarray)):
        raise LolTypeError(
            f"cannot assign a scalar to whole array '{name}'"
        )
    if len(value) != len(cell):
        raise LolRuntimeError(
            f"array length mismatch assigning to '{name}': "
            f"{len(value)} vs {len(cell)}"
        )
    cell.write_all(value)


def _chkpe(pe_value: object, ctx) -> int:
    pe = to_numbr(pe_value)
    if not 0 <= pe < ctx.n_pes:
        raise LolParallelError(
            f"TXT MAH BFF {pe}: PE out of range [0, {ctx.n_pes})"
        )
    return pe


def _require_tgt(tgt: Optional[int], name: str) -> int:
    if tgt is None:
        raise LolParallelError(
            f"'UR {name}' used outside a TXT MAH BFF predicated statement "
            f"or block"
        )
    return tgt


def _display(value: object) -> str:
    if isinstance(value, (list, np.ndarray)):
        return " ".join(format_yarn(_py_scalar(v)) for v in value)
    return format_yarn(_py_scalar(value))


def _py_scalar(v: object) -> object:
    if isinstance(v, np.integer):
        return int(v)
    if isinstance(v, np.floating):
        return float(v)
    if isinstance(v, np.bool_):
        return bool(v)
    return v


def _rand_int(ctx) -> int:
    return ctx.rng.randrange(0, 2**31 - 1)


def _rand_float(ctx) -> float:
    return ctx.rng.random()
