"""Static symbol resolution for the compiler backends.

The paper's ``lcc`` is a *compiler*, so unlike the interpreter it must
know, before emitting code, for every name:

* whether it is symmetric (``WE HAS A``) or local (``I HAS A``);
* its static type, if declared (``ITZ [SRSLY] A <type>``), or dynamic;
* whether it is an array and, when constant, the array extent;
* whether it carries the implied global lock (``AN IM SHARIN IT``).

:func:`analyze` walks the AST once and produces a :class:`SymbolTable`
plus a list of :class:`CompileIssue` diagnostics for constructs that are
interpretable but not compilable (e.g. ``SRS`` computed identifiers —
a fundamentally dynamic feature, rejected by AOT backends).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lang import ast
from ..lang.errors import LolError, SourcePos
from ..lang.types import LolType, parse_type


class CompileError(LolError):
    """A construct that cannot be compiled (though it may interpret)."""


@dataclass(slots=True)
class SymbolInfo:
    name: str
    symmetric: bool = False
    static_type: Optional[LolType] = None  # None => dynamic
    is_array: bool = False
    size_expr: Optional[ast.Expr] = None
    shared_lock: bool = False
    assigned_in_functions: set = field(default_factory=set)


@dataclass(slots=True)
class FunctionInfo:
    name: str
    params: list[str]
    node: ast.FuncDef
    locals: dict[str, SymbolInfo] = field(default_factory=dict)
    assigns_globals: list[str] = field(default_factory=list)


@dataclass
class SymbolTable:
    globals: dict[str, SymbolInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    uses_random: bool = False
    uses_gimmeh: bool = False
    libraries: list[str] = field(default_factory=list)

    def symmetric_symbols(self) -> list[SymbolInfo]:
        return [s for s in self.globals.values() if s.symmetric]

    def locked_symbols(self) -> list[SymbolInfo]:
        return [s for s in self.globals.values() if s.shared_lock]


def _decl_to_info(decl: ast.VarDecl) -> SymbolInfo:
    return SymbolInfo(
        name=decl.name,
        symmetric=decl.scope == "WE",
        static_type=(
            parse_type(decl.static_type, decl.pos) if decl.static_type else None
        ),
        is_array=decl.is_array,
        size_expr=decl.size,
        shared_lock=decl.shared_lock,
    )


def _walk_exprs(stmt: ast.Stmt):
    """Yield every expression reachable from a statement (shallow walk of
    the statement's own expression slots, not nested statements)."""
    if isinstance(stmt, ast.VarDecl):
        if stmt.size is not None:
            yield stmt.size
        if stmt.init is not None:
            yield stmt.init
    elif isinstance(stmt, ast.Assign):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, ast.CastStmt):
        yield stmt.target
    elif isinstance(stmt, ast.ExprStmt):
        yield stmt.expr
    elif isinstance(stmt, ast.Visible):
        yield from stmt.args
    elif isinstance(stmt, ast.Gimmeh):
        yield stmt.target
    elif isinstance(stmt, ast.If):
        for cond, _ in stmt.mebbe:
            yield cond
    elif isinstance(stmt, ast.Switch):
        for lit, _ in stmt.cases:
            yield lit
    elif isinstance(stmt, ast.Loop):
        if stmt.cond is not None:
            yield stmt.cond
    elif isinstance(stmt, ast.Return):
        yield stmt.expr
    elif isinstance(stmt, ast.LockStmt):
        yield stmt.target
    elif isinstance(stmt, ast.TxtStmt):
        yield stmt.pe


def _walk_subexprs(expr: ast.Expr):
    yield expr
    if isinstance(expr, ast.BinOp):
        yield from _walk_subexprs(expr.lhs)
        yield from _walk_subexprs(expr.rhs)
    elif isinstance(expr, ast.UnaryOp):
        yield from _walk_subexprs(expr.operand)
    elif isinstance(expr, ast.NaryOp):
        for op in expr.operands:
            yield from _walk_subexprs(op)
    elif isinstance(expr, ast.Cast):
        yield from _walk_subexprs(expr.expr)
    elif isinstance(expr, ast.Index):
        yield from _walk_subexprs(expr.base)
        yield from _walk_subexprs(expr.index)
    elif isinstance(expr, ast.SrsRef):
        yield from _walk_subexprs(expr.expr)
    elif isinstance(expr, ast.FuncCall):
        for a in expr.args:
            yield from _walk_subexprs(a)


def analyze(program: ast.Program, *, allow_srs: bool = False) -> SymbolTable:
    """Build the symbol table; raises :class:`CompileError` on constructs
    the compilers cannot translate."""
    table = SymbolTable()

    def scan_block(
        body: list[ast.Stmt],
        func: Optional[FunctionInfo],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.CanHas):
                table.libraries.append(stmt.library)
            if isinstance(stmt, ast.Gimmeh):
                table.uses_gimmeh = True
            if isinstance(stmt, ast.VarDecl):
                info = _decl_to_info(stmt)
                if info.symmetric and func is not None:
                    raise CompileError(
                        f"symmetric declaration of '{info.name}' inside a "
                        f"function is not compilable (symmetric data is "
                        f"statically allocated)",
                        stmt.pos,
                    )
                target = table.globals if func is None else func.locals
                prev = target.get(info.name)
                if prev is not None and (
                    prev.symmetric != info.symmetric
                    or prev.is_array != info.is_array
                ):
                    raise CompileError(
                        f"'{info.name}' re-declared with a different shape",
                        stmt.pos,
                    )
                target[info.name] = info
            if isinstance(stmt, ast.FuncDef):
                if func is not None:
                    raise CompileError(
                        f"nested function '{stmt.name}' is not compilable",
                        stmt.pos,
                    )
                finfo = FunctionInfo(stmt.name, list(stmt.params), stmt)
                table.functions[stmt.name] = finfo
                scan_block(stmt.body, finfo)
                continue
            if isinstance(stmt, ast.Loop) and stmt.var is not None:
                target = table.globals if func is None else func.locals
                # Loop counters are loop-local; track them so codegen can
                # initialise them, but do not clobber an outer declaration.
                key = f"{stmt.label}${stmt.var}"
                del key  # loop vars handled directly by codegen
            if isinstance(stmt, ast.Assign) and func is not None:
                tgt = stmt.target
                base = tgt.base if isinstance(tgt, ast.Index) else tgt
                if isinstance(base, ast.VarRef):
                    name = base.name
                    if name not in func.locals and name not in func.params:
                        func.assigns_globals.append(name)
            for expr in _walk_exprs(stmt):
                for sub in _walk_subexprs(expr):
                    if isinstance(sub, ast.RandomExpr):
                        table.uses_random = True
                    if isinstance(sub, ast.SrsRef) and not allow_srs:
                        raise CompileError(
                            "SRS computed identifiers are interpret-only "
                            "(not supported by the compiler backends)",
                            sub.pos,
                        )
            for block in ast.child_statements(stmt):
                scan_block(block, func)

    scan_block(program.body, None)
    return table


def loop_counters(body: list[ast.Stmt]) -> list[str]:
    """All loop-counter names declared by ``IM IN YR ... UPPIN YR v``
    anywhere in ``body`` (compilers pre-declare them)."""
    names: list[str] = []
    for stmt in ast.walk_statements(body):
        if isinstance(stmt, ast.Loop) and stmt.var is not None:
            if stmt.var not in names:
                names.append(stmt.var)
    return names
