"""Deterministic fault-injection plane + retry machinery.

Two halves, one goal — failures that are *survivable* and *replayable*:

* :mod:`repro.faults.plan` — seeded :class:`FaultPlan` schedules fired
  at named injection sites inside the pool, the native build pipeline,
  the server, and the scheduler (env-activatable via ``LOL_FAULTS`` so
  subprocesses arm themselves);
* :mod:`repro.faults.retry` — :class:`RetryPolicy` (exponential backoff
  with deterministic jitter) and the ``retryable``-attribute protocol
  :func:`is_retryable` classifies typed errors with.

See ``docs/robustness.md`` for the failure-model table and the chaos
suite (``tests/test_chaos.py``) for the sites exercised end to end.
"""

from .plan import (
    ENV_VAR,
    SITES,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    InjectedFaultError,
    activate,
    active_plan,
    deactivate,
    fault_stats,
    inject,
    plan_from_rules,
    reset_faults,
)
from .retry import NO_RETRY, RetryPolicy, is_retryable

__all__ = [
    "ENV_VAR",
    "SITES",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "InjectedFaultError",
    "activate",
    "active_plan",
    "deactivate",
    "fault_stats",
    "inject",
    "plan_from_rules",
    "reset_faults",
    "NO_RETRY",
    "RetryPolicy",
    "is_retryable",
]
