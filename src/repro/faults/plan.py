"""Deterministic fault-injection plans.

A :class:`FaultPlan` is a seeded, serializable schedule of failures to
inject at **named sites** threaded through the layers that can fail in
production — the warm worker pool, the native build pipeline, the
service server, and the scheduler's admission path.  Runs of this repo
are deterministic by construction (seeded RNG, bit-differential
engines), which is exactly what makes seeded chaos testing work:
replaying the same plan against the same workload reproduces the same
failure, the same recovery, and the same final outcome.

Sites (see ``docs/robustness.md`` for the full failure-model table):

=====================  =====================================================
site                   fires in / supported kinds
=====================  =====================================================
``pool.worker_spawn``  parent, per worker slot — ``fail``
``pool.job_send``      parent, per PE dispatch — ``kill``, ``drop``
``pool.reply``         *worker*, before its reply — ``kill``, ``delay``,
                       ``garbage``
``native.build``       builder, before invoking cc — ``fail``
``native.cache``       builder, on a warm binary hit — ``truncate``,
                       ``corrupt``
``server.conn``        server, after reading a request — ``drop``
``scheduler.enqueue``  scheduler, on submit — ``queue_full``
=====================  =====================================================

Activation is process-wide (:func:`activate` / :func:`deactivate`) and
**environment-propagated**: exporting the plan as ``LOL_FAULTS`` (JSON,
see :meth:`FaultPlan.to_json`) arms every later-spawned subprocess —
pool workers pick it up at import time, so worker-side sites
(``pool.reply``) fire inside the real worker process, exercising the
real recovery machinery rather than a simulation of it.

When no plan is active, :func:`inject` is a module-global ``None``
check — injection sites cost nothing in production.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from typing import Iterable, Optional

from ..lang.errors import LolError

#: Environment variable carrying a JSON-serialized plan into subprocesses.
ENV_VAR = "LOL_FAULTS"

#: Every registered injection site and the fault kinds it honours.
SITES: dict[str, tuple[str, ...]] = {
    "pool.worker_spawn": ("fail",),
    "pool.job_send": ("kill", "drop"),
    "pool.reply": ("kill", "delay", "garbage"),
    "native.build": ("fail",),
    "native.cache": ("truncate", "corrupt"),
    "server.conn": ("drop",),
    "scheduler.enqueue": ("queue_full",),
}


class FaultPlanError(LolError):
    """A malformed fault plan (unknown site/kind, bad JSON, ...)."""


class InjectedFaultError(LolError):
    """An injected fault surfaced directly as an error.

    Carries the site and kind so chaos tests (and operators reading
    logs) can tie the failure back to the plan that caused it.  Always
    classified retryable: an injected fault models a *transient*
    infrastructure failure.
    """

    retryable = True

    def __init__(self, rule: "FaultRule") -> None:
        self.site = rule.site
        self.kind = rule.kind
        detail = f" rank={rule.rank}" if rule.rank is not None else ""
        super().__init__(
            f"injected fault at site '{rule.site}' (kind '{rule.kind}'{detail})"
        )


def _det_unit(seed: int, site: str, n: int) -> float:
    """Deterministic uniform-[0,1) draw for arrival ``n`` at ``site``.

    Keyed by content (not by Python's randomized ``hash``), so the same
    plan replays identically across processes and interpreter runs.
    """
    digest = hashlib.blake2b(
        f"{seed}:{site}:{n}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class FaultRule:
    """One line of a plan: *where*, *what*, and *when* to fail.

    Selection is deterministic: a rule fires on specific ``hits``
    (1-based arrival indices at the site, counted per observing
    process), on specific pool ``jobs`` (the pool's monotonically
    increasing job counter — stable across worker respawns, unlike
    per-process arrival counts), with seeded probability ``p``, or
    always (no selector).  ``rank`` restricts to one PE/worker slot and
    ``times`` caps total fires.
    """

    site: str
    kind: str
    rank: Optional[int] = None
    hits: Optional[tuple[int, ...]] = None
    jobs: Optional[tuple[int, ...]] = None
    p: float = 0.0
    times: Optional[int] = None
    delay_s: float = 0.5

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r} "
                f"(choose from {sorted(SITES)})"
            )
        if self.kind not in SITES[self.site]:
            raise FaultPlanError(
                f"site {self.site!r} does not support kind {self.kind!r} "
                f"(supported: {SITES[self.site]})"
            )

    def to_dict(self) -> dict:
        out: dict = {"site": self.site, "kind": self.kind}
        if self.rank is not None:
            out["rank"] = self.rank
        if self.hits is not None:
            out["hits"] = list(self.hits)
        if self.jobs is not None:
            out["jobs"] = list(self.jobs)
        if self.p:
            out["p"] = self.p
        if self.times is not None:
            out["times"] = self.times
        if self.delay_s != 0.5:
            out["delay_s"] = self.delay_s
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultRule":
        if not isinstance(raw, dict):
            raise FaultPlanError(f"fault rule must be an object, got {raw!r}")
        known = {
            "site", "kind", "rank", "hits", "jobs", "p", "times", "delay_s"
        }
        unknown = set(raw) - known
        if unknown:
            raise FaultPlanError(f"unknown fault rule fields {sorted(unknown)}")
        try:
            return cls(
                site=raw["site"],
                kind=raw["kind"],
                rank=raw.get("rank"),
                hits=tuple(raw["hits"]) if raw.get("hits") else None,
                jobs=tuple(raw["jobs"]) if raw.get("jobs") else None,
                p=float(raw.get("p", 0.0)),
                times=raw.get("times"),
                delay_s=float(raw.get("delay_s", 0.5)),
            )
        except KeyError as exc:
            raise FaultPlanError(f"fault rule missing field {exc}") from None


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of :class:`FaultRule`\\ s."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "rules": [r.to_dict() for r in self.rules]}
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"bad fault plan JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        return cls(
            seed=int(raw.get("seed", 0)),
            rules=tuple(
                FaultRule.from_dict(r) for r in raw.get("rules", [])
            ),
        )

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        raw = os.environ.get(ENV_VAR)
        return cls.from_json(raw) if raw else None

    def env(self) -> dict[str, str]:
        """``{ENV_VAR: json}`` — merge into a subprocess environment."""
        return {ENV_VAR: self.to_json()}


# ---------------------------------------------------------------------------
# Process-wide activation + the hot-path ``inject`` check.
# ---------------------------------------------------------------------------

_plan: Optional[FaultPlan] = None
_lock = threading.Lock()
_arrivals: dict[str, int] = {}
_fires: dict[str, int] = {}
_rule_fires: dict[int, int] = {}


def activate(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide and reset all counters."""
    global _plan
    with _lock:
        _arrivals.clear()
        _fires.clear()
        _rule_fires.clear()
        _plan = plan


def deactivate() -> None:
    """Disarm fault injection (counters are kept for inspection)."""
    global _plan
    with _lock:
        _plan = None


def active_plan() -> Optional[FaultPlan]:
    return _plan


def reset_faults() -> None:
    """Disarm *and* clear all counters — back to the never-armed state
    (:func:`fault_stats` returns ``None`` again).  Test isolation."""
    global _plan
    with _lock:
        _plan = None
        _arrivals.clear()
        _fires.clear()
        _rule_fires.clear()


def fault_stats() -> Optional[dict]:
    """Arrival/fire counters while a plan is (or was) active.

    Returns ``None`` when injection has never been armed in this
    process — the shape ``lolserve stats`` forwards.
    """
    with _lock:
        if _plan is None and not _arrivals:
            return None
        return {
            "armed": _plan is not None,
            "arrivals": dict(_arrivals),
            "fires": dict(_fires),
        }


def inject(
    site: str,
    *,
    rank: Optional[int] = None,
    job: Optional[int] = None,
) -> Optional[FaultRule]:
    """Report one arrival at ``site``; return the rule to apply, if any.

    The no-plan path is a single global ``None`` check — sites are free
    when injection is disarmed.  With a plan active, the site's arrival
    counter increments once per call and each rule is matched against
    (site, rank, job, arrival index, seeded draw), first match wins.
    """
    plan = _plan
    if plan is None:
        return None
    with _lock:
        n = _arrivals.get(site, 0) + 1
        _arrivals[site] = n
        for idx, rule in enumerate(plan.rules):
            if rule.site != site:
                continue
            if rule.rank is not None and rule.rank != rank:
                continue
            if rule.times is not None and _rule_fires.get(idx, 0) >= rule.times:
                continue
            if rule.jobs is not None:
                if job is None or job not in rule.jobs:
                    continue
            elif rule.hits is not None:
                if n not in rule.hits:
                    continue
            elif rule.p:
                if _det_unit(plan.seed, site, n) >= rule.p:
                    continue
            _rule_fires[idx] = _rule_fires.get(idx, 0) + 1
            key = f"{site}:{rule.kind}"
            _fires[key] = _fires.get(key, 0) + 1
            return rule
    return None


def plan_from_rules(seed: int, rules: Iterable[dict]) -> FaultPlan:
    """Convenience constructor from plain dicts (tests, CLIs)."""
    return FaultPlan(
        seed=seed, rules=tuple(FaultRule.from_dict(r) for r in rules)
    )


def _fault_collector() -> None:
    """Publish the arrival/fire maps as per-site gauges (point-in-time
    reads of cumulative dicts, pid-tagged on cross-process drains)."""
    from .. import obs as _obs

    stats = fault_stats()
    if stats is None:
        return  # never armed here: emit nothing rather than zeros
    reg = _obs.get_registry()
    reg.gauge("lol_faults_armed", "1 while a fault plan is active").set(
        1 if stats["armed"] else 0
    )
    arrivals = reg.gauge(
        "lol_fault_arrivals", "Calls reaching each injection site"
    )
    for site, n in stats["arrivals"].items():
        arrivals.set(n, site=site)
    fires = reg.gauge("lol_fault_fires", "Faults actually fired per site")
    for site, n in stats["fires"].items():
        fires.set(n, site=site)


def _register_obs_collector() -> None:
    from .. import obs as _obs

    _obs.get_registry().register_collector(_fault_collector)


_register_obs_collector()


# Arm from the environment at import time: spawned subprocesses (pool
# workers, native PEs' parents) inherit ``LOL_FAULTS`` and re-import
# this module, so a plan exported by the test/CI driver reaches every
# process in the tree without explicit plumbing.
_env_plan = FaultPlan.from_env()
if _env_plan is not None:
    activate(_env_plan)
del _env_plan
