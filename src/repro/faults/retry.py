"""Retry policy with exponential backoff and *deterministic* jitter.

The jitter draw is keyed by (seed, attempt) through the same
content-hash generator the fault plans use, so a retried run under a
seeded fault schedule replays with identical timing decisions — chaos
outcomes stay reproducible, which is the whole point of seeding them.

Retryability is a protocol, not a registry: an exception opts in by
carrying a truthy ``retryable`` class attribute.  The typed errors that
do — :class:`~repro.service.pool.WorkerCrashError`,
:class:`~repro.compiler.native.NativeBuildTransientError`,
:class:`~repro.faults.plan.InjectedFaultError`,
:class:`~repro.service.scheduler.QueueFullError` — all model failures
where a fresh attempt runs against fresh state (respawned workers, a
re-run compiler, a drained queue).  Program-level errors (a LOLCODE
exception, a failed checker) never carry the attribute: retrying a
deterministic program cannot change its answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import _det_unit


def is_retryable(exc: BaseException) -> bool:
    """True when a fresh attempt of the failed operation may succeed."""
    return bool(getattr(exc, "retryable", False))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``base * factor**(attempt-1)``,
    capped at ``max_backoff``, plus a deterministic jitter fraction."""

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def delay(self, attempt: int, seed: int = 0) -> float:
        """Backoff before the retry *after* 1-based ``attempt`` failed."""
        base = min(
            self.max_backoff,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        return base * (1.0 + self.jitter * _det_unit(seed, "retry", attempt))

    def describe(self) -> dict:
        """Wire/stats-friendly summary."""
        return {
            "max_attempts": self.max_attempts,
            "backoff_base_s": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "max_backoff_s": self.max_backoff,
            "jitter": self.jitter,
        }


#: Policy used where retries should be *off* unless asked for.
NO_RETRY = RetryPolicy(max_attempts=1)
