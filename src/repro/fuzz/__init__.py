"""Coverage-guided differential fuzzer for parallel LOLCODE.

The fuzzer closes the gap between the hand-written workload registry and
the space of programs the five engines must agree on: a seeded grammar
generator emits random well-formed SPMD programs (ROADMAP item 5), a
``lollint`` gate discards anything that could legitimately deadlock or
race, and every surviving candidate runs on all requested engines.  Any
divergence — differing output, differing typed-error class, or a hang on
one engine only — is delta-debugged down to a minimized repro and written
to a corpus directory, from which it graduates into the tier-1 suite
(``tests/golden/fuzz/``).

Coverage feedback is deliberately cheap: the VM's per-opcode dispatch
counters (the same ones ``lolprof`` reads) plus static bytecode bigrams
and analysis-CFG edge shapes.  A candidate that lights up new features
enters the mutation pool, steering generation toward unexplored
opcode/comm-pattern space.

Public entry points:

* :func:`repro.fuzz.grammar.generate_program` / ``mutate_program``
* :class:`repro.fuzz.fuzzer.Fuzzer` — the generate → gate → diff loop
* :func:`repro.fuzz.diff.run_differential` — one candidate, all engines
* :func:`repro.fuzz.minimize.minimize_program` — greedy ddmin
* ``lolfuzz`` CLI (:mod:`repro.fuzz.cli`) — ``run`` / ``replay`` /
  ``minimize`` / ``gen`` subcommands.
"""

from .diff import Divergence, Outcome, run_differential
from .fuzzer import Finding, FuzzStats, Fuzzer
from .grammar import GenConfig, generate_program, mutate_program, program_size
from .minimize import minimize_program

__all__ = [
    "Divergence",
    "Finding",
    "FuzzStats",
    "Fuzzer",
    "GenConfig",
    "Outcome",
    "generate_program",
    "minimize_program",
    "mutate_program",
    "program_size",
    "run_differential",
]
