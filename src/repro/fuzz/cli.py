"""``lolfuzz`` — coverage-guided differential fuzzing CLI.

Subcommands::

    lolfuzz run       seeded fuzz loop (--iterations or --budget 60s)
    lolfuzz replay    re-run corpus files through the differential pipeline
    lolfuzz minimize  delta-debug a divergent program to a smaller repro
    lolfuzz gen       print the generated program for a seed (debugging)

Exit codes: 0 clean, 2 usage/input error, 4 divergence found (``run`` /
``replay``) or the input does not diverge (``minimize``).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Optional, Sequence

from .diff import DEFAULT_ENGINES

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_DIVERGENT = 4


def _parse_budget(text: str) -> float:
    m = re.fullmatch(r"(\d+(?:\.\d+)?)\s*(s|m|h)?", text.strip())
    if not m:
        raise argparse.ArgumentTypeError(f"bad budget {text!r} (try '60s' or '2m')")
    mult = {"s": 1.0, "m": 60.0, "h": 3600.0, None: 1.0}[m.group(2)]
    return float(m.group(1)) * mult


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("-np", "--n-pes", type=int, default=4, dest="n_pes")
    p.add_argument("--seed", type=int, default=0, help="fuzzer RNG seed")
    p.add_argument("--engines", nargs="+", default=list(DEFAULT_ENGINES),
                   metavar="ENGINE")
    p.add_argument("--executors", nargs="+", default=["thread"],
                   metavar="EXECUTOR")
    p.add_argument("--max-steps", type=int, default=200_000)
    p.add_argument("--barrier-timeout", type=float, default=20.0)


def lolfuzz_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lolfuzz",
        description="coverage-guided differential fuzzer for parallel LOLCODE",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_run = sub.add_parser("run", help="fuzz until an iteration or time budget")
    _add_common(p_run)
    p_run.add_argument("--iterations", type=int, default=None)
    p_run.add_argument("--budget", type=_parse_budget, default=None,
                       metavar="TIME", help="wall-clock budget, e.g. 60s")
    p_run.add_argument("--corpus", type=Path, default=Path("fuzz-corpus"),
                       help="directory for minimized repros")
    p_run.add_argument("--stop-after", type=int, default=None,
                       help="stop after N findings")
    p_run.add_argument("--minimize-checks", type=int, default=150)
    p_run.add_argument("--json", action="store_true", help="emit stats as JSON")
    p_run.add_argument("-q", "--quiet", action="store_true")

    p_replay = sub.add_parser("replay", help="re-run corpus programs")
    _add_common(p_replay)
    p_replay.add_argument("paths", nargs="+", type=Path,
                          help=".lol files or corpus directories")
    p_replay.add_argument("--json", action="store_true")

    p_min = sub.add_parser("minimize", help="delta-debug one program")
    _add_common(p_min)
    p_min.add_argument("source", type=Path, help="input .lol file")
    p_min.add_argument("-o", "--out", type=Path, default=None,
                       help="write minimized repro here (default: stdout)")
    p_min.add_argument("--max-checks", type=int, default=250)

    p_gen = sub.add_parser("gen", help="print the program for a generator seed")
    p_gen.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    if args.cmd == "run":
        return _cmd_run(args)
    if args.cmd == "replay":
        return _cmd_replay(args)
    if args.cmd == "minimize":
        return _cmd_minimize(args)
    if args.cmd == "gen":
        from .grammar import generate_source

        sys.stdout.write(generate_source(args.seed))
        return EXIT_OK
    return EXIT_USAGE  # pragma: no cover - argparse guards


def _cmd_run(args) -> int:
    from .fuzzer import Fuzzer

    if args.iterations is None and args.budget is None:
        args.iterations = 200
    log = (lambda _m: None) if args.quiet else (lambda m: print(f"[lolfuzz] {m}"))
    fuzzer = Fuzzer(
        seed=args.seed,
        n_pes=args.n_pes,
        engines=tuple(args.engines),
        executors=tuple(args.executors),
        max_steps=args.max_steps,
        barrier_timeout=args.barrier_timeout,
        corpus_dir=args.corpus,
        minimize_checks=args.minimize_checks,
        log=log,
    )
    stats = fuzzer.run(iterations=args.iterations, budget_s=args.budget,
                       stop_after=args.stop_after)
    payload = {
        "stats": stats.as_dict(),
        "findings": [f.meta() for f in fuzzer.findings],
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        d = stats.as_dict()
        print(
            f"[lolfuzz] {d['iterations']} iterations in {d['elapsed_s']:.1f}s: "
            f"{d['divergences']} divergence(s), {d['features']} coverage features, "
            f"{d['lint_discards'] + d['gate_discards']} discarded"
        )
        for f in fuzzer.findings:
            print(f"[lolfuzz]   {f.kind} on {', '.join(f.engines)} "
                  f"(iteration {f.iteration})")
    return EXIT_DIVERGENT if fuzzer.findings else EXIT_OK


def _iter_replay_paths(paths):
    from .corpus import iter_corpus, load_entry

    for p in paths:
        if p.is_dir():
            yield from iter_corpus(p)
        else:
            yield load_entry(p)


def _cmd_replay(args) -> int:
    from .corpus import replay_entry

    rows = []
    divergent = 0
    for entry in _iter_replay_paths(args.paths):
        result = replay_entry(
            entry,
            engines=tuple(args.engines),
            executors=tuple(args.executors),
            barrier_timeout=args.barrier_timeout,
        )
        rows.append({
            "path": str(entry.path),
            "status": result.status,
            "reason": result.reason,
            "divergences": [d.describe() for d in result.divergences],
        })
        if result.status == "divergent":
            divergent += 1
        if not args.json:
            mark = "DIVERGENT" if result.status == "divergent" else result.status
            print(f"[lolfuzz] {entry.path}: {mark}"
                  + (f" ({result.reason})" if result.reason else ""))
            for d in result.divergences:
                print(f"[lolfuzz]   {d.describe()}")
    if not rows:
        print("[lolfuzz] no corpus entries found", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    return EXIT_DIVERGENT if divergent else EXIT_OK


def _cmd_minimize(args) -> int:
    from ..lang.formatter import format_program
    from ..lang.parser import parse
    from .diff import program_is_divergent, run_differential
    from .grammar import program_size
    from .minimize import minimize_program

    source = args.source.read_text()
    result = run_differential(
        source, args.n_pes, engines=tuple(args.engines),
        executors=tuple(args.executors), seed=args.seed,
        max_steps=args.max_steps, barrier_timeout=args.barrier_timeout,
        filename=str(args.source),
    )
    if result.status != "divergent":
        print(f"[lolfuzz] {args.source}: not divergent ({result.status}"
              + (f": {result.reason}" if result.reason else "") + ")",
              file=sys.stderr)
        return EXIT_DIVERGENT
    match = (frozenset(d.engine for d in result.divergences),
             frozenset(d.outcome.kind for d in result.divergences))
    program = parse(source, str(args.source))

    def predicate(candidate) -> bool:
        return program_is_divergent(
            candidate, args.n_pes, engines=tuple(args.engines), seed=args.seed,
            max_steps=args.max_steps, barrier_timeout=args.barrier_timeout,
            match=match,
        )

    minimized = minimize_program(program, predicate, max_checks=args.max_checks)
    text = format_program(minimized)
    print(f"[lolfuzz] {program_size(program)} -> {program_size(minimized)} nodes",
          file=sys.stderr)
    if args.out is not None:
        args.out.write_text(text)
        print(f"[lolfuzz] wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(lolfuzz_main())
