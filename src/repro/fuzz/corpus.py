"""Corpus directory management: findings on disk, replayable forever.

Each finding is a pair of files named by a content hash of the minimized
source::

    <kind>_<sha12>.lol    the minimized repro (formatter output)
    <kind>_<sha12>.json   metadata sidecar

The sidecar records everything needed to replay the divergence exactly:
PE count, RNG seed, engine list, the divergence kind and per-engine
outcome summaries, and the original (pre-minimization) source for
archaeology.  ``tests/test_fuzz_corpus.py`` replays every ``.lol`` file
under ``tests/golden/fuzz/`` through the same pipeline and asserts the
engines now agree — fuzzer findings graduate into permanent regression
tests once fixed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional


@dataclass
class CorpusEntry:
    path: Path
    source: str
    meta: dict

    @property
    def n_pes(self) -> int:
        return int(self.meta.get("n_pes", 4))

    @property
    def seed(self) -> int:
        return int(self.meta.get("seed", 0))

    @property
    def engines(self) -> tuple[str, ...]:
        return tuple(self.meta.get("engines", ()))


def _stem_for(source: str, kind: str) -> str:
    digest = hashlib.sha256(source.encode()).hexdigest()[:12]
    return f"{kind}_{digest}"


def save_finding(
    corpus_dir: Path,
    *,
    source: str,
    kind: str,
    meta: dict,
) -> Path:
    """Write a finding; returns the ``.lol`` path.  Idempotent by content."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    stem = _stem_for(source, kind)
    lol_path = corpus_dir / f"{stem}.lol"
    lol_path.write_text(source)
    (corpus_dir / f"{stem}.json").write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
    return lol_path


def load_entry(lol_path: Path) -> CorpusEntry:
    lol_path = Path(lol_path)
    sidecar = lol_path.with_suffix(".json")
    meta: dict = {}
    if sidecar.exists():
        meta = json.loads(sidecar.read_text())
    return CorpusEntry(lol_path, lol_path.read_text(), meta)


def iter_corpus(corpus_dir: Path) -> Iterator[CorpusEntry]:
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return
    for lol_path in sorted(corpus_dir.glob("*.lol")):
        yield load_entry(lol_path)


def replay_entry(
    entry: CorpusEntry,
    *,
    engines: Optional[tuple[str, ...]] = None,
    executors: tuple[str, ...] = ("thread",),
    barrier_timeout: float = 20.0,
):
    """Re-run one corpus entry through the differential pipeline."""
    from .diff import DEFAULT_ENGINES, run_differential

    return run_differential(
        entry.source,
        entry.n_pes,
        engines=engines or entry.engines or DEFAULT_ENGINES,
        executors=executors,
        seed=entry.seed,
        barrier_timeout=barrier_timeout,
        filename=str(entry.path),
    )
