"""Coverage features for fuzzing feedback.

The signal is deliberately cheap and engine-native — no tracing hooks:

* **Dynamic opcode coverage** — the per-opcode dispatch counters the VM
  gate already collects (the same counters ``lolprof`` reports), bucketed
  AFL-style into power-of-two hit ranges so "executed once" and
  "executed thousands of times" are distinct features.
* **Static opcode bigrams** — consecutive opcode pairs in the compiled
  bytecode.  Superinstruction fusion (``INC_JMP``, ``ADD_SC``,
  ``PUT_BARRIER``, ``GET_BIN``) changes exactly these pairs, so a
  candidate that tickles a new fusion pattern registers as new coverage.
* **CFG edge shapes** — edges from the analysis package's control-flow
  graphs, abstracted to (block-kind, successor-kind, nesting-depth)
  triples so they generalize across programs instead of keying on
  per-program block ids.

A :class:`CoverageMap` accumulates the global feature set; candidates
contributing unseen features are "interesting" and enter the fuzzer's
mutation pool.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..lang import ast

Feature = tuple

_HIT_BUCKETS = (1, 2, 4, 8, 32, 128, 1024, 16384)


def _bucket(n: int) -> int:
    b = 0
    for limit in _HIT_BUCKETS:
        if n <= limit:
            return limit
        b = limit
    return b * 2


def opcode_features(counts: Optional[Iterable[int]]) -> set[Feature]:
    """Dynamic features from merged VM dispatch counters."""
    if counts is None:
        return set()
    from ..vm.isa import OPNAMES

    feats: set[Feature] = set()
    for op, n in enumerate(counts):
        if n:
            name = OPNAMES[op] if op < len(OPNAMES) else str(op)
            feats.add(("op", name))
            feats.add(("hits", name, _bucket(n)))
    return feats


def bigram_features(source: str, filename: str = "<fuzz>") -> set[Feature]:
    """Static opcode-pair features from the compiled (vectorized) bytecode."""
    from ..lang.errors import LolError
    from ..lang.parser import parse
    from ..vm import compile as vm_compile
    from ..vm.isa import OPNAMES

    feats: set[Feature] = set()
    try:
        program = parse(source, filename)
        vmp = vm_compile.compile_program_vm(program)
    except LolError:
        return feats
    seen_cos = [vmp.co]
    # Function bodies are separate code objects in the hoisted pool.
    for fn in vmp.hoisted.values():
        if fn.co is not None:
            seen_cos.append(fn.co)
    for co in seen_cos:
        prev: Optional[str] = None
        for instr in co.code:
            name = OPNAMES[instr[0]] if instr[0] < len(OPNAMES) else str(instr[0])
            if prev is not None:
                feats.add(("pair", prev, name))
            prev = name
    return feats


def cfg_features(program: ast.Program) -> set[Feature]:
    """Structural edge features from the analysis CFGs."""
    from ..analysis.cfg import build_program_cfgs

    feats: set[Feature] = set()
    try:
        cfgs = build_program_cfgs(program)
    except Exception:
        return feats
    for key, cfg in cfgs.items():
        scope = "main" if key is None else "func"
        for block in cfg.blocks:
            kind = _block_kind(block)
            for succ in block.succs:
                sblock = cfg.blocks[succ] if succ < len(cfg.blocks) else None
                skind = _block_kind(sblock) if sblock is not None else "exit"
                feats.add(("edge", scope, kind, skind))
    return feats


def _block_kind(block) -> str:
    stmts = getattr(block, "stmts", None) or []
    if not stmts:
        return "empty"
    names = {type(s).__name__ for s in stmts}
    for marker in ("Hugz", "LockStmt", "TxtStmt", "Loop", "If", "Switch"):
        if marker in names:
            return marker
    return type(stmts[0]).__name__


class CoverageMap:
    """Global feature set with "is this new?" bookkeeping."""

    def __init__(self) -> None:
        self.features: set[Feature] = set()

    def observe(self, feats: set[Feature]) -> int:
        """Merge ``feats``; return how many were previously unseen."""
        new = feats - self.features
        if new:
            self.features |= new
        return len(new)

    def __len__(self) -> int:
        return len(self.features)


def candidate_features(
    program: ast.Program,
    source: str,
    opcode_counts: Optional[Iterable[int]],
) -> set[Feature]:
    """All features one candidate contributes."""
    feats = opcode_features(opcode_counts)
    feats |= bigram_features(source)
    feats |= cfg_features(program)
    return feats
