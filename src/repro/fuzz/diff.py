"""Differential execution of one candidate program across engines.

The pipeline per candidate is::

    lollint gate  ->  VM gate (step-bounded, profiled)  ->  engine matrix

* The **lint gate** discards programs with static errors or any
  parallel-correctness warning (divergent barriers, races, lock misuse):
  those may legitimately deadlock or be schedule-dependent, so engine
  disagreement would be noise, not signal.
* The **VM gate** runs the candidate once on the non-vectorized VM with
  ``max_steps`` armed (the only engines honouring ``max_steps`` are
  ``ast`` and ``vm``).  Programs that exhaust the step budget are
  discarded — every surviving candidate is known to terminate, so the
  remaining engines can run without step accounting.  The gate doubles
  as the coverage probe: it returns the per-opcode dispatch counts the
  fuzzer feeds into :mod:`repro.fuzz.coverage`.
* The **engine matrix** then runs the candidate on every requested
  engine and compares ``(kind, outputs | error-class)`` against the
  reference engine (``ast``).  A typed error is a *comparable outcome*:
  engines must agree on the error class, not just on success.

The native ``c`` engine is excluded by default: its RNG is libc
``rand()`` and its ``%`` truncates toward zero, both documented
divergences from the Python engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..lang import ast as lol_ast
from ..lang.checker import check_source
from ..lang.errors import LolError
from ..launcher.spmd import run_lolcode
from ..shmem.runtime_threads import run_spmd

#: Engines the fuzzer compares by default (reference first).
DEFAULT_ENGINES: tuple[str, ...] = ("ast", "closure", "vm", "compiled")

#: Checker codes whose presence disqualifies a candidate: static errors
#: plus the parallel-correctness warnings (divergent barrier, data race,
#: barrier-in-loop mismatch, lock misuse).  W107 (possible out-of-bounds)
#: is allowed through: an actual OOB raises the same typed error on every
#: engine, which is exactly the contract being fuzzed.
GATE_WARNINGS: frozenset[str] = frozenset({"W101", "W102", "W103", "W105", "W106"})


@dataclass(frozen=True)
class Outcome:
    """What one engine did with one candidate."""

    kind: str  # "ok" | "error" | "hang" | "stepout" | "skip"
    outputs: Optional[tuple[str, ...]] = None  # per-PE stdout when kind == "ok"
    error_class: str = ""  # exception-class chain when kind == "error"
    detail: str = ""

    def comparable(self) -> tuple:
        if self.kind == "ok":
            return ("ok", self.outputs)
        if self.kind == "error":
            return ("error", self.error_class)
        return (self.kind,)


@dataclass
class Divergence:
    """A disagreement between the reference engine and another engine."""

    engine: str
    reference: str
    ref_outcome: Outcome
    outcome: Outcome

    def describe(self) -> str:
        return (
            f"{self.engine} diverged from {self.reference}: "
            f"{self.outcome.kind}({self.outcome.error_class or self.outcome.detail or 'output'}) "
            f"vs {self.ref_outcome.kind}"
        )


@dataclass
class DiffResult:
    """Full result of one candidate's trip through the pipeline."""

    status: str  # "ok" | "divergent" | "discarded"
    reason: str = ""  # why discarded (lint code, stepout, vm-gate error detail)
    outcomes: dict[str, Outcome] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)
    opcode_counts: Optional[list[int]] = None  # merged VM dispatch counters


def classify_exception(exc: BaseException) -> Outcome:
    """Map an engine exception onto a comparable :class:`Outcome`."""
    msg = str(exc)
    low = msg.lower()
    if "failed to terminate" in low or "timed out" in low or "barrier broken" in low:
        return Outcome("hang", detail=msg.splitlines()[0][:200])
    if "statement steps" in low or "step budget" in low:
        return Outcome("stepout", detail=msg.splitlines()[0][:200])
    names = [type(exc).__name__]
    cause = exc.__cause__
    if isinstance(cause, LolError) and type(cause) is not type(exc):
        names.append(type(cause).__name__)
    return Outcome("error", error_class="/".join(names), detail=msg.splitlines()[0][:200])


def lint_gate(source: str, filename: str = "<fuzz>") -> Optional[str]:
    """Return a discard reason if the candidate fails the lint gate."""
    try:
        diags = check_source(source, filename)
    except LolError as exc:
        return f"checker-error:{type(exc).__name__}"
    bad = sorted({d.code for d in diags if d.is_error or d.code in GATE_WARNINGS})
    if bad:
        return "lint:" + ",".join(bad)
    return None


def run_vm_gate(
    source: str,
    n_pes: int,
    *,
    seed: int = 0,
    max_steps: int = 200_000,
    barrier_timeout: float = 20.0,
    filename: str = "<fuzz>",
) -> tuple[Outcome, Optional[list[int]]]:
    """Step-bounded, profiled run on the non-vectorized VM.

    Returns the outcome plus merged per-opcode dispatch counts (the
    coverage signal).  Compilation goes through the ``repro.vm.compile``
    module attribute at call time so tests can monkeypatch a planted bug
    into the same compiler every other VM run uses.
    """
    from ..lang.parser import parse
    from ..obs.vmprof import ProfilingMachine
    from ..vm import compile as vm_compile
    from ..vm.isa import N_OPCODES

    try:
        program = parse(source, filename)
        vmp = vm_compile.compile_program_vm(program, count_steps=True)
    except LolError as exc:
        return classify_exception(exc), None

    counts = [0] * N_OPCODES

    def pe_main(ctx) -> None:
        machine = ProfilingMachine(ctx, max_steps=max_steps)
        try:
            machine.run(vmp)
        finally:
            profile = machine.profile
            for op, n in enumerate(profile.counts):
                if n:
                    counts[op] += n

    try:
        result = run_spmd(pe_main, n_pes, seed=seed, barrier_timeout=barrier_timeout)
    except LolError as exc:
        return classify_exception(exc), counts
    return Outcome("ok", outputs=tuple(result.outputs)), counts


def run_engine(
    source: str,
    n_pes: int,
    engine: str,
    *,
    executor: str = "thread",
    seed: int = 0,
    barrier_timeout: float = 20.0,
    filename: str = "<fuzz>",
) -> Outcome:
    """Run one candidate on one engine and classify the result."""
    try:
        result = run_lolcode(
            source,
            n_pes,
            executor=executor,
            engine=engine,
            seed=seed,
            check="off",
            barrier_timeout=barrier_timeout,
            filename=filename,
        )
    except LolError as exc:
        if type(exc).__name__ == "CompileError" or "CompileError" in str(type(exc.__cause__)):
            # Documented backend restriction (SRS, nested decls, ...):
            # a skip, not a divergence — mirrors test_engine_differential.
            return Outcome("skip", detail=str(exc).splitlines()[0][:200])
        return classify_exception(exc)
    except RecursionError as exc:
        return Outcome("error", error_class="RecursionError", detail=str(exc)[:200])
    return Outcome("ok", outputs=tuple(result.outputs))


def run_differential(
    source: str,
    n_pes: int = 4,
    *,
    engines: Sequence[str] = DEFAULT_ENGINES,
    executors: Sequence[str] = ("thread",),
    seed: int = 0,
    max_steps: int = 200_000,
    barrier_timeout: float = 20.0,
    filename: str = "<fuzz>",
    skip_lint: bool = False,
) -> DiffResult:
    """Run the full pipeline on one candidate.

    The VM gate result participates in the comparison as pseudo-engine
    ``"vm-steps"`` (non-vectorized VM with step accounting), so the two
    VM configurations — vectorized and step-counted — are both checked
    against the reference on every candidate.
    """
    if not skip_lint:
        reason = lint_gate(source, filename)
        if reason is not None:
            return DiffResult("discarded", reason=reason)

    gate_outcome, counts = run_vm_gate(
        source, n_pes, seed=seed, max_steps=max_steps,
        barrier_timeout=barrier_timeout, filename=filename,
    )
    if gate_outcome.kind in ("stepout", "hang"):
        return DiffResult("discarded", reason=f"vm-gate:{gate_outcome.kind}",
                          opcode_counts=counts)

    result = DiffResult("ok", opcode_counts=counts)
    reference = engines[0]
    ref_outcome: Optional[Outcome] = None
    for executor in executors:
        for engine in engines:
            outcome = run_engine(
                source, n_pes, engine, executor=executor, seed=seed,
                barrier_timeout=barrier_timeout, filename=filename,
            )
            label = engine if len(executors) == 1 else f"{engine}/{executor}"
            result.outcomes[label] = outcome
            if engine == reference and executor == executors[0]:
                ref_outcome = outcome
                continue
            if outcome.kind == "skip" or ref_outcome is None:
                continue
            if outcome.comparable() != ref_outcome.comparable():
                result.divergences.append(
                    Divergence(label, reference, ref_outcome, outcome))
    # The step-counted VM run is a fifth configuration: its outputs must
    # match the reference too (it already ran, so this is free).
    result.outcomes["vm-steps"] = gate_outcome
    if ref_outcome is not None and gate_outcome.kind != "skip":
        if gate_outcome.comparable() != ref_outcome.comparable():
            result.divergences.append(
                Divergence("vm-steps", reference, ref_outcome, gate_outcome))
    if result.divergences:
        # Self-consistency check before trusting a divergence: the race
        # analysis is not complete (e.g. an unlocked read racing the
        # next epoch's locked writes slips through), and a racy
        # candidate diverges by *schedule*, not by engine.  Re-run the
        # reference and every diverging configuration; any engine that
        # disagrees with itself marks the candidate nondeterministic.
        ref_label = reference if len(executors) == 1 else f"{reference}/{executors[0]}"
        for label in sorted({ref_label} | {d.engine for d in result.divergences}):
            if label == "vm-steps":
                second, _ = run_vm_gate(
                    source, n_pes, seed=seed, max_steps=max_steps,
                    barrier_timeout=barrier_timeout, filename=filename,
                )
            else:
                engine, _, executor = label.partition("/")
                second = run_engine(
                    source, n_pes, engine, executor=executor or executors[0],
                    seed=seed, barrier_timeout=barrier_timeout, filename=filename,
                )
            if second.comparable() != result.outcomes[label].comparable():
                return DiffResult(
                    "discarded", reason=f"nondeterministic:{label}",
                    outcomes=result.outcomes, opcode_counts=counts,
                )
        result.status = "divergent"
    return result


def program_is_divergent(
    program: lol_ast.Program,
    n_pes: int,
    *,
    engines: Sequence[str] = DEFAULT_ENGINES,
    seed: int = 0,
    max_steps: int = 200_000,
    barrier_timeout: float = 20.0,
    match: Optional[tuple[frozenset[str], frozenset[str]]] = None,
) -> bool:
    """Minimizer predicate: does ``program`` still reproduce the bug?

    ``match`` pins the divergence signature ``(engines, kinds)`` observed
    on the original finding, so minimization can't drift onto an
    unrelated defect (e.g. shrink a miscompile into a type error).
    """
    from ..lang.formatter import format_program

    try:
        source = format_program(program)
    except Exception:
        return False
    result = run_differential(
        source, n_pes, engines=engines, seed=seed, max_steps=max_steps,
        barrier_timeout=barrier_timeout, skip_lint=False,
    )
    if result.status != "divergent":
        return False
    if match is not None:
        want_engines, want_kinds = match
        got_engines = frozenset(d.engine for d in result.divergences)
        got_kinds = frozenset(d.outcome.kind for d in result.divergences)
        return bool(want_engines & got_engines) and bool(want_kinds & got_kinds)
    return True
