"""The fuzzing loop: generate/mutate -> gate -> diff -> minimize -> save.

Determinism contract: a :class:`Fuzzer` constructed with the same seed
and config produces the same candidate sequence, the same coverage
trajectory, and the same findings, independent of wall clock (iteration
mode) — the budget mode stops on elapsed time but the candidate at each
iteration index is still seed-determined.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from ..lang import ast
from ..lang.formatter import format_program
from .corpus import save_finding
from .coverage import CoverageMap, candidate_features
from .diff import DEFAULT_ENGINES, DiffResult, program_is_divergent, run_differential
from .grammar import GenConfig, generate_program, mutate_program, program_size
from .minimize import minimize_program


@dataclass
class Finding:
    """One confirmed cross-engine divergence."""

    iteration: int
    gen_seed: int
    n_pes: int
    seed: int
    kind: str  # worst divergence kind: hang > error > ok(value)
    engines: tuple[str, ...]  # engines that disagreed with the reference
    source: str
    minimized_source: str
    detail: str = ""

    def meta(self) -> dict:
        return {
            "iteration": self.iteration,
            "gen_seed": self.gen_seed,
            "n_pes": self.n_pes,
            "seed": self.seed,
            "kind": self.kind,
            "engines": list(self.engines),
            "detail": self.detail,
            "original_source": self.source,
        }


@dataclass
class FuzzStats:
    iterations: int = 0
    generated: int = 0
    mutated: int = 0
    lint_discards: int = 0
    gate_discards: int = 0
    divergences: int = 0
    new_coverage_events: int = 0
    features: int = 0
    elapsed_s: float = 0.0
    discard_reasons: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return dict(self.__dict__)


_KIND_RANK = {"hang": 3, "stepout": 2, "error": 1, "ok": 0, "skip": 0}


class Fuzzer:
    def __init__(
        self,
        *,
        seed: int = 0,
        n_pes: int = 4,
        engines: Sequence[str] = DEFAULT_ENGINES,
        executors: Sequence[str] = ("thread",),
        max_steps: int = 200_000,
        barrier_timeout: float = 20.0,
        corpus_dir: Optional[Path] = None,
        config: Optional[GenConfig] = None,
        minimize_checks: int = 150,
        pool_cap: int = 128,
        mutation_rate: float = 0.5,
        seed_pool: Sequence[ast.Program] = (),
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.seed = seed
        self.n_pes = n_pes
        self.engines = tuple(engines)
        self.executors = tuple(executors)
        self.max_steps = max_steps
        self.barrier_timeout = barrier_timeout
        self.corpus_dir = Path(corpus_dir) if corpus_dir else None
        self.config = config or GenConfig()
        self.minimize_checks = minimize_checks
        self.pool_cap = pool_cap
        self.mutation_rate = mutation_rate
        self.rng = random.Random(seed)
        self.coverage = CoverageMap()
        self.pool: list[ast.Program] = list(seed_pool)[:pool_cap]
        self.stats = FuzzStats()
        self.findings: list[Finding] = []
        self._log = log or (lambda _msg: None)

    # -- candidate production ---------------------------------------------

    def next_candidate(self, iteration: int) -> tuple[ast.Program, int]:
        """Deterministically produce candidate #``iteration``."""
        gen_seed = self.seed * 1_000_003 + iteration
        if self.pool and self.rng.random() < self.mutation_rate:
            parent = self.rng.choice(self.pool)
            self.stats.mutated += 1
            return mutate_program(parent, random.Random(gen_seed), self.config), gen_seed
        self.stats.generated += 1
        return generate_program(gen_seed, self.config), gen_seed

    # -- one iteration -----------------------------------------------------

    def step(self, iteration: int) -> Optional[Finding]:
        program, gen_seed = self.next_candidate(iteration)
        try:
            source = format_program(program)
        except Exception:
            return None  # mutant rendered unrenderable; drop it
        result = run_differential(
            source,
            self.n_pes,
            engines=self.engines,
            executors=self.executors,
            seed=self.seed,
            max_steps=self.max_steps,
            barrier_timeout=self.barrier_timeout,
            filename=f"<fuzz:{gen_seed}>",
        )
        self.stats.iterations += 1
        if result.status == "discarded":
            key = result.reason.split(":", 1)[0]
            self.stats.discard_reasons[key] = self.stats.discard_reasons.get(key, 0) + 1
            if result.reason.startswith("lint"):
                self.stats.lint_discards += 1
            else:
                self.stats.gate_discards += 1
            return None
        new = self.coverage.observe(
            candidate_features(program, source, result.opcode_counts))
        if new:
            self.stats.new_coverage_events += 1
            self.pool.append(program)
            if len(self.pool) > self.pool_cap:
                # Evict deterministically: drop the oldest half's largest.
                self.pool.pop(0)
        if result.status != "divergent":
            return None
        return self._handle_divergence(iteration, gen_seed, program, source, result)

    def _handle_divergence(
        self,
        iteration: int,
        gen_seed: int,
        program: ast.Program,
        source: str,
        result: DiffResult,
    ) -> Finding:
        self.stats.divergences += 1
        kinds = [d.outcome.kind for d in result.divergences]
        kind = max(kinds, key=lambda k: _KIND_RANK.get(k, 0))
        if kind == "ok":
            kind = "value"
        engines = tuple(sorted({d.engine for d in result.divergences}))
        match = (frozenset(d.engine for d in result.divergences),
                 frozenset(d.outcome.kind for d in result.divergences))
        self._log(f"divergence at iter {iteration}: {kind} on {', '.join(engines)}")

        def still_divergent(candidate: ast.Program) -> bool:
            return program_is_divergent(
                candidate, self.n_pes, engines=self.engines, seed=self.seed,
                max_steps=self.max_steps, barrier_timeout=self.barrier_timeout,
                match=match,
            )

        minimized = minimize_program(program, still_divergent,
                                     max_checks=self.minimize_checks)
        minimized_source = format_program(minimized)
        finding = Finding(
            iteration=iteration,
            gen_seed=gen_seed,
            n_pes=self.n_pes,
            seed=self.seed,
            kind=kind,
            engines=engines,
            source=source,
            minimized_source=minimized_source,
            detail="; ".join(d.describe() for d in result.divergences[:4]),
        )
        self.findings.append(finding)
        if self.corpus_dir is not None:
            path = save_finding(self.corpus_dir, source=minimized_source,
                                kind=finding.kind,
                                meta={**finding.meta(), "engines": list(self.engines)})
            self._log(f"minimized repro ({program_size(minimized)} nodes) -> {path}")
        return finding

    # -- the loop ----------------------------------------------------------

    def run(
        self,
        *,
        iterations: Optional[int] = None,
        budget_s: Optional[float] = None,
        stop_after: Optional[int] = None,
    ) -> FuzzStats:
        """Fuzz for a fixed iteration count and/or wall-clock budget."""
        if iterations is None and budget_s is None:
            iterations = 100
        start = time.monotonic()
        i = 0
        while True:
            if iterations is not None and i >= iterations:
                break
            if budget_s is not None and time.monotonic() - start >= budget_s:
                break
            self.step(i)
            if stop_after is not None and len(self.findings) >= stop_after:
                break
            i += 1
        self.stats.elapsed_s = time.monotonic() - start
        self.stats.features = len(self.coverage)
        return self.stats
