"""Grammar-based generator and mutator for random SPMD LOLCODE programs.

The generator builds :class:`repro.lang.ast.Program` values directly (no
string templating) and renders them through the formatter, so every
candidate is well-formed by construction.  Programs follow the skeleton
every registry kernel uses::

    declarations  (symmetric + local)
    local init    (compute statements, own-slot symmetric writes)
    HUGZ
    1..N comm rounds   (publish -> HUGZ -> get/put/lock-merge -> HUGZ)
    final VISIBLEs     (every tracked local, so divergence is observable)

Safety rules keep candidates deadlock-free and race-free *by
construction* (the ``lollint`` gate in :mod:`repro.fuzz.diff` is a second
line of defence, not the first):

* ``HUGZ`` and lock statements are only emitted in uniform context —
  never inside ``O RLY?``/``WTF?`` arms, ``TXT`` bodies, or loops other
  than the counted constant-bound loops the generator itself builds.
* Remote puts target the writer's own ``ME`` slot of a ``MAH FRENZ``-sized
  symmetric array (disjoint by construction), or go through the shared
  lock with a commutative merge.
* Remote reads only happen in epochs separated from writes by ``HUGZ``.
* Divisors and modulus operands are positive constants; loop bounds are
  small integer constants, so every program terminates.
* Locals are segregated into int / float / yarn pools so statically
  typed symmetric stores receive the right type.

Randomness inside generated programs (``WHATEVR``) is allowed: every
engine seeds the same per-PE Mersenne Twister, so results stay
deterministic and comparable.  The native ``c`` engine is excluded from
fuzzing (different RNG, C ``%`` semantics on negatives), which is why
generated arithmetic may go negative even under ``MOD``.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field

from ..lang import ast
from ..lang.formatter import format_program

# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass
class GenConfig:
    """Tunable knobs for :func:`generate_program`."""

    max_locals: int = 4
    max_sym_scalars: int = 2
    max_sym_arrays: int = 2
    max_rounds: int = 3
    max_stmts_per_block: int = 3
    max_expr_depth: int = 3
    max_loop_bound: int = 5
    array_sizes: tuple[int, ...] = (3, 4, 6, 8)
    p_float_local: float = 0.5
    p_yarn_local: float = 0.3
    p_random: float = 0.08
    p_function: float = 0.2
    p_lock_round: float = 0.35
    p_local_array: float = 0.4
    mutations_per_child: int = 3


#: Exact-in-binary float constants: sums and products stay bit-identical
#: across engines.
_FLOATS = (0.5, 0.25, 1.5, 2.0, 0.125, 3.0)

_NUM_OPS = ("add", "sub", "mul", "max", "min")
_CMP_OPS = ("eq", "ne", "gt", "lt")
_BOOL_OPS = ("and", "or", "xor")


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


@dataclass
class _Scope:
    """Names the generator has declared, by role."""

    ints: list[str] = field(default_factory=list)  # int-only thread-locals
    floats: list[str] = field(default_factory=list)
    yarns: list[str] = field(default_factory=list)
    local_arrays: list[tuple[str, int]] = field(default_factory=list)
    sym_scalars: list[str] = field(default_factory=list)
    sym_pe_arrays: list[str] = field(default_factory=list)  # size MAH FRENZ
    sym_const_arrays: list[tuple[str, int]] = field(default_factory=list)
    shared: list[str] = field(default_factory=list)  # AN IM SHARIN IT arrays
    funcs: list[tuple[str, int]] = field(default_factory=list)  # (name, arity)
    loop_vars: list[str] = field(default_factory=list)


class _Gen:
    def __init__(self, rng: random.Random, cfg: GenConfig) -> None:
        self.rng = rng
        self.cfg = cfg
        self.scope = _Scope()
        self._counter = 0

    # -- helpers ----------------------------------------------------------

    def fresh(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}{self._counter}"

    def pick(self, seq):
        return self.rng.choice(seq)

    def chance(self, p: float) -> bool:
        return self.rng.random() < p

    # -- expressions ------------------------------------------------------

    def int_lit(self, lo: int = -9, hi: int = 30) -> ast.IntLit:
        return ast.IntLit(self.rng.randint(lo, hi))

    def num_leaf(self, *, ints_only: bool = False) -> ast.Expr:
        choices: list[str] = ["int", "int", "me", "frenz"]
        if self.scope.ints:
            choices += ["local"] * 3
        if self.scope.loop_vars:
            choices += ["loopvar"] * 2
        if self.scope.local_arrays:
            choices.append("larr")
        if self.scope.sym_scalars:
            choices.append("sym")
        if not ints_only:
            if self.scope.floats:
                choices += ["flocal"] * 2
            choices.append("float")
            if self.chance(self.cfg.p_random):
                choices.append("rand")
        kind = self.pick(choices)
        if kind == "int":
            return self.int_lit()
        if kind == "float":
            return ast.FloatLit(self.pick(_FLOATS))
        if kind == "me":
            return ast.MeExpr()
        if kind == "frenz":
            return ast.FrenzExpr()
        if kind == "local":
            return ast.VarRef(self.pick(self.scope.ints))
        if kind == "flocal":
            return ast.VarRef(self.pick(self.scope.floats))
        if kind == "loopvar":
            return ast.VarRef(self.pick(self.scope.loop_vars))
        if kind == "larr":
            name, size = self.pick(self.scope.local_arrays)
            return ast.Index(ast.VarRef(name), self.safe_index(size))
        if kind == "sym":
            # Unqualified symmetric read outside TXT == own copy.
            return ast.VarRef(self.pick(self.scope.sym_scalars))
        if kind == "rand":
            return ast.RandomExpr("int")
        raise AssertionError(kind)

    def safe_index(self, size: int) -> ast.Expr:
        """An index expression guaranteed in ``[0, size)``."""
        kind = self.pick(["lit", "lit", "mod", "loopmod"])
        if kind == "lit" or (kind == "loopmod" and not self.scope.loop_vars):
            return ast.IntLit(self.rng.randrange(size))
        inner: ast.Expr
        if kind == "loopmod":
            inner = ast.VarRef(self.pick(self.scope.loop_vars))
        else:
            inner = ast.BinOp("add", ast.MeExpr(), self.int_lit(0, 12))
        return ast.BinOp("mod", inner, ast.IntLit(size))

    def num_expr(self, depth: int = 0, *, ints_only: bool = False) -> ast.Expr:
        if depth >= self.cfg.max_expr_depth or self.chance(0.35):
            return self.num_leaf(ints_only=ints_only)
        kind = self.pick(["bin"] * 6 + ["divmod", "square", "cast", "call"])
        if kind == "call" and self.scope.funcs:
            name, arity = self.pick(self.scope.funcs)
            args = [self.num_expr(depth + 1, ints_only=True) for _ in range(arity)]
            return ast.FuncCall(name, args)
        if kind == "square":
            return ast.UnaryOp("square", self.num_leaf(ints_only=ints_only))
        if kind == "cast":
            return ast.Cast(self.num_expr(depth + 1), "NUMBR")
        if kind == "divmod":
            op = self.pick(["div", "mod", "mod"])
            divisor = ast.IntLit(self.rng.randint(2, 9))
            if op == "div" and not ints_only:
                return ast.BinOp(op, self.num_expr(depth + 1), divisor)
            # QUOSHUNT of two NUMBRs floor-divides; keep operands integral.
            return ast.BinOp(op, self.num_expr(depth + 1, ints_only=True), divisor)
        lhs = self.num_expr(depth + 1, ints_only=ints_only)
        rhs = self.num_expr(depth + 1, ints_only=ints_only)
        return ast.BinOp(self.pick(_NUM_OPS), lhs, rhs)

    def troof_expr(self, depth: int = 0) -> ast.Expr:
        if depth >= 2 or self.chance(0.6):
            return ast.BinOp(
                self.pick(_CMP_OPS), self.num_expr(depth + 1), self.num_expr(depth + 1)
            )
        if self.chance(0.3):
            return ast.UnaryOp("not", self.troof_expr(depth + 1))
        return ast.BinOp(
            self.pick(_BOOL_OPS), self.troof_expr(depth + 1), self.troof_expr(depth + 1)
        )

    # -- local (barrier-free) statements ----------------------------------

    def local_stmts(self, depth: int = 0) -> list[ast.Stmt]:
        """One logical statement; If/Switch come paired with their IT setter."""
        kinds = ["assign"] * 4 + ["visible"] * 2
        if self.scope.local_arrays:
            kinds += ["arr_write"] * 2
        if self.scope.yarns:
            kinds.append("smoosh")
        if depth < 2:
            kinds += ["if", "loop", "switch"]
        kind = self.pick(kinds)
        if kind == "assign":
            if self.scope.floats and self.chance(0.4):
                return [ast.Assign(ast.VarRef(self.pick(self.scope.floats)),
                                   self.num_expr())]
            return [ast.Assign(ast.VarRef(self.pick(self.scope.ints)),
                               self.num_expr(ints_only=True))]
        if kind == "arr_write":
            name, size = self.pick(self.scope.local_arrays)
            return [ast.Assign(ast.Index(ast.VarRef(name), self.safe_index(size)),
                               self.num_expr(ints_only=True))]
        if kind == "visible":
            return [self.visible_stmt()]
        if kind == "smoosh":
            parts: list[ast.Expr] = [self.num_expr(2)]
            parts.append(ast.StringLit([self.pick(["/", ":", "-"])]))
            parts.append(self.num_expr(2))
            return [ast.Assign(ast.VarRef(self.pick(self.scope.yarns)),
                               ast.NaryOp("smoosh", parts))]
        if kind == "if":
            return self.if_stmts(depth)
        if kind == "switch":
            return self.switch_stmts(depth)
        if kind == "loop":
            return [self.counted_loop(depth)]
        raise AssertionError(kind)

    def block(self, depth: int, n_min: int = 1, n_max: int | None = None) -> list[ast.Stmt]:
        n_max = n_max or self.cfg.max_stmts_per_block
        out: list[ast.Stmt] = []
        for _ in range(self.rng.randint(n_min, n_max)):
            out.extend(self.local_stmts(depth + 1))
        return out

    def if_stmts(self, depth: int) -> list[ast.Stmt]:
        # O RLY? tests IT, so pair the If with a bare TROOF expression.
        mebbe = []
        if self.chance(0.3):
            mebbe.append((self.troof_expr(), self.block(depth)))
        no_wai = self.block(depth) if self.chance(0.6) else []
        return [ast.ExprStmt(self.troof_expr()),
                ast.If(self.block(depth), mebbe, no_wai)]

    def switch_stmts(self, depth: int) -> list[ast.Stmt]:
        n_cases = self.rng.randint(1, 3)
        cases = []
        for v in range(n_cases):
            body = self.block(depth)
            if self.chance(0.7):
                body.append(ast.Gtfo())
            cases.append((ast.IntLit(v), body))
        default = self.block(depth) if self.chance(0.5) else []
        # WTF? compares IT; keep the scrutinee a small non-negative int so
        # cases are actually reachable.
        scrutinee = ast.BinOp("mod", ast.UnaryOp("square", self.num_leaf(ints_only=True)),
                              ast.IntLit(n_cases + 1))
        return [ast.ExprStmt(scrutinee), ast.Switch(cases, default)]

    def counted_loop(self, depth: int, body: list[ast.Stmt] | None = None,
                     bound: ast.Expr | None = None) -> ast.Loop:
        var = self.fresh("i")
        label = self.fresh("lp")
        self.scope.loop_vars.append(var)
        if body is None:
            body = self.block(depth)
        self.scope.loop_vars.remove(var)
        if bound is None:
            bound = ast.IntLit(self.rng.randint(1, self.cfg.max_loop_bound))
        return ast.Loop(label, "UPPIN", var, "TIL",
                        ast.BinOp("eq", ast.VarRef(var), bound), body)

    def visible_stmt(self) -> ast.Visible:
        args: list[ast.Expr] = []
        if self.chance(0.5):
            args.append(ast.StringLit([self.pick(["pe ", "v ", "x=", "out "])]))
        args.append(self.num_expr())
        if self.chance(0.3):
            args.append(self.num_expr())
        return ast.Visible(args)

    # -- declarations ------------------------------------------------------

    def decls(self) -> list[ast.Stmt]:
        out: list[ast.Stmt] = []
        for _ in range(self.rng.randint(1, self.cfg.max_sym_scalars)):
            name = self.fresh("s")
            self.scope.sym_scalars.append(name)
            out.append(ast.VarDecl("WE", name, static_type="NUMBR", srsly=True,
                                   init=ast.IntLit(0)))
        for k in range(self.rng.randint(1, self.cfg.max_sym_arrays)):
            name = self.fresh("a")
            if k == 0:
                # Always at least one MAH FRENZ-sized array: the disjoint
                # put round needs per-PE slots.
                self.scope.sym_pe_arrays.append(name)
                size: ast.Expr = ast.FrenzExpr()
            else:
                n = self.pick(self.cfg.array_sizes)
                self.scope.sym_const_arrays.append((name, n))
                size = ast.IntLit(n)
            out.append(ast.VarDecl("WE", name, static_type="NUMBR", srsly=True,
                                   is_array=True, size=size))
        if self.chance(self.cfg.p_lock_round):
            name = self.fresh("h")
            self.scope.shared.append(name)
            out.append(ast.VarDecl("WE", name, static_type="NUMBR", srsly=True,
                                   is_array=True, size=ast.IntLit(4),
                                   shared_lock=True))
        for _ in range(self.rng.randint(2, self.cfg.max_locals)):
            name = self.fresh("v")
            self.scope.ints.append(name)
            out.append(ast.VarDecl("I", name, init=self.int_lit(0, 9)))
        if self.chance(self.cfg.p_float_local):
            name = self.fresh("f")
            self.scope.floats.append(name)
            out.append(ast.VarDecl("I", name, init=ast.FloatLit(self.pick(_FLOATS))))
        if self.chance(self.cfg.p_yarn_local):
            name = self.fresh("y")
            self.scope.yarns.append(name)
            out.append(ast.VarDecl("I", name, init=ast.StringLit([])))
        if self.chance(self.cfg.p_local_array):
            name = self.fresh("t")
            n = self.pick(self.cfg.array_sizes)
            self.scope.local_arrays.append((name, n))
            out.append(ast.VarDecl("I", name, static_type="NUMBR", srsly=True,
                                   is_array=True, size=ast.IntLit(n)))
        return out

    def func_def(self) -> ast.FuncDef:
        name = self.fresh("fn")
        arity = self.rng.randint(1, 2)
        params = [self.fresh("p") for _ in range(arity)]
        # Pure expression function over its params: no decls, no comm.
        expr: ast.Expr = ast.VarRef(params[0])
        for p in params[1:]:
            expr = ast.BinOp(self.pick(_NUM_OPS), expr, ast.VarRef(p))
        expr = ast.BinOp(self.pick(_NUM_OPS), expr, self.int_lit(1, 9))
        self.scope.funcs.append((name, arity))
        return ast.FuncDef(name, params, [ast.Return(expr)])

    # -- communication rounds ---------------------------------------------

    def target_pe(self) -> ast.Expr:
        """A PE-number expression guaranteed in ``[0, MAH FRENZ)``."""
        kind = self.pick(["zero", "next", "prev", "mod"])
        if kind == "zero":
            return ast.IntLit(0)
        if kind == "next":
            return ast.BinOp("mod",
                             ast.BinOp("add", ast.MeExpr(), ast.IntLit(1)),
                             ast.FrenzExpr())
        if kind == "prev":
            return ast.BinOp("mod",
                             ast.BinOp("add",
                                       ast.BinOp("add", ast.MeExpr(), ast.FrenzExpr()),
                                       ast.IntLit(-1)),
                             ast.FrenzExpr())
        return ast.BinOp("mod",
                         ast.BinOp("add", ast.MeExpr(), self.int_lit(0, 7)),
                         ast.FrenzExpr())

    def round_get(self) -> list[ast.Stmt]:
        """Publish own value, HUGZ, read a neighbour's copy."""
        if not self.scope.sym_scalars:
            return []
        src = self.pick(self.scope.sym_scalars)
        dst = self.pick(self.scope.ints)
        return [
            ast.Assign(ast.VarRef(src), self.num_expr(ints_only=True)),
            ast.Hugz(),
            ast.TxtStmt(self.target_pe(),
                        [ast.Assign(ast.VarRef(dst), ast.VarRef(src, "UR"))]),
            ast.Hugz(),
            ast.Visible([ast.StringLit(["got "]), ast.VarRef(dst)]),
        ]

    def round_array_get(self) -> list[ast.Stmt]:
        """Publish into const-array slots, HUGZ, gather a remote PE's slots."""
        if not self.scope.sym_const_arrays:
            return []
        name, size = self.pick(self.scope.sym_const_arrays)
        out: list[ast.Stmt] = []
        for _ in range(self.rng.randint(1, 2)):
            out.append(ast.Assign(ast.Index(ast.VarRef(name), self.safe_index(size)),
                                  self.num_expr(ints_only=True)))
        out.append(ast.Hugz())
        acc = self.pick(self.scope.ints)
        jv = self.fresh("j")
        gather = ast.Loop(
            self.fresh("lp"), "UPPIN", jv, "TIL",
            ast.BinOp("eq", ast.VarRef(jv), ast.IntLit(size)),
            [ast.Assign(ast.VarRef(acc),
                        ast.BinOp("add", ast.VarRef(acc),
                                  ast.Index(ast.VarRef(name, "UR"), ast.VarRef(jv))))],
        )
        out.append(ast.TxtStmt(self.target_pe(), [gather], block=True))
        out.append(ast.Hugz())
        out.append(ast.Visible([ast.StringLit(["sum "]), ast.VarRef(acc)]))
        return out

    def round_put(self) -> list[ast.Stmt]:
        """Disjoint puts: every PE writes its own ME slot of a remote array."""
        if not self.scope.sym_pe_arrays:
            return []
        arr = self.pick(self.scope.sym_pe_arrays)
        tmp = self.pick(self.scope.ints)
        acc = self.pick(self.scope.ints)
        kv = self.fresh("k")
        reduce_loop = ast.Loop(
            self.fresh("lp"), "UPPIN", kv, "TIL",
            ast.BinOp("eq", ast.VarRef(kv), ast.FrenzExpr()),
            [ast.Assign(ast.VarRef(acc),
                        ast.BinOp("add", ast.VarRef(acc),
                                  ast.Index(ast.VarRef(arr), ast.VarRef(kv))))],
        )
        return [
            ast.Assign(ast.VarRef(tmp), self.num_expr(ints_only=True)),
            ast.Hugz(),
            # Remote value exprs stay simple: put a precomputed local.
            ast.TxtStmt(self.target_pe(),
                        [ast.Assign(ast.Index(ast.VarRef(arr, "UR"), ast.MeExpr()),
                                    ast.VarRef(tmp))]),
            ast.Hugz(),
            ast.Assign(ast.VarRef(acc), ast.IntLit(0)),
            reduce_loop,
            ast.Visible([ast.StringLit(["slots "]), ast.VarRef(acc)]),
        ]

    def round_lock(self) -> list[ast.Stmt]:
        """Commutative merge into PE 0's shared array under the lock."""
        if not self.scope.shared:
            return []
        h = self.pick(self.scope.shared)
        contrib = self.pick(self.scope.ints)
        idx = ast.IntLit(self.rng.randrange(4))
        slot = ast.Index(ast.VarRef(h, "UR"), idx)
        return [
            ast.Assign(ast.VarRef(contrib), self.num_expr(ints_only=True)),
            ast.LockStmt("lock", ast.VarRef(h)),
            ast.TxtStmt(ast.IntLit(0),
                        [ast.Assign(slot, ast.BinOp("add", copy.deepcopy(slot),
                                                    ast.VarRef(contrib)))],
                        block=True),
            ast.LockStmt("unlock", ast.VarRef(h)),
            ast.Hugz(),
            ast.ExprStmt(ast.BinOp("eq", ast.MeExpr(), ast.IntLit(0))),
            ast.If([ast.Visible([ast.StringLit(["merged "]),
                                 ast.Index(ast.VarRef(h), copy.deepcopy(idx))])],
                   [], []),
            # Close the read epoch: without this, the *next* round's
            # locked merges into the same slot race PE 0's unlocked
            # VISIBLE above (found by the fuzzer fuzzing itself).
            ast.Hugz(),
        ]

    # -- whole programs ----------------------------------------------------

    def program(self) -> ast.Program:
        body: list[ast.Stmt] = []
        if self.chance(self.cfg.p_function):
            body.append(self.func_def())
        body.extend(self.decls())
        for _ in range(self.rng.randint(1, 3)):
            body.extend(self.local_stmts())
        body.append(ast.Hugz())
        rounds = [self.round_get, self.round_array_get, self.round_put, self.round_lock]
        for _ in range(self.rng.randint(1, self.cfg.max_rounds)):
            body.extend(self.pick(rounds)())
            for _ in range(self.rng.randint(0, 2)):
                body.extend(self.local_stmts())
        # Final summary line: every local becomes observable output, so a
        # miscompiled intermediate can't hide.
        tail: list[ast.Expr] = [ast.StringLit(["end pe "]), ast.MeExpr()]
        for name in (*self.scope.ints, *self.scope.floats, *self.scope.yarns):
            tail.extend([ast.StringLit([" "]), ast.VarRef(name)])
        body.append(ast.Visible(tail))
        return ast.Program("1.2", body)


def generate_program(seed: int, config: GenConfig | None = None) -> ast.Program:
    """Generate a deterministic random SPMD program for ``seed``."""
    gen = _Gen(random.Random(seed), config or GenConfig())
    return gen.program()


def generate_source(seed: int, config: GenConfig | None = None) -> str:
    """Like :func:`generate_program`, rendered through the formatter."""
    return format_program(generate_program(seed, config))


# ---------------------------------------------------------------------------
# Mutation
# ---------------------------------------------------------------------------

_SAFE_DUP = (ast.Assign, ast.Visible, ast.ExprStmt)


def _expr_roots_of(stmt: ast.Stmt) -> list[ast.Expr]:
    if isinstance(stmt, ast.Assign):
        return [stmt.target, stmt.value]
    if isinstance(stmt, ast.ExprStmt):
        return [stmt.expr]
    if isinstance(stmt, ast.Visible):
        return list(stmt.args)
    if isinstance(stmt, ast.VarDecl) and stmt.init is not None:
        return [stmt.init]
    if isinstance(stmt, ast.Return):
        return [stmt.expr]
    if isinstance(stmt, ast.Loop) and stmt.cond is not None:
        return [stmt.cond]
    if isinstance(stmt, ast.TxtStmt):
        return [stmt.pe]
    return []


def _walk_exprs(expr: ast.Expr):
    yield expr
    if isinstance(expr, ast.BinOp):
        yield from _walk_exprs(expr.lhs)
        yield from _walk_exprs(expr.rhs)
    elif isinstance(expr, ast.UnaryOp):
        yield from _walk_exprs(expr.operand)
    elif isinstance(expr, ast.NaryOp):
        for op in expr.operands:
            yield from _walk_exprs(op)
    elif isinstance(expr, ast.FuncCall):
        for op in expr.args:
            yield from _walk_exprs(op)
    elif isinstance(expr, ast.Cast):
        yield from _walk_exprs(expr.expr)
    elif isinstance(expr, ast.Index):
        yield from _walk_exprs(expr.base)
        yield from _walk_exprs(expr.index)
    elif isinstance(expr, ast.SrsRef):
        yield from _walk_exprs(expr.expr)


def _literal_sites(program: ast.Program) -> list[ast.IntLit]:
    """Int literals safe to perturb: not loop bounds, sizes, or PE targets."""
    skip: set[int] = set()
    for stmt in ast.walk_statements(program.body):
        frozen: list[ast.Expr] = []
        if isinstance(stmt, ast.Loop) and stmt.cond is not None:
            frozen.append(stmt.cond)
        if isinstance(stmt, ast.VarDecl) and stmt.size is not None:
            frozen.append(stmt.size)
        if isinstance(stmt, ast.TxtStmt):
            frozen.append(stmt.pe)
        for root in frozen:
            skip.update(id(e) for e in _walk_exprs(root))
    sites: list[ast.IntLit] = []
    for stmt in ast.walk_statements(program.body):
        for root in _expr_roots_of(stmt):
            for node in _walk_exprs(root):
                if isinstance(node, ast.IntLit) and id(node) not in skip:
                    sites.append(node)
    return sites


_BINOP_CLASSES = (set(_NUM_OPS), set(_CMP_OPS), set(_BOOL_OPS))


def mutate_program(program: ast.Program, rng: random.Random,
                   config: GenConfig | None = None) -> ast.Program:
    """Return a mutated deep copy of ``program``.

    Mutations preserve the barrier structure: literals are perturbed
    (never loop bounds, array sizes, or TXT targets), binary operators
    are swapped within their arity class, and simple leaf statements are
    duplicated or deleted at top level only.
    """
    cfg = config or GenConfig()
    mutant = copy.deepcopy(program)
    for _ in range(rng.randint(1, cfg.mutations_per_child)):
        kind = rng.choice(["lit", "lit", "op", "dup", "del"])
        if kind == "lit":
            sites = _literal_sites(mutant)
            if sites:
                lit = rng.choice(sites)
                lit.value = max(-9, min(64, lit.value + rng.choice([-2, -1, 1, 2, 7])))
        elif kind == "op":
            ops = [e for stmt in ast.walk_statements(mutant.body)
                   if not isinstance(stmt, (ast.Loop, ast.TxtStmt))
                   for root in _expr_roots_of(stmt)
                   for e in _walk_exprs(root) if isinstance(e, ast.BinOp)]
            if ops:
                node = rng.choice(ops)
                for cls in _BINOP_CLASSES:
                    if node.op in cls:
                        others = sorted(cls - {node.op})
                        if others:
                            node.op = rng.choice(others)
                        break
        elif kind == "dup":
            idxs = [i for i, s in enumerate(mutant.body) if isinstance(s, _SAFE_DUP)]
            if idxs:
                i = rng.choice(idxs)
                mutant.body.insert(i, copy.deepcopy(mutant.body[i]))
        elif kind == "del":
            idxs = [i for i, s in enumerate(mutant.body)
                    if isinstance(s, (ast.Visible, ast.ExprStmt))]
            if idxs:
                del mutant.body[rng.choice(idxs)]
    return mutant


def program_size(program: ast.Program) -> int:
    """Statement + expression node count — the minimizer's cost metric."""
    n = 0
    for stmt in ast.walk_statements(program.body):
        n += 1
        for root in _expr_roots_of(stmt):
            n += sum(1 for _ in _walk_exprs(root))
    return n
