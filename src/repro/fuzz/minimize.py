"""Greedy delta-debugging of divergent programs.

Classic ddmin adapted to tree-shaped programs: instead of bisecting a
token string, the minimizer works on the AST, which keeps every
intermediate candidate well-formed (it renders through the formatter and
re-runs the differential pipeline as its oracle).  Three passes repeat to
a fixpoint, bounded by a check budget:

1. **Statement deletion** — for every block (top level, loop bodies, If
   arms, TXT bodies, function bodies), try dropping chunks of
   half-the-block, then quarters, down to single statements.
2. **Structural unwrapping** — replace a Loop/If/Switch with the body of
   one of its arms, hoisting the children into the parent block.
3. **Expression simplification** — replace assignment/print/init
   expressions with ``1``.

Deleting a declaration whose uses survive just turns the candidate into
a name-error program, which changes the divergence signature and is
rejected by the oracle — so no use-def bookkeeping is needed; the oracle
is the bookkeeping.
"""

from __future__ import annotations

import copy
from typing import Callable

from ..lang import ast
from .grammar import program_size

Predicate = Callable[[ast.Program], bool]


class _Budget:
    def __init__(self, n: int) -> None:
        self.left = n

    def spend(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        return True


def _blocks_of(program: ast.Program) -> list[list[ast.Stmt]]:
    out = [program.body]
    for stmt in ast.walk_statements(program.body):
        out.extend(ast.child_statements(stmt))
    return out


def _try(candidate: ast.Program, predicate: Predicate, budget: _Budget) -> bool:
    return budget.spend() and predicate(candidate)


def _delete_pass(program: ast.Program, predicate: Predicate, budget: _Budget) -> tuple[ast.Program, bool]:
    changed = False
    progress = True
    while progress and budget.left > 0:
        progress = False
        for block in _blocks_of(program):
            n = len(block)
            if n == 0:
                continue
            chunk = max(1, n // 2)
            while chunk >= 1 and budget.left > 0:
                start = 0
                while start < len(block) and budget.left > 0:
                    candidate = copy.deepcopy(program)
                    # Re-locate the same block in the copy by position.
                    cand_block = _matching_block(candidate, program, block)
                    if cand_block is None:
                        break
                    del cand_block[start:start + chunk]
                    if _try(candidate, predicate, budget):
                        del block[start:start + chunk]
                        changed = progress = True
                        # stay at same start: the next chunk shifted in
                    else:
                        start += chunk
                chunk //= 2
    return program, changed


def _matching_block(candidate: ast.Program, original: ast.Program,
                    block: list[ast.Stmt]):
    """Find the block in ``candidate`` at the same structural position as
    ``block`` is in ``original`` (blocks are matched by enumeration order)."""
    orig_blocks = _blocks_of(original)
    cand_blocks = _blocks_of(candidate)
    for i, b in enumerate(orig_blocks):
        if b is block:
            return cand_blocks[i] if i < len(cand_blocks) else None
    return None


def _unwrap_pass(program: ast.Program, predicate: Predicate, budget: _Budget) -> tuple[ast.Program, bool]:
    changed = False
    progress = True
    while progress and budget.left > 0:
        progress = False
        for block in _blocks_of(program):
            for i, stmt in enumerate(block):
                arms: list[list[ast.Stmt]] = []
                if isinstance(stmt, ast.Loop):
                    arms = [stmt.body]
                elif isinstance(stmt, ast.If):
                    arms = [stmt.ya_rly, stmt.no_wai]
                elif isinstance(stmt, ast.Switch):
                    arms = [*[b for _, b in stmt.cases], stmt.default]
                for arm in arms:
                    hoisted = [s for s in arm if not isinstance(s, ast.Gtfo)]
                    candidate = copy.deepcopy(program)
                    cand_block = _matching_block(candidate, program, block)
                    if cand_block is None:
                        continue
                    cand_block[i:i + 1] = copy.deepcopy(hoisted)
                    if _try(candidate, predicate, budget):
                        block[i:i + 1] = hoisted
                        changed = progress = True
                        break
                if progress:
                    break
            if progress:
                break
    return program, changed


def _simplify_pass(program: ast.Program, predicate: Predicate, budget: _Budget) -> tuple[ast.Program, bool]:
    changed = False
    one = ast.IntLit(1)
    for stmt in list(ast.walk_statements(program.body)):
        slots: list[tuple[object, str, int | None]] = []
        if isinstance(stmt, ast.Assign) and not isinstance(stmt.value, ast.IntLit):
            slots.append((stmt, "value", None))
        elif isinstance(stmt, ast.ExprStmt) and not isinstance(stmt.expr, ast.IntLit):
            slots.append((stmt, "expr", None))
        elif isinstance(stmt, ast.Visible):
            for j, arg in enumerate(stmt.args):
                if not isinstance(arg, (ast.IntLit, ast.StringLit)):
                    slots.append((stmt, "args", j))
        elif isinstance(stmt, ast.VarDecl) and stmt.init is not None \
                and not isinstance(stmt.init, (ast.IntLit, ast.StringLit, ast.FloatLit)):
            slots.append((stmt, "init", None))
        for holder, name, j in slots:
            if budget.left <= 0:
                return program, changed
            old = getattr(holder, name) if j is None else getattr(holder, name)[j]
            if j is None:
                setattr(holder, name, copy.deepcopy(one))
            else:
                getattr(holder, name)[j] = copy.deepcopy(one)
            if _try(program, predicate, budget):
                changed = True
            else:
                if j is None:
                    setattr(holder, name, old)
                else:
                    getattr(holder, name)[j] = old
    return program, changed


def minimize_program(
    program: ast.Program,
    predicate: Predicate,
    *,
    max_checks: int = 250,
) -> ast.Program:
    """Shrink ``program`` while ``predicate`` (still-divergent) holds.

    ``predicate`` receives a candidate :class:`~repro.lang.ast.Program`
    and must return ``True`` iff the bug still reproduces.  The input
    program must satisfy the predicate; the result always does.
    """
    work = copy.deepcopy(program)
    budget = _Budget(max_checks)
    rounds = 0
    while budget.left > 0 and rounds < 8:
        rounds += 1
        work, d1 = _delete_pass(work, predicate, budget)
        work, d2 = _unwrap_pass(work, predicate, budget)
        work, d3 = _simplify_pass(work, predicate, budget)
        if not (d1 or d2 or d3):
            break
    return work


__all__ = ["minimize_program", "program_size"]
