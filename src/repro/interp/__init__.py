"""SPMD interpreters for extended LOLCODE.

Two execution engines share the operator semantics of
:mod:`repro.interp.values` and are differentially tested against each
other (and against the compiled-Python backend):

* ``"closure"`` — the default: a one-shot compile pass
  (:mod:`repro.interp.closures`) turns the AST into nested closures with
  slot-indexed frames; no per-operation dispatch remains on the hot path;
* ``"ast"`` — the reference tree-walker
  (:mod:`repro.interp.interpreter`);
* ``"vm"`` — the register-bytecode VM (:mod:`repro.vm`): AST compiled
  once to flat bytecode with superinstructions, run by a dispatch loop
  with inline caches.  The fastest pure-Python engine, and (with
  ``ast``) one of the two engines supporting ``max_steps`` execution
  limits — the VM counts statement steps natively in its dispatch loop.

(The other registered engines are not interpreters at all:
``"compiled"`` is the LOLCODE -> Python source-to-source backend in
:mod:`repro.compiler.py_backend`, sharing the same operator kernels and
the same differential test matrix; ``"c"`` is the paper's full ``lcc``
pipeline — LOLCODE -> C + OpenSHMEM, built by the system C compiler
against the bundled single-node SHMEM shim and run as real OS processes
by :mod:`repro.compiler.native`.  Engines needing host tooling can
degrade gracefully: ``run_lolcode(..., fallback_engine="closure")``
reruns on an interpreter when the native toolchain is missing or broken
and marks the result ``degraded``.)

:func:`compile_closures_cached` is the process-wide LRU compiled-program
cache, keyed by source text: an SPMD launch compiles once and every PE
shares the same :class:`~repro.interp.closures.CompiledProgram` (the
compiled form is context-free; each PE runs it against its own
:class:`~repro.shmem.api.ShmemContext`).
"""

from functools import lru_cache

from ..singleflight import single_flight
from .closures import ClosureCompiler, CompiledProgram, compile_program
from .env import Binding, Env, UNDECLARED
from .interpreter import KNOWN_LIBRARIES, Interpreter, interpret, run_serial
from .values import (
    BINOP_FUNCS,
    FLOP_COST,
    NARYOP_FUNCS,
    UNOP_FUNCS,
    binop,
    equals,
    naryop,
    unop,
)

#: Execution engines accepted by ``run_lolcode`` / the CLIs.  The first
#: two live in this package; ``"compiled"`` is the source-to-source
#: Python backend (:mod:`repro.compiler.py_backend`) dispatched per PE
#: by the launcher through :func:`repro.compiler.compile_python_cached`;
#: ``"c"`` is the native path (:mod:`repro.compiler.native`): the C
#: backend's output built with the system compiler and launched as
#: ``n_pes`` OS processes over the bundled SHMEM shim.
ENGINES = ("closure", "ast", "vm", "compiled", "c")


@single_flight
@lru_cache(maxsize=64)
def compile_closures_cached(
    source: str, filename: str = "<string>", count_flops: bool = False
) -> CompiledProgram:
    """Parse + closure-compile ``source``, memoized on the source text.

    ``count_flops`` is part of the key because FLOP accounting is baked
    into the compiled closures (zero cost when tracing is off).

    Safe under concurrent callers: the :func:`~repro.singleflight.single_flight`
    guard serialises same-key compiles, so N simultaneous submissions of
    one source (the execution service's steady state) compile it once.
    """
    from ..lang.parser import parse_cached

    return compile_program(
        parse_cached(source, filename), count_flops=count_flops
    )


@single_flight
@lru_cache(maxsize=64)
def compile_vm_cached(
    source: str,
    filename: str = "<string>",
    count_flops: bool = False,
    count_steps: bool = False,
):
    """Parse + bytecode-compile ``source`` for the VM engine, memoized.

    ``count_flops`` and ``count_steps`` are part of the key because both
    FLOP accounting and statement-step counting are compiled into the
    bytecode (and step counting disables loop vectorization, which would
    otherwise batch many statements per dispatch).
    """
    from ..lang.parser import parse_cached
    from ..vm.compile import compile_program_vm

    return compile_program_vm(
        parse_cached(source, filename),
        count_flops=count_flops,
        count_steps=count_steps,
        vectorize=not count_steps,
    )


def _compile_cache_collector() -> None:
    """Publish ``cache_info()`` of every compile front-end as gauges
    (collector-derived point-in-time reads, hence gauges not counters),
    so the Prometheus ``metrics`` op shows cache efficiency without a
    second hand-assembled stats path."""
    from .. import obs as _obs
    from ..compiler.py_backend import compile_python_cached
    from ..lang.parser import parse_cached

    reg = _obs.get_registry()
    hits = reg.gauge(
        "lol_compile_cache_hits", "LRU hits per compile front-end"
    )
    misses = reg.gauge(
        "lol_compile_cache_misses", "LRU misses per compile front-end"
    )
    size = reg.gauge(
        "lol_compile_cache_entries", "Live LRU entries per compile front-end"
    )
    caches = {
        "parse": parse_cached,
        "closure": compile_closures_cached,
        "vm": compile_vm_cached,
        "py": compile_python_cached,
    }
    for name, fn in caches.items():
        info = fn.cache_info()
        hits.set(info.hits, cache=name)
        misses.set(info.misses, cache=name)
        size.set(info.currsize, cache=name)


def _register_obs_collector() -> None:
    from .. import obs as _obs

    _obs.get_registry().register_collector(_compile_cache_collector)


_register_obs_collector()


__all__ = [
    "Binding",
    "Env",
    "UNDECLARED",
    "KNOWN_LIBRARIES",
    "Interpreter",
    "interpret",
    "run_serial",
    "ClosureCompiler",
    "CompiledProgram",
    "compile_program",
    "compile_closures_cached",
    "compile_vm_cached",
    "ENGINES",
    "FLOP_COST",
    "BINOP_FUNCS",
    "UNOP_FUNCS",
    "NARYOP_FUNCS",
    "binop",
    "equals",
    "naryop",
    "unop",
]
