"""Tree-walking SPMD interpreter for extended LOLCODE."""

from .env import Binding, Env
from .interpreter import KNOWN_LIBRARIES, Interpreter, interpret, run_serial
from .values import FLOP_COST, binop, equals, naryop, unop

__all__ = [
    "Binding",
    "Env",
    "KNOWN_LIBRARIES",
    "Interpreter",
    "interpret",
    "run_serial",
    "FLOP_COST",
    "binop",
    "equals",
    "naryop",
    "unop",
]
