"""Closure-compilation execution engine.

The tree-walking :class:`~repro.interp.interpreter.Interpreter` pays AST
``type()`` dispatch, dict-chain ``Env`` lookups, and string-keyed operator
selection on *every* operation of every PE.  This module removes all three
from the hot path by translating the AST **once per program** into a tree
of Python closures:

* every statement/expression node becomes one zero-dispatch callable
  ``fn(rt, frame)`` — the work each node does is decided at compile time,
  not re-discovered per execution;
* names are resolved to integer frame slots by the
  :mod:`repro.lang.resolve` pre-pass — a local read is ``frame[slot]``
  instead of a dict-chain walk (symmetric / ``UR``-addressed names keep
  their :class:`~repro.shmem.api.ShmemContext` delegation, so all
  parallel semantics are byte-identical);
* operators are resolved through the per-op function tables of
  :mod:`repro.interp.values` at compile time;
* FLOP/op tracing is baked in at compile time: with tracing off the
  compiled code contains **no** accounting instructions at all.

The compiled form is context-free: one :class:`CompiledProgram` is shared
by every PE of an SPMD run (see the LRU cache in
:mod:`repro.interp.__init__`), each PE executing it against its own
:class:`_Runtime`.  Semantics are differentially tested against the
tree-walker and the compiled-Python backend on all paper examples
(``tests/test_engine_differential.py``).

Known, documented divergences from the tree-walker:

* reading a symmetric symbol before its ``WE HAS A`` has *executed* (but
  after it is lexically visible) raises ``LolParallelError`` from the
  heap instead of ``LolNameError``;
* a re-declaration that *changes* a name's static type or array-ness
  allocates a fresh slot, so a function compiled against the final root
  scope reads the post-redeclaration storage (same-shape redeclarations
  reuse the slot and behave identically to the tree-walker);
* loop-body *scalar* declarations are pre-bound with a runtime fallback
  (see :meth:`ClosureCompiler._prescan_loop_decls`), reproducing the
  tree-walker's persistent per-loop environment — iteration N's reads
  and re-evaluated initializers see iteration N-1's binding.  *Array*
  declarations in loop bodies are not pre-bound: a read of the name that
  textually precedes the array declaration stays bound to the enclosing
  variable on every iteration;
* a loop body that redeclares its own ``UPPIN YR`` counter *terminates*
  here (the condition stays bound to the counter's slot, which the
  increment keeps updating), where the tree-walker's redeclaration
  detaches the counter binding and spins forever — the divergence is
  kept deliberately, since reproducing a hang helps no one;
* ``max_steps`` is not supported — the launcher falls back to the
  tree-walker when a step limit is requested.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..lang import ast
from ..lang.errors import (
    LolNameError,
    LolParallelError,
    LolRuntimeError,
    LolTypeError,
    SourcePos,
)
from ..lang.resolve import (
    GLOBAL,
    LOCAL,
    MISSING,
    SYMMETRIC,
    FrameLayout,
    ScopeStack,
    VarInfo,
)
from ..lang.types import (
    LolType,
    cast as cast_value,
    coerce_static,
    default_value,
    format_yarn,
    parse_type,
    to_array_size,
    to_numbr,
    to_troof,
)
from ..shmem.api import ShmemContext
from ..shmem.heap import ArrayCell
from .env import UNDECLARED, new_frame
from .interpreter import (
    KNOWN_LIBRARIES,
    _Break,
    _Return,
    coerce_element,
    coerce_symmetric,
    display_value,
    is_scalar_value,
    write_whole_array,
)
from .values import BINOP_FUNCS, FLOP_COST, NARYOP_FUNCS, UNOP_FUNCS, equals

#: A compiled statement or expression: ``fn(rt, frame) -> value | None``.
Code = Callable[["_Runtime", list], object]


class _Runtime:
    """Per-PE mutable execution state for one run of a compiled program.

    This is the closure engine's analogue of the ``Interpreter`` instance:
    everything that varies per PE (the shmem context, the global frame,
    the function registry, the ``TXT MAH BFF`` predication target) lives
    here, so the compiled closures themselves stay shareable.
    """

    __slots__ = ("ctx", "gframe", "functions", "target_pe", "libraries")

    def __init__(self, ctx: ShmemContext) -> None:
        self.ctx = ctx
        self.gframe: list = []
        self.functions: dict[str, "CompiledFunction"] = {}
        self.target_pe: Optional[int] = None
        self.libraries: set[str] = set()


class CompiledFunction:
    """One ``HOW IZ I`` body compiled to closures over its own frame."""

    __slots__ = ("name", "n_params", "param_slots", "n_slots", "body", "pos")

    def __init__(self, name: str, n_params: int, pos: SourcePos) -> None:
        self.name = name
        self.n_params = n_params
        self.param_slots: tuple[int, ...] = ()
        self.n_slots = 1
        self.body: tuple[Code, ...] = ()
        self.pos = pos


class CompiledProgram:
    """A whole program compiled to closures; shareable across PEs."""

    __slots__ = ("body", "n_root_slots", "hoisted", "count_flops")

    def __init__(
        self,
        body: tuple[Code, ...],
        n_root_slots: int,
        hoisted: dict[str, CompiledFunction],
        count_flops: bool,
    ) -> None:
        self.body = body
        self.n_root_slots = n_root_slots
        self.hoisted = hoisted
        self.count_flops = count_flops

    def run(self, ctx: ShmemContext) -> None:
        rt = _Runtime(ctx)
        rt.gframe = frame = new_frame(self.n_root_slots)
        # Top-level function definitions are hoisted, exactly like the
        # tree-walker, so call sites may precede definitions textually.
        rt.functions.update(self.hoisted)
        for s in self.body:
            s(rt, frame)


# ---------------------------------------------------------------------------
# Shared runtime helpers (module level so closures stay small).
# ---------------------------------------------------------------------------


def _undeclared(name: str, pos: SourcePos) -> LolNameError:
    return LolNameError(
        f"variable '{name}' has not been declared (I HAS A {name})", pos
    )


def _require_target(rt: _Runtime, name: str, pos: SourcePos) -> int:
    pe = rt.target_pe
    if pe is None:
        raise LolParallelError(
            f"'UR {name}' used outside a TXT MAH BFF predicated "
            f"statement or block",
            pos,
        )
    return pe


def _as_index(value: object, pos: SourcePos) -> int:
    return value if type(value) is int else to_numbr(value, pos)


# Dynamic (SRS) access paths: the visible-name *set* at an SRS site is
# static (a scope snapshot), the chosen name is not.  These mirror the
# tree-walker's ``_read_var`` / ``_write_var`` / element variants.


def _resolve_dyn(frame: list, info: Optional[VarInfo]) -> Optional[VarInfo]:
    """Follow pre-declaration fallbacks: a LOCAL slot that is still
    UNDECLARED at runtime defers to its enclosing (fallback) binding."""
    while (
        info is not None
        and info.kind == LOCAL
        and info.fallback is not None
        and frame[info.slot] is UNDECLARED
    ):
        info = info.fallback
    if info is not None and info.kind == MISSING:
        return None
    return info


def _dyn_read(
    rt: _Runtime, frame: list, snap: dict[str, VarInfo], name: str, pos: SourcePos
) -> object:
    info = _resolve_dyn(frame, snap.get(name))
    if info is None:
        raise _undeclared(name, pos)
    if info.kind == SYMMETRIC:
        return rt.ctx.local_read(name)
    if info.is_array:
        raise LolTypeError(
            f"'{name}' is an array: index it with {name}'Z <expr>", pos
        )
    v = (frame if info.kind == LOCAL else rt.gframe)[info.slot]
    if v is UNDECLARED:
        raise _undeclared(name, pos)
    return v


def _dyn_write(
    rt: _Runtime,
    frame: list,
    snap: dict[str, VarInfo],
    name: str,
    value: object,
    pos: SourcePos,
) -> None:
    info = _resolve_dyn(frame, snap.get(name))
    if info is None:
        raise _undeclared(name, pos)
    if info.kind == SYMMETRIC:
        rt.ctx.local_write(name, coerce_symmetric(rt.ctx, name, value, pos))
        return
    target = frame if info.kind == LOCAL else rt.gframe
    if target[info.slot] is UNDECLARED:
        raise _undeclared(name, pos)
    if info.is_array:
        write_whole_array(target[info.slot], value, name, pos)
        return
    if info.static_type is not None:
        value = coerce_static(value, info.static_type, name, pos)
    elif not is_scalar_value(value):
        raise LolTypeError(f"cannot assign an array value to scalar '{name}'", pos)
    target[info.slot] = value


def _dyn_read_element(
    rt: _Runtime,
    frame: list,
    snap: dict[str, VarInfo],
    name: str,
    index: int,
    pos: SourcePos,
) -> object:
    info = _resolve_dyn(frame, snap.get(name))
    if info is None:
        raise _undeclared(name, pos)
    if info.kind == SYMMETRIC:
        return rt.ctx.local_read(name, index=index)
    if not info.is_array:
        raise LolTypeError(f"'{name}' is not an array", pos)
    cell = (frame if info.kind == LOCAL else rt.gframe)[info.slot]
    if cell is UNDECLARED:
        raise _undeclared(name, pos)
    try:
        return cell.read(index)
    except LolRuntimeError as exc:
        raise LolRuntimeError(f"{name}: {exc.message}", pos) from exc


def _dyn_write_element(
    rt: _Runtime,
    frame: list,
    snap: dict[str, VarInfo],
    name: str,
    index: int,
    value: object,
    pos: SourcePos,
) -> None:
    info = _resolve_dyn(frame, snap.get(name))
    if info is None:
        raise _undeclared(name, pos)
    if info.kind == SYMMETRIC:
        obj = rt.ctx.world.heap.lookup(name)
        rt.ctx.local_write(
            name, coerce_element(value, obj.lol_type, name, pos), index=index
        )
        return
    if not info.is_array:
        raise LolTypeError(f"'{name}' is not an array", pos)
    cell = (frame if info.kind == LOCAL else rt.gframe)[info.slot]
    if cell is UNDECLARED:
        raise _undeclared(name, pos)
    value = coerce_element(value, cell.lol_type, name, pos)
    try:
        cell.write(index, value)
    except LolRuntimeError as exc:
        raise LolRuntimeError(f"{name}: {exc.message}", pos) from exc


# ---------------------------------------------------------------------------
# The compiler.
# ---------------------------------------------------------------------------


class ClosureCompiler:
    """One-shot AST -> closure-tree translation for one program."""

    def __init__(self, program: ast.Program, *, count_flops: bool = False) -> None:
        self.program = program
        self.count_flops = count_flops
        self.root_layout = FrameLayout()
        self.root_scope = ScopeStack(self.root_layout)
        #: function bodies are compiled after the top-level walk so they
        #: resolve against the *final* root scope (the tree-walker binds
        #: call environments to ``globals``); the queue also picks up
        #: definitions nested inside other function bodies.
        self._pending_funcs: list[tuple[ast.FuncDef, CompiledFunction]] = []
        self._compiled_funcs: dict[int, CompiledFunction] = {}  # id(node) ->

    def compile(self) -> CompiledProgram:
        hoisted: dict[str, CompiledFunction] = {}
        for stmt in self.program.body:
            if isinstance(stmt, ast.FuncDef):
                hoisted[stmt.name] = self._function_stub(stmt)
        body = self._block(self.program.body, self.root_scope)
        while self._pending_funcs:
            node, cf = self._pending_funcs.pop()
            self._fill_function(node, cf)
        return CompiledProgram(
            body, self.root_layout.n_slots, hoisted, self.count_flops
        )

    # -- functions --------------------------------------------------------

    def _function_stub(self, node: ast.FuncDef) -> CompiledFunction:
        cf = self._compiled_funcs.get(id(node))
        if cf is None:
            cf = CompiledFunction(node.name, len(node.params), node.pos)
            self._compiled_funcs[id(node)] = cf
            self._pending_funcs.append((node, cf))
        return cf

    def _fill_function(self, node: ast.FuncDef, cf: CompiledFunction) -> None:
        layout = FrameLayout()
        scope = ScopeStack(layout, root=self.root_scope)
        param_slots = []
        for param in node.params:
            param_slots.append(scope.declare(param).slot)
        cf.param_slots = tuple(param_slots)
        cf.body = self._block(node.body, scope)
        cf.n_slots = layout.n_slots

    # -- blocks and statements -------------------------------------------

    def _block(self, stmts: list[ast.Stmt], scope: ScopeStack) -> tuple[Code, ...]:
        return tuple(self._stmt(s, scope) for s in stmts)

    def _child_block(
        self, stmts: list[ast.Stmt], scope: ScopeStack
    ) -> tuple[Code, ...]:
        scope.push()
        try:
            return self._block(stmts, scope)
        finally:
            scope.pop()

    def _stmt(self, stmt: ast.Stmt, scope: ScopeStack) -> Code:
        method = self._STMT_DISPATCH.get(type(stmt))
        if method is None:
            pos = stmt.pos
            kind = type(stmt).__name__

            def run(rt: _Runtime, frame: list) -> None:
                raise LolRuntimeError(f"statement {kind} not implemented", pos)

            return run
        return method(self, stmt, scope)

    def _stmt_var_decl(self, stmt: ast.VarDecl, scope: ScopeStack) -> Code:
        pos = stmt.pos
        name = stmt.name
        declared = parse_type(stmt.static_type, pos) if stmt.static_type else None
        if stmt.scope == "WE":
            return self._stmt_symmetric_decl(stmt, declared)
        if stmt.is_array:
            size_c = self._expr(stmt.size, scope)
            elem_t = declared or LolType.NUMBAR
            slot = scope.declare(name, static_type=declared, is_array=True).slot

            def run_array(rt: _Runtime, frame: list) -> None:
                size = to_array_size(size_c(rt, frame), pos)
                if size <= 0:
                    raise LolRuntimeError(
                        f"array '{name}' must have positive size, got {size}",
                        pos,
                    )
                frame[slot] = ArrayCell(elem_t, size)

            return run_array
        # Initializers are compiled *before* the name is (re)declared, so
        # ``I HAS A x ITZ SUM OF x AN 1`` sees the previous binding: the
        # enclosing one on first execution and — via the loop pre-pass'
        # conditional fallback binding — the previous iteration's value
        # when the declaration sits in a loop body.
        init_c = self._expr(stmt.init, scope) if stmt.init is not None else None
        slot = scope.declare(name, static_type=declared).slot
        if init_c is not None:
            if declared is not None:
                dt = declared

                def run_init_typed(rt: _Runtime, frame: list) -> None:
                    frame[slot] = coerce_static(init_c(rt, frame), dt, name, pos)

                return run_init_typed

            def run_init(rt: _Runtime, frame: list) -> None:
                frame[slot] = init_c(rt, frame)

            return run_init
        default = default_value(declared) if declared is not None else None

        def run_default(rt: _Runtime, frame: list) -> None:
            frame[slot] = default

        return run_default

    def _stmt_symmetric_decl(
        self, stmt: ast.VarDecl, declared: Optional[LolType]
    ) -> Code:
        pos = stmt.pos
        name = stmt.name
        if declared is None:

            def run_untyped(rt: _Runtime, frame: list) -> None:
                raise LolParallelError(
                    f"symmetric variable '{name}' must be typed "
                    f"(WE HAS A {name} ITZ SRSLY A <type> ...)",
                    pos,
                )

            return run_untyped
        # Size/init expressions evaluate on the *root* frame, exactly as
        # the tree-walker evaluates them on ``self.globals``.
        size_c = (
            self._expr(stmt.size, self.root_scope) if stmt.is_array else None
        )
        init_c = (
            self._expr(stmt.init, self.root_scope) if stmt.init is not None else None
        )
        scope_ref = self.root_scope
        scope_ref.declare_symmetric(name, static_type=declared, is_array=stmt.is_array)
        has_lock = stmt.shared_lock
        is_array = stmt.is_array

        def run(rt: _Runtime, frame: list) -> None:
            gframe = rt.gframe
            if is_array:
                size = to_array_size(size_c(rt, gframe), pos)
                rt.ctx.alloc_array(name, declared, size, has_lock=has_lock)
            else:
                rt.ctx.alloc_scalar(name, declared, has_lock=has_lock)
            if init_c is not None:
                value = coerce_static(init_c(rt, gframe), declared, name, pos)
                rt.ctx.local_write(name, value)

        return run

    def _stmt_assign(self, stmt: ast.Assign, scope: ScopeStack) -> Code:
        value_c = self._expr(stmt.value, scope)
        target = stmt.target
        # Fuse plain local-scalar stores into the assignment closure.
        if isinstance(target, ast.VarRef) and target.qualifier != "UR":
            info = scope.lookup(target.name)
            if (
                info is not None
                and info.kind == LOCAL
                and not info.is_array
                and info.fallback is None
            ):
                slot = info.slot
                name = target.name
                pos = target.pos
                if info.static_type is not None:
                    dt = info.static_type

                    def run_typed(rt: _Runtime, frame: list) -> None:
                        frame[slot] = coerce_static(
                            value_c(rt, frame), dt, name, pos
                        )

                    return run_typed

                def run_dyn(rt: _Runtime, frame: list) -> None:
                    v = value_c(rt, frame)
                    if not is_scalar_value(v):
                        raise LolTypeError(
                            f"cannot assign an array value to scalar '{name}'",
                            pos,
                        )
                    frame[slot] = v

                return run_dyn
        store = self._store(target, scope)

        def run(rt: _Runtime, frame: list) -> None:
            store(rt, frame, value_c(rt, frame))

        return run

    def _stmt_cast(self, stmt: ast.CastStmt, scope: ScopeStack) -> Code:
        pos = stmt.pos
        to_type = parse_type(stmt.to_type, pos)
        read_c = self._expr(stmt.target, scope)
        store = self._store(stmt.target, scope)

        def run(rt: _Runtime, frame: list) -> None:
            store(rt, frame, cast_value(read_c(rt, frame), to_type, pos))

        return run

    def _stmt_expr(self, stmt: ast.ExprStmt, scope: ScopeStack) -> Code:
        expr_c = self._expr(stmt.expr, scope)

        def run(rt: _Runtime, frame: list) -> None:
            frame[0] = expr_c(rt, frame)

        return run

    def _stmt_visible(self, stmt: ast.Visible, scope: ScopeStack) -> Code:
        parts = tuple(
            (self._expr(a, scope), a.pos) for a in stmt.args
        )
        end = "\n" if stmt.newline else ""

        def run(rt: _Runtime, frame: list) -> None:
            rt.ctx.emit(
                "".join(display_value(c(rt, frame), p) for c, p in parts) + end
            )

        return run

    def _stmt_gimmeh(self, stmt: ast.Gimmeh, scope: ScopeStack) -> Code:
        store = self._store(stmt.target, scope)

        def run(rt: _Runtime, frame: list) -> None:
            store(rt, frame, rt.ctx.read_line())

        return run

    def _stmt_can_has(self, stmt: ast.CanHas, scope: ScopeStack) -> Code:
        pos = stmt.pos
        raw = stmt.library
        lib = raw.upper()

        def run(rt: _Runtime, frame: list) -> None:
            if lib not in KNOWN_LIBRARIES:
                raise LolRuntimeError(f"CAN HAS {raw}?: unknown library", pos)
            rt.libraries.add(lib)

        return run

    def _stmt_if(self, stmt: ast.If, scope: ScopeStack) -> Code:
        ya_rly = self._child_block(stmt.ya_rly, scope)
        mebbe = tuple(
            (self._expr(cond, scope), self._child_block(body, scope))
            for cond, body in stmt.mebbe
        )
        no_wai = self._child_block(stmt.no_wai, scope)

        def run(rt: _Runtime, frame: list) -> None:
            if to_troof(frame[0]):
                for s in ya_rly:
                    s(rt, frame)
                return
            for cond_c, body in mebbe:
                if to_troof(cond_c(rt, frame)):
                    for s in body:
                        s(rt, frame)
                    return
            for s in no_wai:
                s(rt, frame)

        return run

    def _stmt_switch(self, stmt: ast.Switch, scope: ScopeStack) -> Code:
        cases = tuple(
            (self._expr(lit, scope), self._child_block(body, scope))
            for lit, body in stmt.cases
        )
        default = self._child_block(stmt.default, scope)

        def run(rt: _Runtime, frame: list) -> None:
            scrutinee = frame[0]
            match_idx: Optional[int] = None
            for i, (lit_c, _) in enumerate(cases):
                if equals(scrutinee, lit_c(rt, frame)):
                    match_idx = i
                    break
            try:
                if match_idx is not None:
                    # C-style fallthrough until GTFO.
                    for _, body in cases[match_idx:]:
                        for s in body:
                            s(rt, frame)
                for s in default:
                    s(rt, frame)
            except _Break:
                pass

        return run

    def _prescan_loop_decls(self, stmts: list[ast.Stmt], scope: ScopeStack) -> None:
        """Pre-bind scalar declarations of a loop body.

        The tree-walker keeps **one** environment per loop execution, so a
        body declaration made on iteration 1 is visible to reads (and to
        its own re-evaluated initializer) on iteration 2+.  Pre-declaring
        the slot with a fallback to the enclosing binding reproduces that:
        accesses test the slot's UNDECLARED sentinel and use the outer
        binding until the declaration first runs.  Only this block level
        is scanned (nested O RLY?/WTF?/loop blocks get fresh child
        environments in the tree-walker too) — plus TXT MAH BFF bodies,
        which execute in the enclosing environment.
        """
        for s in stmts:
            if (
                isinstance(s, ast.VarDecl)
                and s.scope != "WE"
                and not s.is_array
            ):
                declared = (
                    parse_type(s.static_type, s.pos) if s.static_type else None
                )
                scope.predeclare(s.name, static_type=declared)
            elif isinstance(s, ast.TxtStmt):
                self._prescan_loop_decls(s.body, scope)

    def _stmt_loop(self, stmt: ast.Loop, scope: ScopeStack) -> Code:
        pos = stmt.pos
        label = stmt.label
        # The tree-walker builds a fresh loop environment every time the
        # loop *statement* executes (iterations share it, re-entries do
        # not), so every slot allocated for this loop's scope — counter,
        # pre-declared body names, nested-block locals — is reset to
        # UNDECLARED on entry.
        lo = scope.layout.n_slots
        scope.push()
        try:
            cslot = -1
            if stmt.var is not None:
                cslot = scope.declare(stmt.var, static_type=LolType.NUMBR).slot
            self._prescan_loop_decls(stmt.body, scope)
            cond_c = self._expr(stmt.cond, scope) if stmt.cond is not None else None
            body = self._block(stmt.body, scope)
        finally:
            scope.pop()
        reset = [UNDECLARED] * (scope.layout.n_slots - lo)
        hi = lo + len(reset)
        til = stmt.cond_kind == "TIL"
        step = 1 if stmt.op == "UPPIN" else -1
        has_counter = cslot >= 0

        def run(rt: _Runtime, frame: list) -> None:
            if reset:
                frame[lo:hi] = reset
            if has_counter:
                frame[cslot] = 0
            while True:
                if cond_c is not None:
                    flag = to_troof(cond_c(rt, frame))
                    if flag is til:
                        break
                try:
                    for s in body:
                        s(rt, frame)
                except _Break:
                    break
                if has_counter:
                    v = frame[cslot]
                    frame[cslot] = (
                        v if type(v) is int else to_numbr(v, pos)
                    ) + step
                elif cond_c is None:
                    raise LolRuntimeError(
                        f"loop '{label}' has no counter, no condition and "
                        f"no GTFO: it would never terminate",
                        pos,
                    )

        return run

    def _stmt_gtfo(self, stmt: ast.Gtfo, scope: ScopeStack) -> Code:
        def run(rt: _Runtime, frame: list) -> None:
            raise _Break()

        return run

    def _stmt_func_def(self, stmt: ast.FuncDef, scope: ScopeStack) -> Code:
        cf = self._function_stub(stmt)
        name = stmt.name

        def run(rt: _Runtime, frame: list) -> None:
            rt.functions[name] = cf

        return run

    def _stmt_return(self, stmt: ast.Return, scope: ScopeStack) -> Code:
        expr_c = self._expr(stmt.expr, scope)

        def run(rt: _Runtime, frame: list) -> None:
            raise _Return(expr_c(rt, frame))

        return run

    def _stmt_hugz(self, stmt: ast.Hugz, scope: ScopeStack) -> Code:
        def run(rt: _Runtime, frame: list) -> None:
            rt.ctx.barrier_all()

        return run

    def _stmt_lock(self, stmt: ast.LockStmt, scope: ScopeStack) -> Code:
        pos = stmt.pos
        kind = stmt.kind
        name_c = self._target_name(stmt.target, scope)

        def run(rt: _Runtime, frame: list) -> None:
            name = name_c(rt, frame)
            if not rt.ctx.is_symmetric(name):
                raise LolParallelError(
                    f"cannot lock '{name}': it is not a shared symmetric "
                    f"variable (WE HAS A {name} ... AN IM SHARIN IT)",
                    pos,
                )
            if kind == "lock":
                rt.ctx.set_lock(name)
            elif kind == "trylock":
                frame[0] = rt.ctx.test_lock(name)
            else:
                rt.ctx.clear_lock(name)

        return run

    def _stmt_txt(self, stmt: ast.TxtStmt, scope: ScopeStack) -> Code:
        pos = stmt.pos
        pe_c = self._expr(stmt.pe, scope)
        # No child scope: the tree-walker executes TXT bodies in the
        # *enclosing* environment, so declarations inside the predicated
        # block stay visible after TTYL.
        body = self._block(stmt.body, scope)

        def run(rt: _Runtime, frame: list) -> None:
            pe = to_numbr(pe_c(rt, frame), pos)
            if not 0 <= pe < rt.ctx.n_pes:
                raise LolParallelError(
                    f"TXT MAH BFF {pe}: PE out of range [0, {rt.ctx.n_pes})",
                    pos,
                )
            saved = rt.target_pe
            rt.target_pe = pe
            try:
                for s in body:
                    s(rt, frame)
            finally:
                rt.target_pe = saved

        return run

    _STMT_DISPATCH = {
        ast.VarDecl: _stmt_var_decl,
        ast.Assign: _stmt_assign,
        ast.CastStmt: _stmt_cast,
        ast.ExprStmt: _stmt_expr,
        ast.Visible: _stmt_visible,
        ast.Gimmeh: _stmt_gimmeh,
        ast.CanHas: _stmt_can_has,
        ast.If: _stmt_if,
        ast.Switch: _stmt_switch,
        ast.Loop: _stmt_loop,
        ast.Gtfo: _stmt_gtfo,
        ast.FuncDef: _stmt_func_def,
        ast.Return: _stmt_return,
        ast.Hugz: _stmt_hugz,
        ast.LockStmt: _stmt_lock,
        ast.TxtStmt: _stmt_txt,
    }

    # -- expressions ------------------------------------------------------

    def _expr(self, node: ast.Expr, scope: ScopeStack) -> Code:
        method = self._EXPR_DISPATCH.get(type(node))
        if method is None:
            pos = node.pos
            kind = type(node).__name__

            def run(rt: _Runtime, frame: list) -> object:
                raise LolRuntimeError(f"expression {kind} not implemented", pos)

            return run
        return method(self, node, scope)

    def _expr_const(self, node, scope: ScopeStack) -> Code:
        value = node.value

        def run(rt: _Runtime, frame: list) -> object:
            return value

        return run

    def _expr_string(self, node: ast.StringLit, scope: ScopeStack) -> Code:
        pos = node.pos
        if node.is_plain():
            return self._expr_const_value(node.plain_text())
        parts: list = []
        for part in node.parts:
            if isinstance(part, str):
                parts.append(part)
            else:
                _, name = part
                parts.append(self._read_name(name, None, scope, pos))
        parts = tuple(parts)

        def run(rt: _Runtime, frame: list) -> object:
            return "".join(
                p if type(p) is str else format_yarn(p(rt, frame)) for p in parts
            )

        return run

    def _expr_const_value(self, value: object) -> Code:
        def run(rt: _Runtime, frame: list) -> object:
            return value

        return run

    def _expr_noob(self, node: ast.NoobLit, scope: ScopeStack) -> Code:
        def run(rt: _Runtime, frame: list) -> object:
            return None

        return run

    def _expr_it(self, node: ast.ItRef, scope: ScopeStack) -> Code:
        def run(rt: _Runtime, frame: list) -> object:
            return frame[0]

        return run

    def _expr_me(self, node: ast.MeExpr, scope: ScopeStack) -> Code:
        def run(rt: _Runtime, frame: list) -> object:
            return rt.ctx.my_pe

        return run

    def _expr_frenz(self, node: ast.FrenzExpr, scope: ScopeStack) -> Code:
        def run(rt: _Runtime, frame: list) -> object:
            return rt.ctx.n_pes

        return run

    def _expr_random(self, node: ast.RandomExpr, scope: ScopeStack) -> Code:
        if node.kind == "int":

            def run_int(rt: _Runtime, frame: list) -> object:
                return rt.ctx.rng.randrange(0, 2**31 - 1)  # rand()

            return run_int

        def run_float(rt: _Runtime, frame: list) -> object:
            return rt.ctx.rng.random()  # randf()

        return run_float

    def _expr_binop(self, node: ast.BinOp, scope: ScopeStack) -> Code:
        pos = node.pos
        fn = BINOP_FUNCS.get(node.op)
        if fn is None:
            op = node.op

            def run_bad(rt: _Runtime, frame: list) -> object:
                raise LolRuntimeError(f"unknown binary op {op!r}", pos)

            return run_bad
        cost = FLOP_COST.get(node.op, 0)
        if self.count_flops and cost:
            lhs_tc = self._expr(node.lhs, scope)
            rhs_tc = self._expr(node.rhs, scope)

            def run_traced(rt: _Runtime, frame: list) -> object:
                rt.ctx.add_flops(cost)
                return fn(lhs_tc(rt, frame), rhs_tc(rt, frame), pos)

            return run_traced
        # Operand fusion: inline constant / local-slot operands so the
        # common ``SUM OF x AN 1`` shapes cost one closure call, not three.
        ls = self._simple_operand(node.lhs, scope)
        rs = self._simple_operand(node.rhs, scope)
        if ls is not None and rs is not None:
            lk, lv = ls
            rk, rv = rs
            if lk == "slot" and rk == "slot":

                def run_ss(rt: _Runtime, frame: list) -> object:
                    return fn(frame[lv], frame[rv], pos)

                return run_ss
            if lk == "slot":

                def run_sc(rt: _Runtime, frame: list) -> object:
                    return fn(frame[lv], rv, pos)

                return run_sc
            if rk == "slot":

                def run_cs(rt: _Runtime, frame: list) -> object:
                    return fn(lv, frame[rv], pos)

                return run_cs

            def run_cc(rt: _Runtime, frame: list) -> object:
                return fn(lv, rv, pos)

            return run_cc
        if ls is not None:
            lk, lv = ls
            rhs_c = self._expr(node.rhs, scope)
            if lk == "slot":

                def run_se(rt: _Runtime, frame: list) -> object:
                    return fn(frame[lv], rhs_c(rt, frame), pos)

                return run_se

            def run_ce(rt: _Runtime, frame: list) -> object:
                return fn(lv, rhs_c(rt, frame), pos)

            return run_ce
        if rs is not None:
            rk, rv = rs
            lhs_c = self._expr(node.lhs, scope)
            if rk == "slot":

                def run_es(rt: _Runtime, frame: list) -> object:
                    return fn(lhs_c(rt, frame), frame[rv], pos)

                return run_es

            def run_ec(rt: _Runtime, frame: list) -> object:
                return fn(lhs_c(rt, frame), rv, pos)

            return run_ec
        lhs_c = self._expr(node.lhs, scope)
        rhs_c = self._expr(node.rhs, scope)

        def run(rt: _Runtime, frame: list) -> object:
            return fn(lhs_c(rt, frame), rhs_c(rt, frame), pos)

        return run

    def _expr_unop(self, node: ast.UnaryOp, scope: ScopeStack) -> Code:
        pos = node.pos
        fn = UNOP_FUNCS.get(node.op)
        if fn is None:
            op = node.op

            def run_bad(rt: _Runtime, frame: list) -> object:
                raise LolRuntimeError(f"unknown unary op {op!r}", pos)

            return run_bad
        cost = FLOP_COST.get(node.op, 0)
        if self.count_flops and cost:
            operand_tc = self._expr(node.operand, scope)

            def run_traced(rt: _Runtime, frame: list) -> object:
                rt.ctx.add_flops(cost)
                return fn(operand_tc(rt, frame), pos)

            return run_traced
        simple = self._simple_operand(node.operand, scope)
        if simple is not None:
            kind, v = simple
            if kind == "slot":

                def run_s(rt: _Runtime, frame: list) -> object:
                    return fn(frame[v], pos)

                return run_s

            def run_c(rt: _Runtime, frame: list) -> object:
                return fn(v, pos)

            return run_c
        operand_c = self._expr(node.operand, scope)

        def run(rt: _Runtime, frame: list) -> object:
            return fn(operand_c(rt, frame), pos)

        return run

    def _expr_naryop(self, node: ast.NaryOp, scope: ScopeStack) -> Code:
        pos = node.pos
        fn = NARYOP_FUNCS.get(node.op)
        if fn is None:
            op = node.op

            def run_bad(rt: _Runtime, frame: list) -> object:
                raise LolRuntimeError(f"unknown n-ary op {op!r}", pos)

            return run_bad
        operand_cs = tuple(self._expr(e, scope) for e in node.operands)

        def run(rt: _Runtime, frame: list) -> object:
            return fn([c(rt, frame) for c in operand_cs], pos)

        return run

    def _expr_cast(self, node: ast.Cast, scope: ScopeStack) -> Code:
        pos = node.pos
        to_type = parse_type(node.to_type, pos)
        inner_c = self._expr(node.expr, scope)

        def run(rt: _Runtime, frame: list) -> object:
            return cast_value(inner_c(rt, frame), to_type, pos)

        return run

    def _expr_var(self, node: ast.VarRef, scope: ScopeStack) -> Code:
        return self._read_name(node.name, node.qualifier, scope, node.pos)

    def _expr_srs(self, node: ast.SrsRef, scope: ScopeStack) -> Code:
        pos = node.pos
        name_c = self._expr(node.expr, scope)
        if node.qualifier == "UR":

            def run_ur(rt: _Runtime, frame: list) -> object:
                name = format_yarn(name_c(rt, frame))
                return rt.ctx.get(name, _require_target(rt, name, pos))

            return run_ur
        snap = scope.snapshot()

        def run(rt: _Runtime, frame: list) -> object:
            return _dyn_read(rt, frame, snap, format_yarn(name_c(rt, frame)), pos)

        return run

    def _expr_index(self, node: ast.Index, scope: ScopeStack) -> Code:
        pos = node.pos
        index_c = self._expr(node.index, scope)
        base = node.base
        if isinstance(base, ast.SrsRef):
            name_c = self._expr(base.expr, scope)
            if base.qualifier == "UR":

                def run_srs_ur(rt: _Runtime, frame: list) -> object:
                    name = format_yarn(name_c(rt, frame))
                    index = _as_index(index_c(rt, frame), pos)
                    return rt.ctx.get(
                        name, _require_target(rt, name, pos), index=index
                    )

                return run_srs_ur
            snap = scope.snapshot()

            def run_srs(rt: _Runtime, frame: list) -> object:
                name = format_yarn(name_c(rt, frame))
                index = _as_index(index_c(rt, frame), pos)
                return _dyn_read_element(rt, frame, snap, name, index, pos)

            return run_srs
        name = base.name
        if base.qualifier == "UR":

            def run_ur(rt: _Runtime, frame: list) -> object:
                index = _as_index(index_c(rt, frame), pos)
                return rt.ctx.get(name, _require_target(rt, name, pos), index=index)

            return run_ur
        info = scope.lookup(name)
        if info is None:
            return self._raise_name(name, pos)
        if info.kind == LOCAL and info.fallback is not None:
            # Pre-declared loop-body binding: resolve at runtime.
            fsnap = {name: info}

            def run_fb(rt: _Runtime, frame: list) -> object:
                index = _as_index(index_c(rt, frame), pos)
                return _dyn_read_element(rt, frame, fsnap, name, index, pos)

            return run_fb
        if info.kind == SYMMETRIC:

            def run_sym(rt: _Runtime, frame: list) -> object:
                index = _as_index(index_c(rt, frame), pos)
                return rt.ctx.local_read(name, index=index)

            return run_sym
        if not info.is_array:

            def run_not_array(rt: _Runtime, frame: list) -> object:
                raise LolTypeError(f"'{name}' is not an array", pos)

            return run_not_array
        slot = info.slot
        if info.kind == LOCAL:
            simple = self._simple_operand(node.index, scope)
            if simple is not None:
                ikind, iv = simple
                if ikind == "slot":

                    def run_local_s(rt: _Runtime, frame: list) -> object:
                        index = frame[iv]
                        if type(index) is not int:
                            index = to_numbr(index, pos)
                        try:
                            return frame[slot].read(index)
                        except LolRuntimeError as exc:
                            raise LolRuntimeError(
                                f"{name}: {exc.message}", pos
                            ) from exc

                    return run_local_s
                const_index = _as_index(iv, pos)

                def run_local_c(rt: _Runtime, frame: list) -> object:
                    try:
                        return frame[slot].read(const_index)
                    except LolRuntimeError as exc:
                        raise LolRuntimeError(
                            f"{name}: {exc.message}", pos
                        ) from exc

                return run_local_c

            def run_local(rt: _Runtime, frame: list) -> object:
                index = _as_index(index_c(rt, frame), pos)
                try:
                    return frame[slot].read(index)
                except LolRuntimeError as exc:
                    raise LolRuntimeError(f"{name}: {exc.message}", pos) from exc

            return run_local

        def run_global(rt: _Runtime, frame: list) -> object:
            cell = rt.gframe[slot]
            if cell is UNDECLARED:
                raise _undeclared(name, pos)
            index = _as_index(index_c(rt, frame), pos)
            try:
                return cell.read(index)
            except LolRuntimeError as exc:
                raise LolRuntimeError(f"{name}: {exc.message}", pos) from exc

        return run_global

    def _expr_call(self, node: ast.FuncCall, scope: ScopeStack) -> Code:
        pos = node.pos
        name = node.name
        arg_cs = tuple(self._expr(a, scope) for a in node.args)
        n_args = len(arg_cs)

        def run(rt: _Runtime, frame: list) -> object:
            func = rt.functions.get(name)
            if func is None:
                raise LolNameError(f"no function named '{name}'", pos)
            if func.n_params != n_args:
                raise LolRuntimeError(
                    f"function '{name}' wants {func.n_params} arguments, "
                    f"got {n_args}",
                    pos,
                )
            callee = new_frame(func.n_slots)
            for c, slot in zip(arg_cs, func.param_slots):
                callee[slot] = c(rt, frame)
            try:
                for s in func.body:
                    s(rt, callee)
                return callee[0]  # fall off the end: IT is returned
            except _Return as ret:
                return ret.value
            except _Break:
                return None  # GTFO in a function returns NOOB

        return run

    _EXPR_DISPATCH = {
        ast.IntLit: _expr_const,
        ast.FloatLit: _expr_const,
        ast.TroofLit: _expr_const,
        ast.StringLit: _expr_string,
        ast.NoobLit: _expr_noob,
        ast.ItRef: _expr_it,
        ast.MeExpr: _expr_me,
        ast.FrenzExpr: _expr_frenz,
        ast.RandomExpr: _expr_random,
        ast.BinOp: _expr_binop,
        ast.UnaryOp: _expr_unop,
        ast.NaryOp: _expr_naryop,
        ast.Cast: _expr_cast,
        ast.VarRef: _expr_var,
        ast.SrsRef: _expr_srs,
        ast.Index: _expr_index,
        ast.FuncCall: _expr_call,
    }

    # -- variable plumbing -------------------------------------------------
    #
    # LOCAL slot reads skip the UNDECLARED sentinel check: a compile-time
    # resolvable local reference is always dominated by its declaration —
    # the declaration is textually earlier in the same or an enclosing
    # block of the same frame, and blocks have no internal jumps (GTFO /
    # FOUND YR exit the block entirely), so every execution path reaching
    # the read has executed the declaration.  GLOBAL reads (a function
    # touching a top-level variable) keep the check, because the call may
    # run before the top-level declaration statement has executed.

    def _raise_name(self, name: str, pos: SourcePos) -> Code:
        def run(rt: _Runtime, frame: list) -> object:
            raise _undeclared(name, pos)

        return run

    def _read_name(
        self,
        name: str,
        qualifier: Optional[str],
        scope: ScopeStack,
        pos: SourcePos,
    ) -> Code:
        if qualifier == "UR":

            def run_ur(rt: _Runtime, frame: list) -> object:
                return rt.ctx.get(name, _require_target(rt, name, pos))

            return run_ur
        return self._read_info(scope.lookup(name), name, pos)

    def _read_info(
        self, info: Optional[VarInfo], name: str, pos: SourcePos
    ) -> Code:
        """Compile a read of one *resolved* binding (fallback-aware)."""
        if info is None or info.kind == MISSING:
            return self._raise_name(name, pos)
        if info.kind == SYMMETRIC:

            def run_sym(rt: _Runtime, frame: list) -> object:
                return rt.ctx.local_read(name)

            return run_sym
        if info.is_array:

            def run_array(rt: _Runtime, frame: list) -> object:
                raise LolTypeError(
                    f"'{name}' is an array: index it with {name}'Z <expr>", pos
                )

            return run_array
        slot = info.slot
        if info.kind == LOCAL:
            if info.fallback is not None:
                # Pre-declared loop-body binding: until the declaration
                # first runs, reads see the enclosing binding.
                fb_c = self._read_info(info.fallback, name, pos)

                def run_cond(rt: _Runtime, frame: list) -> object:
                    v = frame[slot]
                    if v is UNDECLARED:
                        return fb_c(rt, frame)
                    return v

                return run_cond

            def run_local(rt: _Runtime, frame: list) -> object:
                return frame[slot]

            return run_local

        def run_global(rt: _Runtime, frame: list) -> object:
            v = rt.gframe[slot]
            if v is UNDECLARED:
                raise _undeclared(name, pos)
            return v

        return run_global

    def _simple_operand(self, node: ast.Expr, scope: ScopeStack):
        """Recognize operands the specializer can inline without a call.

        Returns ``("const", value)``, ``("slot", slot)`` (a LOCAL scalar,
        including ``IT`` as slot 0), or ``None`` for everything else.
        Pre-declared bindings (``fallback`` set) are excluded — they need
        the conditional read path.
        """
        t = type(node)
        if t in (ast.IntLit, ast.FloatLit, ast.TroofLit):
            return ("const", node.value)
        if t is ast.ItRef:
            return ("slot", 0)
        if t is ast.VarRef and node.qualifier != "UR":
            info = scope.lookup(node.name)
            if (
                info is not None
                and info.kind == LOCAL
                and not info.is_array
                and info.fallback is None
            ):
                return ("slot", info.slot)
        return None

    def _target_name(
        self, base: "ast.VarRef | ast.SrsRef", scope: ScopeStack
    ) -> Callable[["_Runtime", list], str]:
        """Compile the *name* of an lvalue base (static or ``SRS``)."""
        if isinstance(base, ast.VarRef):
            name = base.name

            def run_static(rt: _Runtime, frame: list) -> str:
                return name

            return run_static
        name_c = self._expr(base.expr, scope)

        def run_dyn(rt: _Runtime, frame: list) -> str:
            return format_yarn(name_c(rt, frame))

        return run_dyn

    # -- stores ------------------------------------------------------------

    def _store(
        self, target: ast.Expr, scope: ScopeStack
    ) -> Callable[["_Runtime", list, object], None]:
        pos = target.pos
        if isinstance(target, ast.Index):
            return self._store_element(target, scope)
        if isinstance(target, ast.SrsRef):
            name_c = self._expr(target.expr, scope)
            if target.qualifier == "UR":

                def run_srs_ur(rt: _Runtime, frame: list, value: object) -> None:
                    name = format_yarn(name_c(rt, frame))
                    pe = _require_target(rt, name, pos)
                    rt.ctx.put(name, coerce_symmetric(rt.ctx, name, value, pos), pe)

                return run_srs_ur
            snap = scope.snapshot()

            def run_srs(rt: _Runtime, frame: list, value: object) -> None:
                _dyn_write(
                    rt, frame, snap, format_yarn(name_c(rt, frame)), value, pos
                )

            return run_srs
        if isinstance(target, ast.VarRef):
            name = target.name
            if target.qualifier == "UR":

                def run_ur(rt: _Runtime, frame: list, value: object) -> None:
                    pe = _require_target(rt, name, pos)
                    rt.ctx.put(name, coerce_symmetric(rt.ctx, name, value, pos), pe)

                return run_ur
            return self._store_info(scope.lookup(name), name, pos)

        def run_invalid(rt: _Runtime, frame: list, value: object) -> None:
            raise LolRuntimeError("invalid assignment target", pos)

        return run_invalid

    def _store_info(
        self, info: Optional[VarInfo], name: str, pos: SourcePos
    ) -> Callable[["_Runtime", list, object], None]:
        """Compile a store into one *resolved* binding (fallback-aware)."""
        if info is None or info.kind == MISSING:
            raiser = self._raise_name(name, pos)

            def run_missing(rt: _Runtime, frame: list, value: object) -> None:
                raiser(rt, frame)

            return run_missing
        if info.kind == SYMMETRIC:

            def run_sym(rt: _Runtime, frame: list, value: object) -> None:
                rt.ctx.local_write(
                    name, coerce_symmetric(rt.ctx, name, value, pos)
                )

            return run_sym
        slot = info.slot
        is_global = info.kind == GLOBAL
        if info.fallback is not None and not is_global:
            # Pre-declared loop-body binding: assignments hit the
            # enclosing binding until the declaration first runs.
            fb_store = self._store_info(info.fallback, name, pos)
            inner = self._store_info(
                VarInfo(LOCAL, name, slot, info.static_type, info.is_array),
                name,
                pos,
            )

            def run_cond(rt: _Runtime, frame: list, value: object) -> None:
                if frame[slot] is UNDECLARED:
                    fb_store(rt, frame, value)
                else:
                    inner(rt, frame, value)

            return run_cond
        if info.is_array:

            def run_whole_array(rt: _Runtime, frame: list, value: object) -> None:
                f = rt.gframe if is_global else frame
                cell = f[slot]
                if cell is UNDECLARED:
                    raise _undeclared(name, pos)
                write_whole_array(cell, value, name, pos)

            return run_whole_array
        if info.static_type is not None:
            dt = info.static_type
            if is_global:

                def run_typed_global(
                    rt: _Runtime, frame: list, value: object
                ) -> None:
                    g = rt.gframe
                    if g[slot] is UNDECLARED:
                        raise _undeclared(name, pos)
                    g[slot] = coerce_static(value, dt, name, pos)

                return run_typed_global

            def run_typed(rt: _Runtime, frame: list, value: object) -> None:
                frame[slot] = coerce_static(value, dt, name, pos)

            return run_typed
        if is_global:

            def run_dyn_global(rt: _Runtime, frame: list, value: object) -> None:
                g = rt.gframe
                if g[slot] is UNDECLARED:
                    raise _undeclared(name, pos)
                if not is_scalar_value(value):
                    raise LolTypeError(
                        f"cannot assign an array value to scalar '{name}'",
                        pos,
                    )
                g[slot] = value

            return run_dyn_global

        def run_dyn(rt: _Runtime, frame: list, value: object) -> None:
            if not is_scalar_value(value):
                raise LolTypeError(
                    f"cannot assign an array value to scalar '{name}'", pos
                )
            frame[slot] = value

        return run_dyn

    def _store_element(
        self, target: ast.Index, scope: ScopeStack
    ) -> Callable[["_Runtime", list, object], None]:
        pos = target.pos
        index_c = self._expr(target.index, scope)
        base = target.base
        if isinstance(base, ast.SrsRef):
            name_c = self._expr(base.expr, scope)
            if base.qualifier == "UR":

                def run_srs_ur(rt: _Runtime, frame: list, value: object) -> None:
                    name = format_yarn(name_c(rt, frame))
                    index = _as_index(index_c(rt, frame), pos)
                    pe = _require_target(rt, name, pos)
                    obj = rt.ctx.world.heap.lookup(name)
                    rt.ctx.put(
                        name,
                        coerce_element(value, obj.lol_type, name, pos),
                        pe,
                        index=index,
                    )

                return run_srs_ur
            snap = scope.snapshot()

            def run_srs(rt: _Runtime, frame: list, value: object) -> None:
                name = format_yarn(name_c(rt, frame))
                index = _as_index(index_c(rt, frame), pos)
                _dyn_write_element(rt, frame, snap, name, index, value, pos)

            return run_srs
        name = base.name
        if base.qualifier == "UR":

            def run_ur(rt: _Runtime, frame: list, value: object) -> None:
                index = _as_index(index_c(rt, frame), pos)
                pe = _require_target(rt, name, pos)
                obj = rt.ctx.world.heap.lookup(name)
                rt.ctx.put(
                    name,
                    coerce_element(value, obj.lol_type, name, pos),
                    pe,
                    index=index,
                )

            return run_ur
        info = scope.lookup(name)
        if info is None:
            raiser = self._raise_name(name, pos)

            def run_missing(rt: _Runtime, frame: list, value: object) -> None:
                raiser(rt, frame)

            return run_missing
        if info.kind == LOCAL and info.fallback is not None:
            # Pre-declared loop-body binding: resolve at runtime.
            fsnap = {name: info}

            def run_fb(rt: _Runtime, frame: list, value: object) -> None:
                index = _as_index(index_c(rt, frame), pos)
                _dyn_write_element(rt, frame, fsnap, name, index, value, pos)

            return run_fb
        if info.kind == SYMMETRIC:

            def run_sym(rt: _Runtime, frame: list, value: object) -> None:
                index = _as_index(index_c(rt, frame), pos)
                obj = rt.ctx.world.heap.lookup(name)
                rt.ctx.local_write(
                    name,
                    coerce_element(value, obj.lol_type, name, pos),
                    index=index,
                )

            return run_sym
        if not info.is_array:

            def run_not_array(rt: _Runtime, frame: list, value: object) -> None:
                raise LolTypeError(f"'{name}' is not an array", pos)

            return run_not_array
        slot = info.slot
        elem_t = info.static_type or LolType.NUMBAR
        if info.kind == GLOBAL:

            def run_global(rt: _Runtime, frame: list, value: object) -> None:
                cell = rt.gframe[slot]
                if cell is UNDECLARED:
                    raise _undeclared(name, pos)
                index = _as_index(index_c(rt, frame), pos)
                value = coerce_static(value, elem_t, name, pos)
                try:
                    cell.write(index, value)
                except LolRuntimeError as exc:
                    raise LolRuntimeError(f"{name}: {exc.message}", pos) from exc

            return run_global
        simple = self._simple_operand(target.index, scope)
        if simple is not None and simple[0] == "slot":
            islot = simple[1]

            def run_s(rt: _Runtime, frame: list, value: object) -> None:
                index = frame[islot]
                if type(index) is not int:
                    index = to_numbr(index, pos)
                value = coerce_static(value, elem_t, name, pos)
                try:
                    frame[slot].write(index, value)
                except LolRuntimeError as exc:
                    raise LolRuntimeError(f"{name}: {exc.message}", pos) from exc

            return run_s

        def run(rt: _Runtime, frame: list, value: object) -> None:
            index = _as_index(index_c(rt, frame), pos)
            value = coerce_static(value, elem_t, name, pos)
            try:
                frame[slot].write(index, value)
            except LolRuntimeError as exc:
                raise LolRuntimeError(f"{name}: {exc.message}", pos) from exc

        return run


def compile_program(
    program: ast.Program, *, count_flops: bool = False
) -> CompiledProgram:
    """Compile ``program`` once; the result is shareable across PEs."""
    return ClosureCompiler(program, count_flops=count_flops).compile()
