"""Lexical environments for the interpreter.

LOLCODE requires declaration (``I HAS A``) before use; assignment to an
undeclared name is an error.  Scoping is a simple chain:

* one global scope per PE;
* one scope per function call (parameters live there; the enclosing global
  scope remains readable/writable when not shadowed);
* one scope per loop (the ``UPPIN YR i`` counter is loop-local, per the
  1.2 spec — the paper's n-body reuses ``i``/``j``/``k`` freely this way).

A binding is a :class:`Binding` carrying the value plus the static-type
metadata introduced by the paper's ``ITZ SRSLY A <type>`` extension, and a
marker for symmetric (``WE HAS A``) variables whose storage actually lives
in the symmetric heap rather than in the environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang.errors import LolNameError, SourcePos
from ..lang.types import LolType


class _Undeclared:
    """Sentinel filling closure-engine frame slots before their ``I HAS A``
    executes (a lexically resolved slot is not yet *declared* until its
    declaration statement actually runs — reads raise ``LolNameError``
    exactly like the tree-walker's missing-binding path)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<undeclared>"


#: The shared sentinel instance; compare with ``is``.
UNDECLARED = _Undeclared()


def new_frame(n_slots: int) -> list:
    """A closure-engine frame: slot 0 is ``IT`` (NOOB), the rest undeclared."""
    frame = [UNDECLARED] * n_slots
    frame[0] = None
    return frame


@dataclass(slots=True)
class Binding:
    value: object = None
    static_type: Optional[LolType] = None  # None => dynamically typed
    is_array: bool = False
    symmetric: bool = False  # storage lives in the symmetric heap


class Env:
    __slots__ = ("vars", "parent")

    def __init__(self, parent: Optional["Env"] = None) -> None:
        self.vars: dict[str, Binding] = {}
        self.parent = parent

    def declare(self, name: str, binding: Binding, pos: SourcePos | None = None) -> None:
        # Redeclaration in the same scope replaces the binding (matches the
        # reference lci interpreter, which treats it as a fresh variable).
        self.vars[name] = binding

    def find(self, name: str) -> Optional[Binding]:
        env: Optional[Env] = self
        while env is not None:
            b = env.vars.get(name)
            if b is not None:
                return b
            env = env.parent
        return None

    def lookup(self, name: str, pos: SourcePos | None = None) -> Binding:
        b = self.find(name)
        if b is None:
            raise LolNameError(
                f"variable '{name}' has not been declared (I HAS A {name})", pos
            )
        return b

    def is_declared(self, name: str) -> bool:
        return self.find(name) is not None

    def child(self) -> "Env":
        return Env(self)
