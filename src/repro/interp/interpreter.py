"""SPMD-aware tree-walking interpreter for extended LOLCODE.

One :class:`Interpreter` instance runs per PE, all attached to the same
:class:`~repro.shmem.api.World` through per-PE
:class:`~repro.shmem.api.ShmemContext` handles.  All parallel semantics —
symmetric allocation, ``HUGZ`` barriers, ``TXT MAH BFF`` predication with
``UR``/``MAH`` addressing, and the implied locks of ``IM SHARIN IT`` —
delegate to the context, so the interpreter is executor-agnostic (threads,
processes, or a 1-PE serial world).

Design notes
------------

* ``IT`` is per call frame, as in the reference lci interpreter.
* ``GTFO`` and ``FOUND YR`` are implemented as control-flow exceptions.
* The ``TXT MAH BFF`` target PE is interpreter state saved/restored around
  each predicated statement or block; ``UR`` references outside a
  predicated region raise :class:`~repro.lang.errors.LolParallelError`.
* When op tracing is enabled the interpreter also counts floating-point
  work per operator (``FLOP_COST``) to feed the NoC performance model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..lang import ast
from ..lang.errors import (
    LolNameError,
    LolParallelError,
    LolRuntimeError,
    LolTypeError,
    SourcePos,
)
from ..lang.types import (
    LolType,
    cast as cast_value,
    coerce_static,
    default_value,
    format_yarn,
    parse_type,
    to_array_size,
    to_numbr,
    to_troof,
    type_of,
)
from ..shmem.api import ShmemContext, serial_context
from ..shmem.heap import ArrayCell
from .env import Binding, Env
from .values import FLOP_COST, binop, equals, naryop, unop

#: Libraries accepted by ``CAN HAS <lib>?`` (all are no-ops at runtime, as
#: in the paper: STDIO et al. exist so the famous ``CAN HAS STDIO?`` line
#: parses; the parallel runtime is always linked).
KNOWN_LIBRARIES = {"STDIO", "STRING", "SOCKS", "STDLIB", "SHMEM"}


class _Break(Exception):
    """GTFO."""


class _Return(Exception):
    """FOUND YR <expr>."""

    def __init__(self, value: object) -> None:
        self.value = value
        super().__init__()


class Interpreter:
    def __init__(
        self,
        program: ast.Program,
        ctx: Optional[ShmemContext] = None,
        *,
        max_steps: Optional[int] = None,
    ) -> None:
        self.program = program
        self.ctx = ctx if ctx is not None else serial_context()
        self.globals = Env()
        self.functions: dict[str, ast.FuncDef] = {}
        self.libraries: set[str] = set()
        self.target_pe: Optional[int] = None
        self.it: object = None
        self.max_steps = max_steps
        self._steps = 0
        # Tracing is decided once, here ("compile time" for a tree-walker):
        # the traced dispatch table carries the FLOP-accounting operator
        # handlers, so the untraced hot path performs no per-op trace
        # checks or attribute lookups at all.
        self._expr_dispatch = (
            _EXPR_DISPATCH_TRACED if self.ctx.trace is not None else _EXPR_DISPATCH
        )

    # -- entry point -----------------------------------------------------------

    def run(self) -> None:
        # Hoist top-level function definitions so call sites may precede
        # definitions textually (matches lci).
        for stmt in self.program.body:
            if isinstance(stmt, ast.FuncDef):
                self.functions[stmt.name] = stmt
        self.exec_block(self.program.body, self.globals)

    # -- statements ---------------------------------------------------------------

    def exec_block(self, stmts: list[ast.Stmt], env: Env) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def _step(self, pos: SourcePos) -> None:
        self._steps += 1
        if self._steps > self.max_steps:  # type: ignore[operator]
            raise LolRuntimeError(
                f"program exceeded {self.max_steps} statement steps", pos
            )

    def exec_stmt(self, stmt: ast.Stmt, env: Env) -> None:
        if self.max_steps is not None:
            self._step(stmt.pos)
        method = _STMT_DISPATCH.get(type(stmt))
        if method is None:
            raise LolRuntimeError(
                f"statement {type(stmt).__name__} not implemented", stmt.pos
            )
        method(self, stmt, env)

    def _exec_var_decl(self, stmt: ast.VarDecl, env: Env) -> None:
        declared_type = (
            parse_type(stmt.static_type, stmt.pos) if stmt.static_type else None
        )
        if stmt.scope == "WE":
            self._exec_symmetric_decl(stmt, declared_type)
            return
        if stmt.is_array:
            size = to_array_size(self.eval(stmt.size, env), stmt.pos)
            if size <= 0:
                raise LolRuntimeError(
                    f"array '{stmt.name}' must have positive size, got {size}",
                    stmt.pos,
                )
            cell = ArrayCell(declared_type or LolType.NUMBAR, size)
            env.declare(
                stmt.name,
                Binding(cell, static_type=declared_type, is_array=True),
                stmt.pos,
            )
            return
        if stmt.init is not None:
            value = self.eval(stmt.init, env)
            if declared_type is not None:
                value = coerce_static(value, declared_type, stmt.name, stmt.pos)
        elif declared_type is not None:
            value = default_value(declared_type)
        else:
            value = None  # NOOB
        env.declare(stmt.name, Binding(value, static_type=declared_type), stmt.pos)

    def _exec_symmetric_decl(
        self, stmt: ast.VarDecl, declared_type: Optional[LolType]
    ) -> None:
        if declared_type is None:
            raise LolParallelError(
                f"symmetric variable '{stmt.name}' must be typed "
                f"(WE HAS A {stmt.name} ITZ SRSLY A <type> ...)",
                stmt.pos,
            )
        if stmt.is_array:
            size = to_array_size(self.eval(stmt.size, self.globals), stmt.pos)
            self.ctx.alloc_array(
                stmt.name, declared_type, size, has_lock=stmt.shared_lock
            )
        else:
            self.ctx.alloc_scalar(
                stmt.name, declared_type, has_lock=stmt.shared_lock
            )
        self.globals.declare(
            stmt.name,
            Binding(
                None,
                static_type=declared_type,
                is_array=stmt.is_array,
                symmetric=True,
            ),
            stmt.pos,
        )
        if stmt.init is not None:
            value = self.eval(stmt.init, self.globals)
            value = coerce_static(value, declared_type, stmt.name, stmt.pos)
            self.ctx.local_write(stmt.name, value)

    def _exec_assign(self, stmt: ast.Assign, env: Env) -> None:
        value = self.eval(stmt.value, env)
        self.assign_target(stmt.target, value, env)

    def _exec_cast_stmt(self, stmt: ast.CastStmt, env: Env) -> None:
        to_type = parse_type(stmt.to_type, stmt.pos)
        current = self.eval(stmt.target, env)
        self.assign_target(stmt.target, cast_value(current, to_type, stmt.pos), env)

    def _exec_expr_stmt(self, stmt: ast.ExprStmt, env: Env) -> None:
        self.it = self.eval(stmt.expr, env)

    def _exec_visible(self, stmt: ast.Visible, env: Env) -> None:
        parts = [display_value(self.eval(a, env), a.pos) for a in stmt.args]
        self.ctx.emit("".join(parts) + ("\n" if stmt.newline else ""))

    def _exec_gimmeh(self, stmt: ast.Gimmeh, env: Env) -> None:
        line = self.ctx.read_line()
        self.assign_target(stmt.target, line, env)

    def _exec_can_has(self, stmt: ast.CanHas, env: Env) -> None:
        lib = stmt.library.upper()
        if lib not in KNOWN_LIBRARIES:
            raise LolRuntimeError(f"CAN HAS {stmt.library}?: unknown library", stmt.pos)
        self.libraries.add(lib)

    def _exec_if(self, stmt: ast.If, env: Env) -> None:
        if to_troof(self.it):
            self.exec_block(stmt.ya_rly, env.child())
            return
        for cond, body in stmt.mebbe:
            if to_troof(self.eval(cond, env)):
                self.exec_block(body, env.child())
                return
        self.exec_block(stmt.no_wai, env.child())

    def _exec_switch(self, stmt: ast.Switch, env: Env) -> None:
        scrutinee = self.it
        match_idx: Optional[int] = None
        for i, (literal, _) in enumerate(stmt.cases):
            if equals(scrutinee, self.eval(literal, env)):
                match_idx = i
                break
        try:
            if match_idx is not None:
                # C-style fallthrough until GTFO.
                for _, body in stmt.cases[match_idx:]:
                    self.exec_block(body, env.child())
                self.exec_block(stmt.default, env.child())
            else:
                self.exec_block(stmt.default, env.child())
        except _Break:
            pass

    def _exec_loop(self, stmt: ast.Loop, env: Env) -> None:
        loop_env = env.child()
        counter: Optional[Binding] = None
        if stmt.var is not None:
            counter = Binding(0, static_type=LolType.NUMBR)
            loop_env.declare(stmt.var, counter, stmt.pos)
        while True:
            # Loop iterations count as steps even when the body is empty,
            # so max_steps bounds condition-driven spins too.
            if self.max_steps is not None:
                self._step(stmt.pos)
            if stmt.cond is not None:
                flag = to_troof(self.eval(stmt.cond, loop_env))
                if stmt.cond_kind == "TIL" and flag:
                    break
                if stmt.cond_kind == "WILE" and not flag:
                    break
            try:
                self.exec_block(stmt.body, loop_env)
            except _Break:
                break
            if counter is not None:
                step = 1 if stmt.op == "UPPIN" else -1
                counter.value = to_numbr(counter.value, stmt.pos) + step
            elif stmt.cond is None:
                raise LolRuntimeError(
                    f"loop '{stmt.label}' has no counter, no condition and "
                    f"no GTFO: it would never terminate",
                    stmt.pos,
                )

    def _exec_gtfo(self, stmt: ast.Gtfo, env: Env) -> None:
        raise _Break()

    def _exec_func_def(self, stmt: ast.FuncDef, env: Env) -> None:
        self.functions[stmt.name] = stmt

    def _exec_return(self, stmt: ast.Return, env: Env) -> None:
        raise _Return(self.eval(stmt.expr, env))

    def _exec_hugz(self, stmt: ast.Hugz, env: Env) -> None:
        self.ctx.barrier_all()

    def _exec_lock(self, stmt: ast.LockStmt, env: Env) -> None:
        name = self._lock_symbol(stmt.target, env)
        if stmt.kind == "lock":
            self.ctx.set_lock(name)
        elif stmt.kind == "trylock":
            self.it = self.ctx.test_lock(name)
        else:
            self.ctx.clear_lock(name)

    def _exec_txt(self, stmt: ast.TxtStmt, env: Env) -> None:
        pe = to_numbr(self.eval(stmt.pe, env), stmt.pos)
        if not 0 <= pe < self.ctx.n_pes:
            raise LolParallelError(
                f"TXT MAH BFF {pe}: PE out of range [0, {self.ctx.n_pes})",
                stmt.pos,
            )
        saved = self.target_pe
        self.target_pe = pe
        try:
            self.exec_block(stmt.body, env)
        finally:
            self.target_pe = saved

    # -- expressions -----------------------------------------------------------------

    def eval(self, node: ast.Expr, env: Env) -> object:
        method = self._expr_dispatch.get(type(node))
        if method is None:
            raise LolRuntimeError(
                f"expression {type(node).__name__} not implemented", node.pos
            )
        return method(self, node, env)

    def _eval_int(self, node: ast.IntLit, env: Env) -> object:
        return node.value

    def _eval_float(self, node: ast.FloatLit, env: Env) -> object:
        return node.value

    def _eval_string(self, node: ast.StringLit, env: Env) -> object:
        out: list[str] = []
        for part in node.parts:
            if isinstance(part, str):
                out.append(part)
            else:
                _, name = part
                out.append(
                    format_yarn(self._read_var(name, None, env, node.pos))
                )
        return "".join(out)

    def _eval_troof(self, node: ast.TroofLit, env: Env) -> object:
        return node.value

    def _eval_noob(self, node: ast.NoobLit, env: Env) -> object:
        return None

    def _eval_it(self, node: ast.ItRef, env: Env) -> object:
        return self.it

    def _eval_me(self, node: ast.MeExpr, env: Env) -> object:
        return self.ctx.my_pe

    def _eval_frenz(self, node: ast.FrenzExpr, env: Env) -> object:
        return self.ctx.n_pes

    def _eval_random(self, node: ast.RandomExpr, env: Env) -> object:
        if node.kind == "int":
            return self.ctx.rng.randrange(0, 2**31 - 1)  # rand()
        return self.ctx.rng.random()  # randf()

    def _eval_binop(self, node: ast.BinOp, env: Env) -> object:
        lhs = self.eval(node.lhs, env)
        rhs = self.eval(node.rhs, env)
        return binop(node.op, lhs, rhs, node.pos)

    def _eval_binop_traced(self, node: ast.BinOp, env: Env) -> object:
        lhs = self.eval(node.lhs, env)
        rhs = self.eval(node.rhs, env)
        self.ctx.add_flops(FLOP_COST.get(node.op, 0))
        return binop(node.op, lhs, rhs, node.pos)

    def _eval_unop(self, node: ast.UnaryOp, env: Env) -> object:
        operand = self.eval(node.operand, env)
        return unop(node.op, operand, node.pos)

    def _eval_unop_traced(self, node: ast.UnaryOp, env: Env) -> object:
        operand = self.eval(node.operand, env)
        self.ctx.add_flops(FLOP_COST.get(node.op, 0))
        return unop(node.op, operand, node.pos)

    def _eval_naryop(self, node: ast.NaryOp, env: Env) -> object:
        values = [self.eval(e, env) for e in node.operands]
        return naryop(node.op, values, node.pos)

    def _eval_cast(self, node: ast.Cast, env: Env) -> object:
        return cast_value(
            self.eval(node.expr, env), parse_type(node.to_type, node.pos), node.pos
        )

    def _eval_var(self, node: ast.VarRef, env: Env) -> object:
        return self._read_var(node.name, node.qualifier, env, node.pos)

    def _eval_srs(self, node: ast.SrsRef, env: Env) -> object:
        name = format_yarn(self.eval(node.expr, env))
        return self._read_var(name, node.qualifier, env, node.pos)

    def _eval_index(self, node: ast.Index, env: Env) -> object:
        name, qualifier = self._target_name(node.base, env)
        index = to_numbr(self.eval(node.index, env), node.pos)
        return self._read_element(name, qualifier, index, env, node.pos)

    def _eval_call(self, node: ast.FuncCall, env: Env) -> object:
        func = self.functions.get(node.name)
        if func is None:
            raise LolNameError(f"no function named '{node.name}'", node.pos)
        if len(node.args) != len(func.params):
            raise LolRuntimeError(
                f"function '{node.name}' wants {len(func.params)} arguments, "
                f"got {len(node.args)}",
                node.pos,
            )
        args = [self.eval(a, env) for a in node.args]
        call_env = self.globals.child()
        for param, value in zip(func.params, args):
            call_env.declare(param, Binding(value), node.pos)
        saved_it = self.it
        self.it = None
        try:
            self.exec_block(func.body, call_env)
            result: object = self.it  # fall off the end: IT is returned
        except _Return as ret:
            result = ret.value
        except _Break:
            result = None  # GTFO in a function returns NOOB
        finally:
            self.it = saved_it
        return result

    # -- variable plumbing ---------------------------------------------------------

    def _target_name(
        self, base: ast.VarRef | ast.SrsRef, env: Env
    ) -> tuple[str, Optional[str]]:
        if isinstance(base, ast.VarRef):
            return base.name, base.qualifier
        name = format_yarn(self.eval(base.expr, env))
        return name, base.qualifier

    def _require_remote(self, name: str, pos: SourcePos) -> int:
        if self.target_pe is None:
            raise LolParallelError(
                f"'UR {name}' used outside a TXT MAH BFF predicated "
                f"statement or block",
                pos,
            )
        return self.target_pe

    def _read_var(
        self, name: str, qualifier: Optional[str], env: Env, pos: SourcePos
    ) -> object:
        if qualifier == "UR":
            pe = self._require_remote(name, pos)
            return self.ctx.get(name, pe)
        binding = env.lookup(name, pos)
        if binding.symmetric:
            return self.ctx.local_read(name)
        if binding.is_array:
            raise LolTypeError(
                f"'{name}' is an array: index it with {name}'Z <expr>", pos
            )
        return binding.value

    def _read_element(
        self,
        name: str,
        qualifier: Optional[str],
        index: int,
        env: Env,
        pos: SourcePos,
    ) -> object:
        if qualifier == "UR":
            pe = self._require_remote(name, pos)
            return self.ctx.get(name, pe, index=index)
        binding = env.lookup(name, pos)
        if binding.symmetric:
            return self.ctx.local_read(name, index=index)
        if not binding.is_array:
            raise LolTypeError(f"'{name}' is not an array", pos)
        cell: ArrayCell = binding.value  # type: ignore[assignment]
        try:
            return cell.read(index)
        except LolRuntimeError as exc:
            raise LolRuntimeError(f"{name}: {exc.message}", pos) from exc

    def assign_target(self, target: ast.Expr, value: object, env: Env) -> None:
        pos = target.pos
        if isinstance(target, ast.Index):
            name, qualifier = self._target_name(target.base, env)
            index = to_numbr(self.eval(target.index, env), pos)
            self._write_element(name, qualifier, index, value, env, pos)
            return
        if isinstance(target, (ast.VarRef, ast.SrsRef)):
            name, qualifier = self._target_name(target, env)
            self._write_var(name, qualifier, value, env, pos)
            return
        raise LolRuntimeError("invalid assignment target", pos)

    def _write_var(
        self,
        name: str,
        qualifier: Optional[str],
        value: object,
        env: Env,
        pos: SourcePos,
    ) -> None:
        if qualifier == "UR":
            pe = self._require_remote(name, pos)
            self.ctx.put(name, coerce_symmetric(self.ctx, name, value, pos), pe)
            return
        binding = env.lookup(name, pos)
        if binding.symmetric:
            self.ctx.local_write(name, coerce_symmetric(self.ctx, name, value, pos))
            return
        if binding.is_array:
            cell: ArrayCell = binding.value  # type: ignore[assignment]
            write_whole_array(cell, value, name, pos)
            return
        if binding.static_type is not None:
            value = coerce_static(value, binding.static_type, name, pos)
        elif not is_scalar_value(value):
            raise LolTypeError(
                f"cannot assign an array value to scalar '{name}'", pos
            )
        binding.value = value

    def _write_element(
        self,
        name: str,
        qualifier: Optional[str],
        index: int,
        value: object,
        env: Env,
        pos: SourcePos,
    ) -> None:
        if qualifier == "UR":
            pe = self._require_remote(name, pos)
            obj = self.ctx.world.heap.lookup(name)
            value = coerce_element(value, obj.lol_type, name, pos)
            self.ctx.put(name, value, pe, index=index)
            return
        binding = env.lookup(name, pos)
        if binding.symmetric:
            obj = self.ctx.world.heap.lookup(name)
            value = coerce_element(value, obj.lol_type, name, pos)
            self.ctx.local_write(name, value, index=index)
            return
        if not binding.is_array:
            raise LolTypeError(f"'{name}' is not an array", pos)
        cell: ArrayCell = binding.value  # type: ignore[assignment]
        value = coerce_element(value, cell.lol_type, name, pos)
        try:
            cell.write(index, value)
        except LolRuntimeError as exc:
            raise LolRuntimeError(f"{name}: {exc.message}", pos) from exc


    def _lock_symbol(self, target: ast.VarRef | ast.SrsRef, env: Env) -> str:
        """Resolve the symbol a lock statement protects.

        Per Table II the lock is *global* and associated with the symbol,
        so the ``UR``/``MAH`` qualifier (accepted, see the Section VI.B
        listing which writes ``IM MESIN WIF UR x``) does not change which
        lock is taken.
        """
        name, _qualifier = self._target_name(target, env)
        if not self.ctx.is_symmetric(name):
            raise LolParallelError(
                f"cannot lock '{name}': it is not a shared symmetric "
                f"variable (WE HAS A {name} ... AN IM SHARIN IT)",
                target.pos,
            )
        return name


def _scalarize(v: object) -> object:
    if isinstance(v, np.integer):
        return int(v)
    if isinstance(v, np.floating):
        return float(v)
    if isinstance(v, np.bool_):
        return bool(v)
    return v


# ---------------------------------------------------------------------------
# Value plumbing shared by both interpreter engines (the tree-walker here
# and the closure engine in .closures); one copy so semantics cannot drift.
# ---------------------------------------------------------------------------

_SCALAR_TYPES = frozenset((int, float, str, bool, type(None)))


def is_scalar_value(value: object) -> bool:
    if type(value) in _SCALAR_TYPES:
        return True
    return not isinstance(value, (list, np.ndarray, ArrayCell))


def display_value(value: object, pos: SourcePos) -> str:
    """Render one VISIBLE argument (arrays print space-separated)."""
    if isinstance(value, (list, np.ndarray)):
        return " ".join(format_yarn(_scalarize(v)) for v in value)
    try:
        return format_yarn(value)
    except LolTypeError as exc:
        raise LolTypeError(f"VISIBLE: {exc.message}", pos) from exc


def write_whole_array(
    cell: ArrayCell, value: object, name: str, pos: SourcePos
) -> None:
    if not isinstance(value, (list, np.ndarray)):
        raise LolTypeError(
            f"cannot assign a scalar to whole array '{name}' "
            f"(index it with {name}'Z <expr>)",
            pos,
        )
    if len(value) != len(cell):
        raise LolRuntimeError(
            f"array length mismatch assigning to '{name}': "
            f"{len(value)} vs {len(cell)}",
            pos,
        )
    cell.write_all(value)


def coerce_element(
    value: object, lol_type: Optional[LolType], name: str, pos: SourcePos
) -> object:
    if lol_type is None:
        return value
    return coerce_static(value, lol_type, name, pos)


def coerce_symmetric(
    ctx: ShmemContext, name: str, value: object, pos: SourcePos
) -> object:
    """Coerce a value headed for symmetric storage of ``name``."""
    obj = ctx.world.heap.lookup(name)
    if obj.is_array:
        if not isinstance(value, (list, np.ndarray)):
            raise LolTypeError(
                f"cannot assign a scalar to whole symmetric array "
                f"'{name}'",
                pos,
            )
        if len(value) != obj.size:
            raise LolRuntimeError(
                f"array length mismatch assigning to '{name}': "
                f"{len(value)} vs {obj.size}",
                pos,
            )
        return value
    return coerce_element(value, obj.lol_type, name, pos)


_STMT_DISPATCH = {
    ast.VarDecl: Interpreter._exec_var_decl,
    ast.Assign: Interpreter._exec_assign,
    ast.CastStmt: Interpreter._exec_cast_stmt,
    ast.ExprStmt: Interpreter._exec_expr_stmt,
    ast.Visible: Interpreter._exec_visible,
    ast.Gimmeh: Interpreter._exec_gimmeh,
    ast.CanHas: Interpreter._exec_can_has,
    ast.If: Interpreter._exec_if,
    ast.Switch: Interpreter._exec_switch,
    ast.Loop: Interpreter._exec_loop,
    ast.Gtfo: Interpreter._exec_gtfo,
    ast.FuncDef: Interpreter._exec_func_def,
    ast.Return: Interpreter._exec_return,
    ast.Hugz: Interpreter._exec_hugz,
    ast.LockStmt: Interpreter._exec_lock,
    ast.TxtStmt: Interpreter._exec_txt,
}

_EXPR_DISPATCH = {
    ast.IntLit: Interpreter._eval_int,
    ast.FloatLit: Interpreter._eval_float,
    ast.StringLit: Interpreter._eval_string,
    ast.TroofLit: Interpreter._eval_troof,
    ast.NoobLit: Interpreter._eval_noob,
    ast.ItRef: Interpreter._eval_it,
    ast.MeExpr: Interpreter._eval_me,
    ast.FrenzExpr: Interpreter._eval_frenz,
    ast.RandomExpr: Interpreter._eval_random,
    ast.BinOp: Interpreter._eval_binop,
    ast.UnaryOp: Interpreter._eval_unop,
    ast.NaryOp: Interpreter._eval_naryop,
    ast.Cast: Interpreter._eval_cast,
    ast.VarRef: Interpreter._eval_var,
    ast.SrsRef: Interpreter._eval_srs,
    ast.Index: Interpreter._eval_index,
    ast.FuncCall: Interpreter._eval_call,
}

#: Dispatch table used when op tracing is enabled: identical except the
#: operator handlers also account FLOPs toward the NoC model.
_EXPR_DISPATCH_TRACED = {
    **_EXPR_DISPATCH,
    ast.BinOp: Interpreter._eval_binop_traced,
    ast.UnaryOp: Interpreter._eval_unop_traced,
}


def interpret(
    source: str,
    ctx: Optional[ShmemContext] = None,
    *,
    filename: str = "<string>",
    max_steps: Optional[int] = None,
) -> ShmemContext:
    """Parse and run ``source`` on a single context (serial by default).

    Returns the context so callers can inspect ``ctx.output``.
    """
    from ..lang.parser import parse

    program = parse(source, filename)
    ctx = ctx if ctx is not None else serial_context()
    Interpreter(program, ctx, max_steps=max_steps).run()
    return ctx


def run_serial(source: str, **kwargs) -> str:
    """Run ``source`` on one PE and return its VISIBLE output."""
    return interpret(source, **kwargs).output
