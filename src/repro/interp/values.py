"""Operator semantics for LOLCODE values.

Centralises the behaviour of every Table I operator and Table III math
extension so the interpreter and the compiled-Python backend share one
implementation (they are differentially tested against each other).

Numeric rules follow the lci reference interpreter the paper extends:

* arithmetic casts YARN operands that look like numbers;
* if either operand is (or casts to) NUMBAR the result is NUMBAR,
  otherwise NUMBR;
* NUMBR division and modulo truncate toward zero (C semantics — the
  paper's backend is C);
* ``BOTH SAEM``/``DIFFRINT`` compare numerically across NUMBR/NUMBAR,
  and by value within a type; comparing a YARN with a NUMBR is FAIL
  rather than an error (1.2 behaviour).
"""

from __future__ import annotations

import math

from ..lang.errors import LolRuntimeError, LolTypeError, SourcePos
from ..lang.types import (
    LolType,
    format_yarn,
    to_numbar,
    to_numbr,
    to_troof,
    type_of,
)

_NUMERIC = (LolType.NUMBR, LolType.NUMBAR)


def _as_number(value: object, pos: SourcePos | None) -> int | float:
    """Cast an operand to NUMBR/NUMBAR for arithmetic."""
    t = type_of(value)
    if t is LolType.NUMBR or t is LolType.NUMBAR:
        return value  # type: ignore[return-value]
    if t is LolType.TROOF:
        return 1 if value else 0
    if t is LolType.YARN:
        s = str(value).strip()
        try:
            if any(c in s for c in ".eE") and not s.lstrip("+-").isdigit():
                return float(s)
            return int(s)
        except ValueError:
            try:
                return float(s)
            except ValueError as exc:
                raise LolTypeError(
                    f"cannot use YARN {value!r} as a number", pos
                ) from exc
    raise LolTypeError(f"cannot use {t} value in arithmetic", pos)


def _trunc_div(a: int, b: int) -> int:
    """C-style integer division (truncate toward zero)."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def arith(op: str, lhs: object, rhs: object, pos: SourcePos | None = None) -> object:
    a = _as_number(lhs, pos)
    b = _as_number(rhs, pos)
    both_int = isinstance(a, int) and isinstance(b, int)
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        if b == 0:
            raise LolRuntimeError("QUOSHUNT OF: division by zero", pos)
        return _trunc_div(a, b) if both_int else a / b
    if op == "mod":
        if b == 0:
            raise LolRuntimeError("MOD OF: division by zero", pos)
        if both_int:
            return a - _trunc_div(a, b) * b
        return math.fmod(a, b)
    if op == "max":
        return a if a >= b else b
    if op == "min":
        return a if a <= b else b
    raise LolRuntimeError(f"unknown arithmetic op {op!r}", pos)


def equals(lhs: object, rhs: object) -> bool:
    ta, tb = type_of(lhs), type_of(rhs)
    if ta in _NUMERIC and tb in _NUMERIC:
        return float(lhs) == float(rhs)  # type: ignore[arg-type]
    if ta is not tb:
        return False
    return lhs == rhs


def compare(op: str, lhs: object, rhs: object, pos: SourcePos | None = None) -> bool:
    """The paper's Table I comparison keywords ``BIGGER`` / ``SMALLR``."""
    a = _as_number(lhs, pos)
    b = _as_number(rhs, pos)
    return a > b if op == "gt" else a < b


def binop(op: str, lhs: object, rhs: object, pos: SourcePos | None = None) -> object:
    if op in ("add", "sub", "mul", "div", "mod", "max", "min"):
        return arith(op, lhs, rhs, pos)
    if op == "eq":
        return equals(lhs, rhs)
    if op == "ne":
        return not equals(lhs, rhs)
    if op in ("gt", "lt"):
        return compare(op, lhs, rhs, pos)
    if op == "and":
        return to_troof(lhs) and to_troof(rhs)
    if op == "or":
        return to_troof(lhs) or to_troof(rhs)
    if op == "xor":
        return to_troof(lhs) != to_troof(rhs)
    raise LolRuntimeError(f"unknown binary op {op!r}", pos)


def unop(op: str, value: object, pos: SourcePos | None = None) -> object:
    if op == "not":
        return not to_troof(value)
    if op == "square":  # SQUAR OF: var * var (Table III)
        v = _as_number(value, pos)
        return v * v
    if op == "sqrt":  # UNSQUAR OF: sqrt(var)
        v = to_numbar(value, pos)
        if v < 0:
            raise LolRuntimeError("UNSQUAR OF: negative operand", pos)
        return math.sqrt(v)
    if op == "recip":  # FLIP OF: 1/var
        v = to_numbar(value, pos)
        if v == 0.0:
            raise LolRuntimeError("FLIP OF: division by zero", pos)
        return 1.0 / v
    raise LolRuntimeError(f"unknown unary op {op!r}", pos)


def naryop(op: str, values: list[object], pos: SourcePos | None = None) -> object:
    if op == "all":
        return all(to_troof(v) for v in values)
    if op == "any":
        return any(to_troof(v) for v in values)
    if op == "smoosh":
        return "".join(format_yarn(v) for v in values)
    raise LolRuntimeError(f"unknown n-ary op {op!r}", pos)


#: Estimated floating point work per operator, for the NoC performance
#: model (``FLIP OF UNSQUAR OF`` dominates the n-body inner loop).
FLOP_COST = {
    "add": 1,
    "sub": 1,
    "mul": 1,
    "div": 1,
    "mod": 1,
    "max": 1,
    "min": 1,
    "square": 1,
    "sqrt": 4,
    "recip": 1,
}
