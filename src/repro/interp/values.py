"""Operator semantics for LOLCODE values.

Centralises the behaviour of every Table I operator and Table III math
extension so the interpreter and the compiled-Python backend share one
implementation (they are differentially tested against each other).

Numeric rules follow the lci reference interpreter the paper extends:

* arithmetic casts YARN operands that look like numbers;
* if either operand is (or casts to) NUMBAR the result is NUMBAR,
  otherwise NUMBR;
* NUMBR division and modulo truncate toward zero (C semantics — the
  paper's backend is C);
* ``BOTH SAEM``/``DIFFRINT`` compare numerically across NUMBR/NUMBAR,
  and by value within a type; comparing a YARN with a NUMBR is FAIL
  rather than an error (1.2 behaviour).
"""

from __future__ import annotations

import math

from ..lang.errors import LolRuntimeError, LolTypeError, SourcePos
from ..lang.types import (
    LolType,
    format_yarn,
    to_numbar,
    to_numbr,
    to_troof,
    type_of,
)

_NUMERIC = (LolType.NUMBR, LolType.NUMBAR)


def _as_number(value: object, pos: SourcePos | None) -> int | float:
    """Cast an operand to NUMBR/NUMBAR for arithmetic."""
    t = type_of(value)
    if t is LolType.NUMBR or t is LolType.NUMBAR:
        return value  # type: ignore[return-value]
    if t is LolType.TROOF:
        return 1 if value else 0
    if t is LolType.YARN:
        s = str(value).strip()
        try:
            if any(c in s for c in ".eE") and not s.lstrip("+-").isdigit():
                return float(s)
            return int(s)
        except ValueError:
            try:
                return float(s)
            except ValueError as exc:
                raise LolTypeError(
                    f"cannot use YARN {value!r} as a number", pos
                ) from exc
    raise LolTypeError(f"cannot use {t} value in arithmetic", pos)


def _trunc_div(a: int, b: int) -> int:
    """C-style integer division (truncate toward zero)."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def arith(op: str, lhs: object, rhs: object, pos: SourcePos | None = None) -> object:
    a = _as_number(lhs, pos)
    b = _as_number(rhs, pos)
    both_int = isinstance(a, int) and isinstance(b, int)
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        if b == 0:
            raise LolRuntimeError("QUOSHUNT OF: division by zero", pos)
        return _trunc_div(a, b) if both_int else a / b
    if op == "mod":
        if b == 0:
            raise LolRuntimeError("MOD OF: division by zero", pos)
        if both_int:
            return a - _trunc_div(a, b) * b
        return math.fmod(a, b)
    if op == "max":
        return a if a >= b else b
    if op == "min":
        return a if a <= b else b
    raise LolRuntimeError(f"unknown arithmetic op {op!r}", pos)


def equals(lhs: object, rhs: object) -> bool:
    t1, t2 = type(lhs), type(rhs)
    if (t1 is int or t1 is float) and (t2 is int or t2 is float):
        return lhs == rhs
    ta, tb = type_of(lhs), type_of(rhs)
    if ta in _NUMERIC and tb in _NUMERIC:
        return float(lhs) == float(rhs)  # type: ignore[arg-type]
    if ta is not tb:
        return False
    return lhs == rhs


def compare(op: str, lhs: object, rhs: object, pos: SourcePos | None = None) -> bool:
    """The paper's Table I comparison keywords ``BIGGER`` / ``SMALLR``."""
    a = _as_number(lhs, pos)
    b = _as_number(rhs, pos)
    return a > b if op == "gt" else a < b


# ---------------------------------------------------------------------------
# Per-operator function tables.
#
# Every operator is one callable ``fn(lhs, rhs, pos) -> value`` so the
# closure-compilation engine can resolve the operator *once at compile
# time* instead of re-running a string-keyed if-chain per evaluation.
# The numeric ops carry an inline fast path for the overwhelmingly common
# int/float case (``type(x) is int`` deliberately excludes bool, which
# LOLCODE arithmetic must coerce through TROOF rules in ``_as_number``).
# ---------------------------------------------------------------------------


def _op_add(a: object, b: object, pos: SourcePos | None = None) -> object:
    ta, tb = type(a), type(b)
    if (ta is int or ta is float) and (tb is int or tb is float):
        return a + b
    return arith("add", a, b, pos)


def _op_sub(a: object, b: object, pos: SourcePos | None = None) -> object:
    ta, tb = type(a), type(b)
    if (ta is int or ta is float) and (tb is int or tb is float):
        return a - b
    return arith("sub", a, b, pos)


def _op_mul(a: object, b: object, pos: SourcePos | None = None) -> object:
    ta, tb = type(a), type(b)
    if (ta is int or ta is float) and (tb is int or tb is float):
        return a * b
    return arith("mul", a, b, pos)


def _op_div(a: object, b: object, pos: SourcePos | None = None) -> object:
    return arith("div", a, b, pos)


def _op_mod(a: object, b: object, pos: SourcePos | None = None) -> object:
    return arith("mod", a, b, pos)


def _op_max(a: object, b: object, pos: SourcePos | None = None) -> object:
    return arith("max", a, b, pos)


def _op_min(a: object, b: object, pos: SourcePos | None = None) -> object:
    return arith("min", a, b, pos)


def _op_eq(a: object, b: object, pos: SourcePos | None = None) -> object:
    return equals(a, b)


def _op_ne(a: object, b: object, pos: SourcePos | None = None) -> object:
    return not equals(a, b)


def _op_gt(a: object, b: object, pos: SourcePos | None = None) -> object:
    ta, tb = type(a), type(b)
    if (ta is int or ta is float) and (tb is int or tb is float):
        return a > b
    return compare("gt", a, b, pos)


def _op_lt(a: object, b: object, pos: SourcePos | None = None) -> object:
    ta, tb = type(a), type(b)
    if (ta is int or ta is float) and (tb is int or tb is float):
        return a < b
    return compare("lt", a, b, pos)


def _op_and(a: object, b: object, pos: SourcePos | None = None) -> object:
    return to_troof(a) and to_troof(b)


def _op_or(a: object, b: object, pos: SourcePos | None = None) -> object:
    return to_troof(a) or to_troof(b)


def _op_xor(a: object, b: object, pos: SourcePos | None = None) -> object:
    return to_troof(a) != to_troof(b)


#: op name -> ``fn(lhs, rhs, pos)``; the closure engine indexes this once
#: per BinOp node at compile time.
BINOP_FUNCS = {
    "add": _op_add,
    "sub": _op_sub,
    "mul": _op_mul,
    "div": _op_div,
    "mod": _op_mod,
    "max": _op_max,
    "min": _op_min,
    "eq": _op_eq,
    "ne": _op_ne,
    "gt": _op_gt,
    "lt": _op_lt,
    "and": _op_and,
    "or": _op_or,
    "xor": _op_xor,
}


def _op_not(value: object, pos: SourcePos | None = None) -> object:
    return not to_troof(value)


def _op_square(value: object, pos: SourcePos | None = None) -> object:
    t = type(value)
    if t is int or t is float:
        return value * value
    v = _as_number(value, pos)
    return v * v


def _op_sqrt(value: object, pos: SourcePos | None = None) -> object:
    v = value if type(value) is float else to_numbar(value, pos)
    if v < 0:
        raise LolRuntimeError("UNSQUAR OF: negative operand", pos)
    return math.sqrt(v)


def _op_recip(value: object, pos: SourcePos | None = None) -> object:
    v = value if type(value) is float else to_numbar(value, pos)
    if v == 0.0:
        raise LolRuntimeError("FLIP OF: division by zero", pos)
    return 1.0 / v


#: op name -> ``fn(value, pos)``.
UNOP_FUNCS = {
    "not": _op_not,
    "square": _op_square,
    "sqrt": _op_sqrt,
    "recip": _op_recip,
}


def _op_all(values: list[object], pos: SourcePos | None = None) -> object:
    return all(to_troof(v) for v in values)


def _op_any(values: list[object], pos: SourcePos | None = None) -> object:
    return any(to_troof(v) for v in values)


def _op_smoosh(values: list[object], pos: SourcePos | None = None) -> object:
    return "".join(format_yarn(v) for v in values)


#: op name -> ``fn(values, pos)``.
NARYOP_FUNCS = {
    "all": _op_all,
    "any": _op_any,
    "smoosh": _op_smoosh,
}


def binop(op: str, lhs: object, rhs: object, pos: SourcePos | None = None) -> object:
    fn = BINOP_FUNCS.get(op)
    if fn is None:
        raise LolRuntimeError(f"unknown binary op {op!r}", pos)
    return fn(lhs, rhs, pos)


def unop(op: str, value: object, pos: SourcePos | None = None) -> object:
    fn = UNOP_FUNCS.get(op)
    if fn is None:
        raise LolRuntimeError(f"unknown unary op {op!r}", pos)
    return fn(value, pos)


def naryop(op: str, values: list[object], pos: SourcePos | None = None) -> object:
    fn = NARYOP_FUNCS.get(op)
    if fn is None:
        raise LolRuntimeError(f"unknown n-ary op {op!r}", pos)
    return fn(values, pos)


#: Estimated floating point work per operator, for the NoC performance
#: model (``FLIP OF UNSQUAR OF`` dominates the n-body inner loop).
FLOP_COST = {
    "add": 1,
    "sub": 1,
    "mul": 1,
    "div": 1,
    "mod": 1,
    "max": 1,
    "min": 1,
    "square": 1,
    "sqrt": 4,
    "recip": 1,
}
