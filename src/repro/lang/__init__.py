"""LOLCODE language front end: lexer, parser, AST, types, diagnostics."""

from . import ast
from .errors import (
    LolError,
    LolNameError,
    LolParallelError,
    LolRuntimeError,
    LolStaticError,
    LolSyntaxError,
    LolTypeError,
    SourcePos,
)
from .formatter import format_expr, format_program, format_source
from .lexer import Lexer, tokenize
from .parser import Parser, parse, parse_tokens
from .types import LolType

__all__ = [
    "ast",
    "LolError",
    "LolNameError",
    "LolParallelError",
    "LolRuntimeError",
    "LolStaticError",
    "LolSyntaxError",
    "LolTypeError",
    "SourcePos",
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "parse_tokens",
    "LolType",
    "format_expr",
    "format_program",
    "format_source",
]
