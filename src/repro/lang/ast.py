"""Abstract syntax tree for extended LOLCODE.

Every node carries a :class:`~repro.lang.errors.SourcePos` for diagnostics.
The AST is deliberately plain (frozen-free dataclasses, no behaviour) so it
can be walked by the interpreter, both compiler backends, the formatter,
and the symmetric-allocation planner without coupling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .errors import SourcePos

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Node:
    pos: SourcePos = field(default_factory=SourcePos, kw_only=True, compare=False)


@dataclass(slots=True)
class IntLit(Node):
    value: int


@dataclass(slots=True)
class FloatLit(Node):
    value: float


@dataclass(slots=True)
class StringLit(Node):
    """String literal.

    ``parts`` interleaves plain ``str`` segments with ``("interp", name)``
    tuples produced by ``:{name}`` interpolation escapes.
    """

    parts: list[object]

    def is_plain(self) -> bool:
        return all(isinstance(p, str) for p in self.parts)

    def plain_text(self) -> str:
        assert self.is_plain()
        return "".join(self.parts)  # type: ignore[arg-type]


@dataclass(slots=True)
class TroofLit(Node):
    value: bool  # WIN / FAIL


@dataclass(slots=True)
class NoobLit(Node):
    pass


@dataclass(slots=True)
class VarRef(Node):
    """A variable reference, optionally qualified for PGAS addressing.

    ``qualifier`` is ``None`` (unqualified), ``"UR"`` (remote address
    space of the predicated PE) or ``"MAH"`` (explicitly local).
    """

    name: str
    qualifier: Optional[str] = None


@dataclass(slots=True)
class SrsRef(Node):
    """``SRS <expr>`` — interpret a YARN value as an identifier."""

    expr: "Expr"
    qualifier: Optional[str] = None


@dataclass(slots=True)
class Index(Node):
    """Array element access ``base'Z index`` (paper Table II)."""

    base: Union[VarRef, SrsRef]
    index: "Expr"


@dataclass(slots=True)
class ItRef(Node):
    """The implicit ``IT`` variable holding the last bare expression value."""


@dataclass(slots=True)
class MeExpr(Node):
    """``ME`` — the PE id of the executing thread (Table II)."""


@dataclass(slots=True)
class FrenzExpr(Node):
    """``MAH FRENZ`` — total number of PEs (Table II)."""


@dataclass(slots=True)
class RandomExpr(Node):
    """``WHATEVR`` (random NUMBR) / ``WHATEVAR`` (random NUMBAR)."""

    kind: str  # "int" | "float"


@dataclass(slots=True)
class BinOp(Node):
    op: str  # add sub mul div mod max min eq ne gt lt and or xor
    lhs: "Expr"
    rhs: "Expr"


@dataclass(slots=True)
class UnaryOp(Node):
    op: str  # not square sqrt recip
    operand: "Expr"


@dataclass(slots=True)
class NaryOp(Node):
    op: str  # all any smoosh
    operands: list["Expr"]


@dataclass(slots=True)
class Cast(Node):
    """``MAEK <expr> A <type>``."""

    expr: "Expr"
    to_type: str


@dataclass(slots=True)
class FuncCall(Node):
    """``I IZ <name> [YR <expr> [AN YR <expr>]*] MKAY``."""

    name: str
    args: list["Expr"]


Expr = Union[
    IntLit,
    FloatLit,
    StringLit,
    TroofLit,
    NoobLit,
    VarRef,
    SrsRef,
    Index,
    ItRef,
    MeExpr,
    FrenzExpr,
    RandomExpr,
    BinOp,
    UnaryOp,
    NaryOp,
    Cast,
    FuncCall,
]

#: Expression node types that may appear as an assignment target.
LValue = (VarRef, SrsRef, Index)

# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class VarDecl(Node):
    """``I HAS A`` / ``WE HAS A`` declaration with the paper's multi-clause
    extensions.

    * ``scope`` — ``"I"`` (thread-local) or ``"WE"`` (symmetric, PGAS).
    * ``static_type`` — declared type name for ``ITZ [SRSLY] A <type>``
      clauses, ``None`` for dynamically typed variables.
    * ``srsly`` — whether the static-typing keyword ``SRSLY`` was used.
    * ``is_array`` / ``size`` — ``LOTZ A <type>S AN THAR IZ <size>``.
    * ``shared_lock`` — ``AN IM SHARIN IT`` declares the implied global lock.
    * ``init`` — initializer from ``ITZ <expr>`` or an ``AN ITZ <expr>``
      clause.
    """

    scope: str
    name: str
    static_type: Optional[str] = None
    srsly: bool = False
    is_array: bool = False
    size: Optional[Expr] = None
    shared_lock: bool = False
    init: Optional[Expr] = None


@dataclass(slots=True)
class Assign(Node):
    target: Expr  # one of LValue
    value: Expr


@dataclass(slots=True)
class CastStmt(Node):
    """``<var> IS NOW A <type>`` — in-place re-cast."""

    target: Expr
    to_type: str


@dataclass(slots=True)
class ExprStmt(Node):
    """A bare expression; its value is stored into ``IT``."""

    expr: Expr


@dataclass(slots=True)
class Visible(Node):
    args: list[Expr]
    newline: bool = True  # suppressed by a trailing "!"


@dataclass(slots=True)
class Gimmeh(Node):
    target: Expr


@dataclass(slots=True)
class CanHas(Node):
    library: str


@dataclass(slots=True)
class If(Node):
    """``O RLY?`` — tests IT; ``mebbe`` arms carry their own expressions."""

    ya_rly: list["Stmt"]
    mebbe: list[tuple[Expr, list["Stmt"]]]
    no_wai: list["Stmt"]


@dataclass(slots=True)
class Switch(Node):
    """``WTF?`` — compares IT against OMG literals, C-style fallthrough."""

    cases: list[tuple[Expr, list["Stmt"]]]
    default: list["Stmt"]


@dataclass(slots=True)
class Loop(Node):
    """``IM IN YR <label> [UPPIN|NERFIN YR <var> [TIL|WILE <expr>]]``."""

    label: str
    op: Optional[str] = None  # "UPPIN" | "NERFIN" | function name
    var: Optional[str] = None
    cond_kind: Optional[str] = None  # "TIL" | "WILE"
    cond: Optional[Expr] = None
    body: list["Stmt"] = field(default_factory=list)


@dataclass(slots=True)
class Gtfo(Node):
    """``GTFO`` — break out of loop / switch case / return from function."""


@dataclass(slots=True)
class FuncDef(Node):
    name: str
    params: list[str]
    body: list["Stmt"] = field(default_factory=list)


@dataclass(slots=True)
class Return(Node):
    """``FOUND YR <expr>``."""

    expr: Expr


@dataclass(slots=True)
class Hugz(Node):
    """``HUGZ`` — collective barrier over all PEs (Table II)."""


@dataclass(slots=True)
class LockStmt(Node):
    """Lock operations on a shared variable's implied global lock.

    ``kind`` is ``"lock"`` (``IM SRSLY MESIN WIF``, blocking),
    ``"trylock"`` (``IM MESIN WIF``, non-blocking, stores WIN/FAIL in IT)
    or ``"unlock"`` (``DUN MESIN WIF``).
    """

    kind: str
    target: Union[VarRef, SrsRef]


@dataclass(slots=True)
class TxtStmt(Node):
    """Thread predication (Table II).

    ``TXT MAH BFF <expr>, <stmt>`` or the block form
    ``TXT MAH BFF <expr> AN STUFF ... TTYL``.  Within the body, ``UR``
    references resolve in the address space of PE ``pe``.
    """

    pe: Expr
    body: list["Stmt"]
    block: bool = False


Stmt = Union[
    VarDecl,
    Assign,
    CastStmt,
    ExprStmt,
    Visible,
    Gimmeh,
    CanHas,
    If,
    Switch,
    Loop,
    Gtfo,
    FuncDef,
    Return,
    Hugz,
    LockStmt,
    TxtStmt,
]


@dataclass(slots=True)
class Program(Node):
    """A complete ``HAI ... KTHXBYE`` program."""

    version: Optional[str]
    body: list[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------


def child_statements(stmt: Stmt) -> list[list[Stmt]]:
    """Return the nested statement blocks of ``stmt`` (for generic walks)."""
    if isinstance(stmt, If):
        return [stmt.ya_rly, *[b for _, b in stmt.mebbe], stmt.no_wai]
    if isinstance(stmt, Switch):
        return [*[b for _, b in stmt.cases], stmt.default]
    if isinstance(stmt, Loop):
        return [stmt.body]
    if isinstance(stmt, FuncDef):
        return [stmt.body]
    if isinstance(stmt, TxtStmt):
        return [stmt.body]
    return []


def walk_statements(body: list[Stmt]):
    """Yield every statement in ``body``, depth-first, including nested."""
    for stmt in body:
        yield stmt
        for block in child_statements(stmt):
            yield from walk_statements(block)
