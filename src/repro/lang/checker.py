"""Static checker (lint) for extended LOLCODE.

The paper positions LOLCODE as a *teaching* language; the mistakes
students actually make with the parallel extensions are statically
detectable, so ``lollint`` (and ``lcc --check``) run this pass and report:

========== ============================================================
code        diagnostic
========== ============================================================
``E001``    use of an undeclared variable
``E002``    assignment to an undeclared variable
``E003``    ``UR`` reference outside any ``TXT MAH BFF`` predication
``E004``    locking a variable not declared ``AN IM SHARIN IT``
``E005``    symmetric (``WE HAS A``) declaration without a type
``E006``    call to an undefined function / wrong arity
``E007``    indexing a scalar / scalar use of an array
``W101``    ``HUGZ`` inside a PE-dependent branch (potential barrier
            mismatch deadlock — e.g. ``BOTH SAEM ME AN 0, O RLY?``)
``W102``    remote write followed by a local read of the same symbol
            with no intervening ``HUGZ`` (the Figure 2 bug, statically)
``W103``    lock acquired but never released on some path (heuristic:
            no ``DUN MESIN WIF`` for the symbol anywhere)
``W104``    declared variable never used
========== ============================================================

``E``-codes are errors a run would surface dynamically; ``W``-codes are
heuristic warnings (conservative, straight-line approximations — this is
a linter, not a model checker).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from . import ast
from .errors import SourcePos
from .parser import parse


@dataclass(frozen=True, slots=True)
class Diagnostic:
    code: str
    message: str
    pos: SourcePos

    @property
    def is_error(self) -> bool:
        return self.code.startswith("E")

    def render(self) -> str:
        return f"{self.pos}: {self.code}: {self.message}"


@dataclass(slots=True)
class _VarInfo:
    name: str
    pos: SourcePos
    symmetric: bool = False
    is_array: bool = False
    shared_lock: bool = False
    used: bool = False


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.vars: dict[str, _VarInfo] = {}
        self.parent = parent

    def declare(self, info: _VarInfo) -> None:
        self.vars[info.name] = info

    def find(self, name: str) -> Optional[_VarInfo]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def all_vars(self):
        yield from self.vars.values()


class Checker:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.diags: list[Diagnostic] = []
        self.functions: dict[str, ast.FuncDef] = {}
        self.txt_depth = 0
        self.pe_branch_depth = 0  # inside a branch conditioned on ME
        self._scopes_for_unused: list[_Scope] = []
        #: straight-line remote-write tracking for W102 (top level only)
        self._pending_remote_writes: dict[str, SourcePos] = {}
        #: symbols that appear in DUN MESIN WIF anywhere (for W103)
        self._unlocked_symbols: set[str] = set()
        self._locked_symbols: dict[str, SourcePos] = {}

    # -- public ------------------------------------------------------------

    def run(self) -> list[Diagnostic]:
        for stmt in self.program.body:
            if isinstance(stmt, ast.FuncDef):
                self.functions[stmt.name] = stmt
        for stmt in ast.walk_statements(self.program.body):
            if isinstance(stmt, ast.LockStmt) and stmt.kind == "unlock":
                if isinstance(stmt.target, ast.VarRef):
                    self._unlocked_symbols.add(stmt.target.name)
        root = _Scope()
        self._scopes_for_unused.append(root)
        self.check_block(self.program.body, root)
        for name, pos in self._locked_symbols.items():
            if name not in self._unlocked_symbols:
                self._warn(
                    "W103",
                    f"lock on '{name}' is acquired but never released "
                    f"(no DUN MESIN WIF {name} anywhere)",
                    pos,
                )
        for scope in self._scopes_for_unused:
            for info in scope.all_vars():
                if not info.used and not info.name.startswith("_"):
                    self._warn(
                        "W104",
                        f"variable '{info.name}' is declared but never used",
                        info.pos,
                    )
        self.diags.sort(key=lambda d: (d.pos.line, d.pos.col, d.code))
        return self.diags

    # -- helpers -----------------------------------------------------------

    def _err(self, code: str, message: str, pos: SourcePos) -> None:
        self.diags.append(Diagnostic(code, message, pos))

    _warn = _err

    # -- statement traversal --------------------------------------------------

    def check_block(self, body: list[ast.Stmt], scope: _Scope) -> None:
        for stmt in body:
            self.check_stmt(stmt, scope)

    def _child(self, scope: _Scope) -> _Scope:
        child = _Scope(scope)
        self._scopes_for_unused.append(child)
        return child

    def check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.scope == "WE" and stmt.static_type is None:
                self._err(
                    "E005",
                    f"symmetric variable '{stmt.name}' must be typed "
                    f"(ITZ SRSLY A <type>)",
                    stmt.pos,
                )
            if stmt.size is not None:
                self.check_expr(stmt.size, scope)
            if stmt.init is not None:
                self.check_expr(stmt.init, scope)
            scope.declare(
                _VarInfo(
                    stmt.name,
                    stmt.pos,
                    symmetric=stmt.scope == "WE",
                    is_array=stmt.is_array,
                    shared_lock=stmt.shared_lock,
                )
            )
        elif isinstance(stmt, ast.Assign):
            self.check_expr(stmt.value, scope)
            self.check_target(stmt.target, scope)
        elif isinstance(stmt, ast.CastStmt):
            self.check_target(stmt.target, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Visible):
            for arg in stmt.args:
                self.check_expr(arg, scope)
        elif isinstance(stmt, ast.Gimmeh):
            self.check_target(stmt.target, scope)
        elif isinstance(stmt, ast.CanHas):
            pass
        elif isinstance(stmt, ast.If):
            self.check_branches(
                [stmt.ya_rly, *[b for _, b in stmt.mebbe], stmt.no_wai],
                [cond for cond, _ in stmt.mebbe],
                scope,
                pe_dependent=self._last_expr_pe_dependent,
            )
        elif isinstance(stmt, ast.Switch):
            self.check_branches(
                [b for _, b in stmt.cases] + [stmt.default],
                [lit for lit, _ in stmt.cases],
                scope,
                pe_dependent=self._last_expr_pe_dependent,
            )
        elif isinstance(stmt, ast.Loop):
            loop_scope = self._child(scope)
            if stmt.var is not None:
                loop_scope.declare(_VarInfo(stmt.var, stmt.pos))
                loop_scope.vars[stmt.var].used = True  # counters are fine
            if stmt.cond is not None:
                self.check_expr(stmt.cond, loop_scope)
            self.check_block(stmt.body, loop_scope)
        elif isinstance(stmt, ast.Gtfo):
            pass
        elif isinstance(stmt, ast.FuncDef):
            fscope = self._child(scope)
            for p in stmt.params:
                info = _VarInfo(p, stmt.pos)
                info.used = True
                fscope.declare(info)
            self.check_block(stmt.body, fscope)
        elif isinstance(stmt, ast.Return):
            self.check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Hugz):
            if self.pe_branch_depth > 0:
                self._warn(
                    "W101",
                    "HUGZ inside a PE-dependent branch: if some PEs take "
                    "a different path, the barrier deadlocks",
                    stmt.pos,
                )
            self._pending_remote_writes.clear()
        elif isinstance(stmt, ast.LockStmt):
            self.check_lock(stmt, scope)
        elif isinstance(stmt, ast.TxtStmt):
            self.check_expr(stmt.pe, scope)
            self.txt_depth += 1
            self.check_block(stmt.body, scope)
            self.txt_depth -= 1

        # track IT-feeding expressions for PE-dependence (O RLY? tests IT)
        if isinstance(stmt, ast.ExprStmt):
            self._last_it_pe_dependent = _mentions_me(stmt.expr)

    _last_it_pe_dependent = False

    @property
    def _last_expr_pe_dependent(self) -> bool:
        return self._last_it_pe_dependent

    def check_branches(
        self,
        bodies: list[list[ast.Stmt]],
        conds: list[ast.Expr],
        scope: _Scope,
        *,
        pe_dependent: bool,
    ) -> None:
        for cond in conds:
            self.check_expr(cond, scope)
            pe_dependent = pe_dependent or _mentions_me(cond)
        if pe_dependent:
            self.pe_branch_depth += 1
        for body in bodies:
            self.check_block(body, self._child(scope))
        if pe_dependent:
            self.pe_branch_depth -= 1

    def check_lock(self, stmt: ast.LockStmt, scope: _Scope) -> None:
        target = stmt.target
        if not isinstance(target, ast.VarRef):
            return  # SRS: dynamic, can't check statically
        info = scope.find(target.name)
        if info is None:
            self._err(
                "E001",
                f"lock on undeclared variable '{target.name}'",
                stmt.pos,
            )
            return
        info.used = True
        if not info.shared_lock:
            self._err(
                "E004",
                f"'{target.name}' has no lock: declare it with "
                f"'WE HAS A {target.name} ... AN IM SHARIN IT'",
                stmt.pos,
            )
        if stmt.kind in ("lock", "trylock"):
            self._locked_symbols.setdefault(target.name, stmt.pos)

    # -- expressions ----------------------------------------------------------

    def check_target(self, target: ast.Expr, scope: _Scope) -> None:
        if isinstance(target, ast.Index):
            self.check_expr(target.index, scope)
            base = target.base
            if isinstance(base, ast.VarRef):
                self._check_var(base, scope, is_write=True, indexed=True)
            return
        if isinstance(target, ast.VarRef):
            self._check_var(target, scope, is_write=True)
            return
        if isinstance(target, ast.SrsRef):
            self.check_expr(target.expr, scope)

    def check_expr(self, expr: ast.Expr, scope: _Scope) -> None:
        for sub in _walk(expr):
            if isinstance(sub, ast.VarRef):
                self._check_var(sub, scope, is_write=False,
                                indexed=_is_index_base(expr, sub))
            elif isinstance(sub, ast.FuncCall):
                func = self.functions.get(sub.name)
                if func is None:
                    self._err(
                        "E006", f"no function named '{sub.name}'", sub.pos
                    )
                elif len(sub.args) != len(func.params):
                    self._err(
                        "E006",
                        f"function '{sub.name}' wants {len(func.params)} "
                        f"arguments, got {len(sub.args)}",
                        sub.pos,
                    )

    def _check_var(
        self,
        ref: ast.VarRef,
        scope: _Scope,
        *,
        is_write: bool,
        indexed: bool = False,
    ) -> None:
        if ref.qualifier == "UR" and self.txt_depth == 0:
            self._err(
                "E003",
                f"'UR {ref.name}' outside a TXT MAH BFF predicated "
                f"statement or block",
                ref.pos,
            )
        info = scope.find(ref.name)
        if info is None:
            code = "E002" if is_write else "E001"
            verb = "assignment to" if is_write else "use of"
            self._err(
                code,
                f"{verb} undeclared variable '{ref.name}' "
                f"(I HAS A {ref.name})",
                ref.pos,
            )
            return
        info.used = True
        if indexed and not info.is_array:
            self._err("E007", f"'{ref.name}' is not an array", ref.pos)
        # W102: remote write then local read with no HUGZ between (top
        # level straight-line heuristic).
        if ref.qualifier == "UR" and is_write and info.symmetric:
            self._pending_remote_writes[ref.name] = ref.pos
        elif (
            not is_write
            and ref.qualifier != "UR"
            and info.symmetric
            and ref.name in self._pending_remote_writes
        ):
            self._warn(
                "W102",
                f"local read of '{ref.name}' after a remote write with no "
                f"HUGZ in between (the Figure 2 race)",
                ref.pos,
            )
            del self._pending_remote_writes[ref.name]


def _walk(expr: ast.Expr):
    yield expr
    if isinstance(expr, ast.BinOp):
        yield from _walk(expr.lhs)
        yield from _walk(expr.rhs)
    elif isinstance(expr, ast.UnaryOp):
        yield from _walk(expr.operand)
    elif isinstance(expr, ast.NaryOp):
        for op in expr.operands:
            yield from _walk(op)
    elif isinstance(expr, ast.Cast):
        yield from _walk(expr.expr)
    elif isinstance(expr, ast.Index):
        yield from _walk(expr.base)
        yield from _walk(expr.index)
    elif isinstance(expr, ast.SrsRef):
        yield from _walk(expr.expr)
    elif isinstance(expr, ast.FuncCall):
        for a in expr.args:
            yield from _walk(a)


def _is_index_base(root: ast.Expr, ref: ast.VarRef) -> bool:
    for sub in _walk(root):
        if isinstance(sub, ast.Index) and sub.base is ref:
            return True
    return False


def _mentions_me(expr: ast.Expr) -> bool:
    return any(isinstance(sub, ast.MeExpr) for sub in _walk(expr))


def check_program(program: ast.Program) -> list[Diagnostic]:
    return Checker(program).run()


def check_source(source: str, filename: str = "<string>") -> list[Diagnostic]:
    return check_program(parse(source, filename))
