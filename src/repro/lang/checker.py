"""Static checker (lint) for extended LOLCODE.

The paper positions LOLCODE as a *teaching* language; the mistakes
students actually make with the parallel extensions are statically
detectable, so ``lollint`` (and ``lcc --check``) run this pass and report:

========== ============================================================
code        diagnostic
========== ============================================================
``E001``    use of an undeclared variable
``E002``    assignment to an undeclared variable
``E003``    ``UR`` reference outside any ``TXT MAH BFF`` predication
``E004``    locking a variable not declared ``AN IM SHARIN IT``
``E005``    symmetric (``WE HAS A``) declaration without a type
``E006``    call to an undefined function / wrong arity
``E007``    indexing a scalar / scalar use of an array
``E008``    array index / PE target definitely out of range
``W101``    ``HUGZ`` not matched on every path of PE-divergent control
            (barrier mismatch deadlock)
``W102``    conflicting local/remote accesses to a symmetric symbol in
            one barrier epoch (the Figure 2 race, statically)
``W103``    lock acquired but possibly never released on some path
``W104``    declared variable never used
``W105``    blocking re-acquire of a lock that is already held
``W106``    lock acquired under a PE-divergent branch, not released
``W107``    array index / PE target possibly out of range
========== ============================================================

This module performs the scope/type pass (``E001``–``E007`` and
``W104``) by direct traversal; the parallel-correctness codes come from
the CFG + dataflow analyses in :mod:`repro.analysis` (path-sensitive —
a barrier under a *uniform* branch or a lock released on *every* path
no longer warns).  ``E``-codes are errors a run would surface
dynamically; ``W``-codes are conservative warnings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis import analyze_program
from ..analysis.diagnostics import Diagnostic, FixIt, sort_key
from . import ast
from .errors import SourcePos
from .parser import parse

__all__ = [
    "Diagnostic",
    "FixIt",
    "check_program",
    "check_source",
]


@dataclass(slots=True)
class _VarInfo:
    name: str
    pos: SourcePos
    symmetric: bool = False
    is_array: bool = False
    shared_lock: bool = False
    used: bool = False


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.vars: dict[str, _VarInfo] = {}
        self.parent = parent

    def declare(self, info: _VarInfo) -> None:
        self.vars[info.name] = info

    def find(self, name: str) -> Optional[_VarInfo]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def all_vars(self):
        yield from self.vars.values()


class Checker:
    """The scope/type pass: ``E001``–``E007`` and ``W104``."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.diags: list[Diagnostic] = []
        self.functions: dict[str, ast.FuncDef] = {}
        self.txt_depth = 0
        self._scopes_for_unused: list[_Scope] = []

    # -- public ------------------------------------------------------------

    def run(self) -> list[Diagnostic]:
        for stmt in self.program.body:
            if isinstance(stmt, ast.FuncDef):
                self.functions[stmt.name] = stmt
        root = _Scope()
        self._scopes_for_unused.append(root)
        self.check_block(self.program.body, root)
        for scope in self._scopes_for_unused:
            for info in scope.all_vars():
                if not info.used and not info.name.startswith("_"):
                    self._warn(
                        "W104",
                        f"variable '{info.name}' is declared but never used",
                        info.pos,
                    )
        self.diags.sort(key=sort_key)
        return self.diags

    # -- helpers -----------------------------------------------------------

    def _err(self, code: str, message: str, pos: SourcePos) -> None:
        self.diags.append(Diagnostic(code, message, pos))

    _warn = _err

    # -- statement traversal --------------------------------------------------

    def check_block(self, body: list[ast.Stmt], scope: _Scope) -> None:
        for stmt in body:
            self.check_stmt(stmt, scope)

    def _child(self, scope: _Scope) -> _Scope:
        child = _Scope(scope)
        self._scopes_for_unused.append(child)
        return child

    def check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.scope == "WE" and stmt.static_type is None:
                self._err(
                    "E005",
                    f"symmetric variable '{stmt.name}' must be typed "
                    f"(ITZ SRSLY A <type>)",
                    stmt.pos,
                )
            if stmt.size is not None:
                self.check_expr(stmt.size, scope)
            if stmt.init is not None:
                self.check_expr(stmt.init, scope)
            scope.declare(
                _VarInfo(
                    stmt.name,
                    stmt.pos,
                    symmetric=stmt.scope == "WE",
                    is_array=stmt.is_array,
                    shared_lock=stmt.shared_lock,
                )
            )
        elif isinstance(stmt, ast.Assign):
            self.check_expr(stmt.value, scope)
            self.check_target(stmt.target, scope)
        elif isinstance(stmt, ast.CastStmt):
            self.check_target(stmt.target, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Visible):
            for arg in stmt.args:
                self.check_expr(arg, scope)
        elif isinstance(stmt, ast.Gimmeh):
            self.check_target(stmt.target, scope)
        elif isinstance(stmt, ast.CanHas):
            pass
        elif isinstance(stmt, ast.If):
            self.check_branches(
                [stmt.ya_rly, *[b for _, b in stmt.mebbe], stmt.no_wai],
                [cond for cond, _ in stmt.mebbe],
                scope,
            )
        elif isinstance(stmt, ast.Switch):
            self.check_branches(
                [b for _, b in stmt.cases] + [stmt.default],
                [lit for lit, _ in stmt.cases],
                scope,
            )
        elif isinstance(stmt, ast.Loop):
            loop_scope = self._child(scope)
            if stmt.var is not None:
                loop_scope.declare(_VarInfo(stmt.var, stmt.pos))
                loop_scope.vars[stmt.var].used = True  # counters are fine
            if stmt.cond is not None:
                self.check_expr(stmt.cond, loop_scope)
            self.check_block(stmt.body, loop_scope)
        elif isinstance(stmt, ast.Gtfo):
            pass
        elif isinstance(stmt, ast.FuncDef):
            fscope = self._child(scope)
            for p in stmt.params:
                info = _VarInfo(p, stmt.pos)
                info.used = True
                fscope.declare(info)
            self.check_block(stmt.body, fscope)
        elif isinstance(stmt, ast.Return):
            self.check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Hugz):
            pass  # barrier matching is the CFG analysis's job (W101)
        elif isinstance(stmt, ast.LockStmt):
            self.check_lock(stmt, scope)
        elif isinstance(stmt, ast.TxtStmt):
            self.check_expr(stmt.pe, scope)
            self.txt_depth += 1
            self.check_block(stmt.body, scope)
            self.txt_depth -= 1

    def check_branches(
        self,
        bodies: list[list[ast.Stmt]],
        conds: list[ast.Expr],
        scope: _Scope,
    ) -> None:
        for cond in conds:
            self.check_expr(cond, scope)
        for body in bodies:
            self.check_block(body, self._child(scope))

    def check_lock(self, stmt: ast.LockStmt, scope: _Scope) -> None:
        target = stmt.target
        if not isinstance(target, ast.VarRef):
            if isinstance(target, ast.SrsRef):
                self.check_expr(target.expr, scope)
            return  # SRS: dynamic, can't check the symbol statically
        info = scope.find(target.name)
        if info is None:
            self._err(
                "E001",
                f"lock on undeclared variable '{target.name}'",
                stmt.pos,
            )
            return
        info.used = True
        if not info.shared_lock:
            self._err(
                "E004",
                f"'{target.name}' has no lock: declare it with "
                f"'WE HAS A {target.name} ... AN IM SHARIN IT'",
                stmt.pos,
            )

    # -- expressions ----------------------------------------------------------

    def check_target(self, target: ast.Expr, scope: _Scope) -> None:
        if isinstance(target, ast.Index):
            self.check_expr(target.index, scope)
            base = target.base
            if isinstance(base, ast.VarRef):
                self._check_var(base, scope, is_write=True, indexed=True)
            return
        if isinstance(target, ast.VarRef):
            self._check_var(target, scope, is_write=True)
            return
        if isinstance(target, ast.SrsRef):
            self.check_expr(target.expr, scope)

    def check_expr(self, expr: ast.Expr, scope: _Scope) -> None:
        for sub in _walk(expr):
            if isinstance(sub, ast.StringLit):
                # ``:{name}`` interpolations are reads: mark the
                # variable used (undeclared names surface at runtime,
                # not here — interpolation resolves dynamically).
                for part in sub.parts:
                    if isinstance(part, tuple):
                        info = scope.find(part[1])
                        if info is not None:
                            info.used = True
            elif isinstance(sub, ast.VarRef):
                self._check_var(sub, scope, is_write=False,
                                indexed=_is_index_base(expr, sub))
            elif isinstance(sub, ast.FuncCall):
                func = self.functions.get(sub.name)
                if func is None:
                    self._err(
                        "E006", f"no function named '{sub.name}'", sub.pos
                    )
                elif len(sub.args) != len(func.params):
                    self._err(
                        "E006",
                        f"function '{sub.name}' wants {len(func.params)} "
                        f"arguments, got {len(sub.args)}",
                        sub.pos,
                    )

    def _check_var(
        self,
        ref: ast.VarRef,
        scope: _Scope,
        *,
        is_write: bool,
        indexed: bool = False,
    ) -> None:
        if ref.qualifier == "UR" and self.txt_depth == 0:
            self._err(
                "E003",
                f"'UR {ref.name}' outside a TXT MAH BFF predicated "
                f"statement or block",
                ref.pos,
            )
        info = scope.find(ref.name)
        if info is None:
            code = "E002" if is_write else "E001"
            verb = "assignment to" if is_write else "use of"
            self._err(
                code,
                f"{verb} undeclared variable '{ref.name}' "
                f"(I HAS A {ref.name})",
                ref.pos,
            )
            return
        info.used = True
        if indexed and not info.is_array:
            self._err("E007", f"'{ref.name}' is not an array", ref.pos)


def _walk(expr: ast.Expr):
    yield expr
    if isinstance(expr, ast.BinOp):
        yield from _walk(expr.lhs)
        yield from _walk(expr.rhs)
    elif isinstance(expr, ast.UnaryOp):
        yield from _walk(expr.operand)
    elif isinstance(expr, ast.NaryOp):
        for op in expr.operands:
            yield from _walk(op)
    elif isinstance(expr, ast.Cast):
        yield from _walk(expr.expr)
    elif isinstance(expr, ast.Index):
        yield from _walk(expr.base)
        yield from _walk(expr.index)
    elif isinstance(expr, ast.SrsRef):
        yield from _walk(expr.expr)
    elif isinstance(expr, ast.FuncCall):
        for a in expr.args:
            yield from _walk(a)


def _is_index_base(root: ast.Expr, ref: ast.VarRef) -> bool:
    for sub in _walk(root):
        if isinstance(sub, ast.Index) and sub.base is ref:
            return True
    return False


def check_program(program: ast.Program) -> list[Diagnostic]:
    """Scope/type pass plus the full CFG analysis stack, sorted."""
    diags = Checker(program).run()
    diags.extend(analyze_program(program))
    diags.sort(key=sort_key)
    return diags


def check_source(source: str, filename: str = "<string>") -> list[Diagnostic]:
    return check_program(parse(source, filename))
