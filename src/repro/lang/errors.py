"""Diagnostics for the LOLCODE toolchain.

Every error raised by the lexer, parser, static analyzer, interpreter, or
compiler carries a source location so the CLI tools (``lcc``, ``loli``,
``lolrun``) can print ``file:line:col`` style messages, mirroring the
behaviour of the paper's lex/yacc-based ``lcc`` compiler.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourcePos:
    """A position in a LOLCODE source file (1-based line and column)."""

    line: int = 0
    col: int = 0
    filename: str = "<string>"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.filename}:{self.line}:{self.col}"


class LolError(Exception):
    """Base class for all toolchain errors."""

    def __init__(self, message: str, pos: SourcePos | None = None) -> None:
        self.message = message
        self.pos = pos or SourcePos()
        super().__init__(self.render())

    def render(self) -> str:
        if self.pos.line:
            return f"{self.pos}: {self.message}"
        return self.message


class LolSyntaxError(LolError):
    """Lexing or parsing failure."""


class LolTypeError(LolError):
    """Static or dynamic type violation (casting, static typing extension)."""


class LolNameError(LolError):
    """Reference to an undeclared variable, function, or loop label."""


class LolRuntimeError(LolError):
    """Any other runtime failure (division by zero, bad index, ...)."""


class LolParallelError(LolError):
    """Misuse of the parallel extensions (e.g. ``UR`` outside ``TXT MAH BFF``,
    locking a variable that was not declared ``AN IM SHARIN IT``)."""


class LolStaticError(LolError):
    """Static-analysis errors rejected before execution.

    Raised by :func:`repro.launcher.spmd.run_lolcode` under
    ``check="error"`` (and by ``lcc --check`` / ``lolcc --check``) when
    the checker reports any ``E``-code diagnostic.  ``render`` shows
    the first diagnostic; ``diagnostics`` carries the full list.
    """

    def __init__(self, message: str, pos: SourcePos | None = None,
                 diagnostics: tuple = ()) -> None:
        self.diagnostics = diagnostics
        super().__init__(message, pos)
