"""Canonical formatter / pretty-printer for extended LOLCODE.

Produces normalized source from an AST: two-space indentation, one
statement per line, ``AN`` separators spelled out, long lines *not*
re-wrapped (the ``...`` continuation is purely lexical).  The guarantee is
*round-trip stability*: ``parse(format(parse(src)))`` equals
``parse(src)`` — property-tested over the whole corpus.
"""

from __future__ import annotations

from . import ast
from .errors import LolRuntimeError
from .tokens import BINARY_OPS, UNARY_OPS, VARIADIC_OPS

_BIN_KW = {v: k for k, v in BINARY_OPS.items()}
_UN_KW = {v: k for k, v in UNARY_OPS.items()}
_NARY_KW = {v: k for k, v in VARIADIC_OPS.items()}


def _escape(text: str) -> str:
    out = []
    for ch in text:
        if ch == ":":
            out.append("::")
        elif ch == '"':
            out.append(':"')
        elif ch == "\n":
            out.append(":)")
        elif ch == "\t":
            out.append(":>")
        elif ch == "\a":
            out.append(":o")
        else:
            out.append(ch)
    return "".join(out)


def format_expr(node: ast.Expr) -> str:
    if isinstance(node, ast.IntLit):
        return str(node.value)
    if isinstance(node, ast.FloatLit):
        text = repr(node.value)
        return text
    if isinstance(node, ast.StringLit):
        parts = []
        for part in node.parts:
            if isinstance(part, str):
                parts.append(_escape(part))
            else:
                parts.append(":{" + part[1] + "}")
        return '"' + "".join(parts) + '"'
    if isinstance(node, ast.TroofLit):
        return "WIN" if node.value else "FAIL"
    if isinstance(node, ast.NoobLit):
        return "NOOB"
    if isinstance(node, ast.ItRef):
        return "IT"
    if isinstance(node, ast.MeExpr):
        return "ME"
    if isinstance(node, ast.FrenzExpr):
        return "MAH FRENZ"
    if isinstance(node, ast.RandomExpr):
        return "WHATEVR" if node.kind == "int" else "WHATEVAR"
    if isinstance(node, ast.VarRef):
        prefix = f"{node.qualifier} " if node.qualifier else ""
        return f"{prefix}{node.name}"
    if isinstance(node, ast.SrsRef):
        prefix = f"{node.qualifier} " if node.qualifier else ""
        return f"{prefix}SRS {format_expr(node.expr)}"
    if isinstance(node, ast.Index):
        return f"{format_expr(node.base)}'Z {format_expr(node.index)}"
    if isinstance(node, ast.BinOp):
        kw = _BIN_KW[node.op]
        return f"{kw} {format_expr(node.lhs)} AN {format_expr(node.rhs)}"
    if isinstance(node, ast.UnaryOp):
        return f"{_UN_KW[node.op]} {format_expr(node.operand)}"
    if isinstance(node, ast.NaryOp):
        kw = _NARY_KW[node.op]
        inner = " AN ".join(format_expr(e) for e in node.operands)
        return f"{kw} {inner} MKAY"
    if isinstance(node, ast.Cast):
        return f"MAEK {format_expr(node.expr)} A {node.to_type}"
    if isinstance(node, ast.FuncCall):
        if not node.args:
            return f"I IZ {node.name} MKAY"
        args = " AN ".join(f"YR {format_expr(a)}" for a in node.args)
        return f"I IZ {node.name} {args} MKAY"
    raise LolRuntimeError(f"cannot format expression {type(node).__name__}")


class Formatter:
    def __init__(self, indent_width: int = 2) -> None:
        self.indent_width = indent_width
        self.lines: list[str] = []
        self.depth = 0

    def line(self, text: str) -> None:
        self.lines.append(" " * (self.indent_width * self.depth) + text)

    def fmt_block(self, body: list[ast.Stmt]) -> None:
        self.depth += 1
        for stmt in body:
            self.fmt_stmt(stmt)
        self.depth -= 1

    def fmt_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            head = "WE HAS A" if stmt.scope == "WE" else "I HAS A"
            parts = [f"{head} {stmt.name}"]
            if stmt.is_array and stmt.static_type:
                kw = "ITZ SRSLY LOTZ A" if stmt.srsly else "ITZ LOTZ A"
                parts.append(f"{kw} {stmt.static_type}S")
                parts.append(f"AN THAR IZ {format_expr(stmt.size)}")
            elif stmt.static_type:
                kw = "ITZ SRSLY A" if stmt.srsly else "ITZ A"
                parts.append(f"{kw} {stmt.static_type}")
            if stmt.init is not None:
                joiner = "AN ITZ" if stmt.static_type else "ITZ"
                parts.append(f"{joiner} {format_expr(stmt.init)}")
            if stmt.shared_lock:
                parts.append("AN IM SHARIN IT")
            self.line(" ".join(parts))
        elif isinstance(stmt, ast.Assign):
            self.line(f"{format_expr(stmt.target)} R {format_expr(stmt.value)}")
        elif isinstance(stmt, ast.CastStmt):
            self.line(f"{format_expr(stmt.target)} IS NOW A {stmt.to_type}")
        elif isinstance(stmt, ast.ExprStmt):
            self.line(format_expr(stmt.expr))
        elif isinstance(stmt, ast.Visible):
            args = " ".join(format_expr(a) for a in stmt.args)
            bang = "" if stmt.newline else "!"
            self.line(f"VISIBLE {args}{bang}".rstrip())
        elif isinstance(stmt, ast.Gimmeh):
            self.line(f"GIMMEH {format_expr(stmt.target)}")
        elif isinstance(stmt, ast.CanHas):
            self.line(f"CAN HAS {stmt.library}?")
        elif isinstance(stmt, ast.If):
            self.line("O RLY?")
            self.line("YA RLY")
            self.fmt_block(stmt.ya_rly)
            for cond, body in stmt.mebbe:
                self.line(f"MEBBE {format_expr(cond)}")
                self.fmt_block(body)
            if stmt.no_wai:
                self.line("NO WAI")
                self.fmt_block(stmt.no_wai)
            self.line("OIC")
        elif isinstance(stmt, ast.Switch):
            self.line("WTF?")
            for lit, body in stmt.cases:
                self.line(f"OMG {format_expr(lit)}")
                self.fmt_block(body)
            if stmt.default:
                self.line("OMGWTF")
                self.fmt_block(stmt.default)
            self.line("OIC")
        elif isinstance(stmt, ast.Loop):
            head = f"IM IN YR {stmt.label}"
            if stmt.var is not None:
                head += f" {stmt.op} YR {stmt.var}"
            if stmt.cond is not None:
                head += f" {stmt.cond_kind} {format_expr(stmt.cond)}"
            self.line(head)
            self.fmt_block(stmt.body)
            self.line(f"IM OUTTA YR {stmt.label}")
        elif isinstance(stmt, ast.Gtfo):
            self.line("GTFO")
        elif isinstance(stmt, ast.FuncDef):
            head = f"HOW IZ I {stmt.name}"
            if stmt.params:
                head += " " + " AN ".join(f"YR {p}" for p in stmt.params)
            self.line(head)
            self.fmt_block(stmt.body)
            self.line("IF U SAY SO")
        elif isinstance(stmt, ast.Return):
            self.line(f"FOUND YR {format_expr(stmt.expr)}")
        elif isinstance(stmt, ast.Hugz):
            self.line("HUGZ")
        elif isinstance(stmt, ast.LockStmt):
            kw = {
                "lock": "IM SRSLY MESIN WIF",
                "trylock": "IM MESIN WIF",
                "unlock": "DUN MESIN WIF",
            }[stmt.kind]
            self.line(f"{kw} {format_expr(stmt.target)}")
        elif isinstance(stmt, ast.TxtStmt):
            if stmt.block:
                self.line(f"TXT MAH BFF {format_expr(stmt.pe)} AN STUFF")
                self.fmt_block(stmt.body)
                self.line("TTYL")
            else:
                inner = Formatter(self.indent_width)
                inner.fmt_stmt(stmt.body[0])
                self.line(
                    f"TXT MAH BFF {format_expr(stmt.pe)}, "
                    + inner.lines[0].lstrip()
                )
                for extra in inner.lines[1:]:
                    self.lines.append(
                        " " * (self.indent_width * self.depth) + extra
                    )
        else:
            raise LolRuntimeError(
                f"cannot format statement {type(stmt).__name__}"
            )


def format_program(program: ast.Program) -> str:
    f = Formatter()
    version = f" {program.version}" if program.version else ""
    f.line(f"HAI{version}")
    for stmt in program.body:
        f.fmt_stmt(stmt)
    f.line("KTHXBYE")
    return "\n".join(f.lines) + "\n"


def format_source(source: str, filename: str = "<string>") -> str:
    from .parser import parse

    return format_program(parse(source, filename))
