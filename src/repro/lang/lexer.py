"""Lexer for LOLCODE 1.2 with the paper's parallel extensions.

The lexer is line oriented, mirroring LOLCODE's statement model:

* a physical newline ends a statement (emitted as a ``NEWLINE`` token);
* a comma is a *virtual* newline (paper Table I) and is emitted as the
  same ``NEWLINE`` token;
* ``...`` (or the unicode ellipsis) at end of line continues the logical
  line, exactly as used throughout the paper's n-body listing;
* ``BTW`` starts a line comment, ``OBTW``/``TLDR`` bracket a block comment.

Multi-word keywords (``TXT MAH BFF``, ``IM SRSLY MESIN WIF``, ...) are
matched greedily, longest phrase first, so ``MAH FRENZ`` lexes as one
keyword while ``MAH x`` lexes as the ``MAH`` qualifier followed by an
identifier.

String literals support the LOLCODE 1.2 colon escapes:

====== ==========================
``:)`` newline
``:>`` tab
``:o`` bell
``:"`` double quote
``::`` literal colon
``:(<hex>)`` unicode code point
``:{<var>}`` variable interpolation
====== ==========================
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .errors import LolSyntaxError, SourcePos
from .tokens import KEYWORD_PHRASES, Token, TokType

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"-?\d+(\.\d+)?([eE][-+]?\d+)?")
_ELLIPSIS = ("...", "…")


@dataclass(frozen=True, slots=True)
class _Lexeme:
    """A raw lexeme prior to keyword phrase grouping."""

    kind: str  # word | int | float | string | qmark | bang | newline | indexz
    text: str
    value: object
    pos: SourcePos


def _build_phrase_table() -> dict[str, list[tuple[str, ...]]]:
    table: dict[str, list[tuple[str, ...]]] = {}
    for phrase in KEYWORD_PHRASES:
        words = tuple(phrase.split(" "))
        table.setdefault(words[0], []).append(words)
    for options in table.values():
        options.sort(key=len, reverse=True)
    return table


_PHRASES_BY_FIRST_WORD = _build_phrase_table()


class Lexer:
    """Tokenize LOLCODE source text into a flat token stream."""

    def __init__(self, source: str, filename: str = "<string>") -> None:
        self.source = source
        self.filename = filename

    # -- public API ---------------------------------------------------------

    def tokenize(self) -> list[Token]:
        lexemes = self._scan()
        return self._group_keywords(lexemes)

    # -- pass 1: raw lexemes --------------------------------------------------

    def _scan(self) -> list[_Lexeme]:
        out: list[_Lexeme] = []
        lines = self.source.split("\n")
        lineno = 0
        in_block_comment = False
        continuing = False
        n_lines = len(lines)
        while lineno < n_lines:
            raw = lines[lineno]
            lineno += 1
            i = 0
            length = len(raw)
            line_has_content = False
            ends_with_continuation = False
            while i < length:
                ch = raw[i]
                pos = SourcePos(lineno, i + 1, self.filename)
                if in_block_comment:
                    # Look for TLDR terminating the block comment.
                    m = _WORD_RE.match(raw, i)
                    if m and m.group(0) == "TLDR":
                        in_block_comment = False
                        i = m.end()
                    else:
                        i += 1
                    continue
                if ch in " \t\r":
                    i += 1
                    continue
                if raw.startswith(_ELLIPSIS[0], i) or raw.startswith(_ELLIPSIS[1], i):
                    ends_with_continuation = True
                    i += 3 if raw.startswith(_ELLIPSIS[0], i) else 1
                    # Everything after a continuation marker on the same
                    # line must be whitespace or a comment.
                    rest = raw[i:].strip()
                    if rest and not rest.startswith("BTW"):
                        raise LolSyntaxError(
                            "unexpected text after '...' line continuation", pos
                        )
                    i = length
                    continue
                if ch == ",":
                    out.append(_Lexeme("newline", ",", None, pos))
                    i += 1
                    line_has_content = True
                    continue
                if ch == "?":
                    out.append(_Lexeme("qmark", "?", None, pos))
                    i += 1
                    line_has_content = True
                    continue
                if ch == "!":
                    out.append(_Lexeme("bang", "!", None, pos))
                    i += 1
                    line_has_content = True
                    continue
                if ch == "'" and raw.startswith("'Z", i):
                    out.append(_Lexeme("indexz", "'Z", None, pos))
                    i += 2
                    line_has_content = True
                    continue
                if ch == '"':
                    parts, i = self._scan_string(raw, i, lineno)
                    out.append(_Lexeme("string", '"..."', parts, pos))
                    line_has_content = True
                    continue
                # ASCII digits only: str.isdigit() accepts unicode digit
                # forms (e.g. superscripts) the number regex rejects.
                if ch in "0123456789" or (
                    ch == "-" and i + 1 < length and raw[i + 1] in "0123456789"
                ):
                    m = _NUM_RE.match(raw, i)
                    assert m is not None
                    text = m.group(0)
                    if m.group(1) or m.group(2):
                        out.append(_Lexeme("float", text, float(text), pos))
                    else:
                        out.append(_Lexeme("int", text, int(text), pos))
                    i = m.end()
                    line_has_content = True
                    continue
                m = _WORD_RE.match(raw, i)
                if m:
                    word = m.group(0)
                    if word == "BTW":
                        i = length  # rest of line is a comment
                        continue
                    if word == "OBTW" and not line_has_content:
                        in_block_comment = True
                        i = m.end()
                        continue
                    out.append(_Lexeme("word", word, word, pos))
                    i = m.end()
                    line_has_content = True
                    continue
                raise LolSyntaxError(f"unexpected character {ch!r}", pos)
            if in_block_comment:
                continue
            if ends_with_continuation:
                continuing = True
                continue
            if line_has_content or continuing:
                out.append(
                    _Lexeme(
                        "newline", "\n", None, SourcePos(lineno, length + 1, self.filename)
                    )
                )
            continuing = False
        out.append(
            _Lexeme("newline", "\n", None, SourcePos(n_lines + 1, 1, self.filename))
        )
        return out

    def _scan_string(
        self, raw: str, start: int, lineno: int
    ) -> tuple[list[object], int]:
        """Scan a double-quoted string starting at ``raw[start]``.

        Returns a list of parts: plain ``str`` segments interleaved with
        ``("interp", varname)`` tuples for ``:{var}`` interpolation.
        """
        i = start + 1
        length = len(raw)
        parts: list[object] = []
        buf: list[str] = []

        def flush() -> None:
            if buf:
                parts.append("".join(buf))
                buf.clear()

        while i < length:
            ch = raw[i]
            if ch == '"':
                flush()
                return parts, i + 1
            if ch == ":":
                if i + 1 >= length:
                    break
                esc = raw[i + 1]
                if esc == ")":
                    buf.append("\n")
                    i += 2
                elif esc == ">":
                    buf.append("\t")
                    i += 2
                elif esc == "o":
                    buf.append("\a")
                    i += 2
                elif esc == '"':
                    buf.append('"')
                    i += 2
                elif esc == ":":
                    buf.append(":")
                    i += 2
                elif esc == "(":
                    end = raw.find(")", i + 2)
                    if end < 0:
                        raise LolSyntaxError(
                            "unterminated :(<hex>) escape",
                            SourcePos(lineno, i + 1, self.filename),
                        )
                    hexpart = raw[i + 2 : end]
                    try:
                        buf.append(chr(int(hexpart, 16)))
                    except ValueError as exc:
                        raise LolSyntaxError(
                            f"bad hex escape {hexpart!r}",
                            SourcePos(lineno, i + 1, self.filename),
                        ) from exc
                    i = end + 1
                elif esc == "{":
                    end = raw.find("}", i + 2)
                    if end < 0:
                        raise LolSyntaxError(
                            "unterminated :{var} interpolation",
                            SourcePos(lineno, i + 1, self.filename),
                        )
                    varname = raw[i + 2 : end]
                    if not _WORD_RE.fullmatch(varname):
                        raise LolSyntaxError(
                            f"bad interpolation variable {varname!r}",
                            SourcePos(lineno, i + 1, self.filename),
                        )
                    flush()
                    parts.append(("interp", varname))
                    i = end + 1
                else:
                    raise LolSyntaxError(
                        f"unknown string escape ':{esc}'",
                        SourcePos(lineno, i + 1, self.filename),
                    )
                continue
            buf.append(ch)
            i += 1
        raise LolSyntaxError(
            "unterminated string literal", SourcePos(lineno, start + 1, self.filename)
        )

    # -- pass 2: keyword phrase grouping ------------------------------------

    def _group_keywords(self, lexemes: list[_Lexeme]) -> list[Token]:
        tokens: list[Token] = []
        i = 0
        n = len(lexemes)
        while i < n:
            lx = lexemes[i]
            if lx.kind == "word":
                options = _PHRASES_BY_FIRST_WORD.get(lx.text)
                matched = False
                if options:
                    for phrase_words in options:
                        k = len(phrase_words)
                        if i + k <= n and all(
                            lexemes[i + j].kind == "word"
                            and lexemes[i + j].text == phrase_words[j]
                            for j in range(k)
                        ):
                            tokens.append(
                                Token(TokType.KW, " ".join(phrase_words), lx.pos)
                            )
                            i += k
                            matched = True
                            break
                if matched:
                    continue
                tokens.append(Token(TokType.IDENT, lx.text, lx.pos))
                i += 1
                continue
            if lx.kind == "int":
                tokens.append(Token(TokType.INT, lx.value, lx.pos))
            elif lx.kind == "float":
                tokens.append(Token(TokType.FLOAT, lx.value, lx.pos))
            elif lx.kind == "string":
                tokens.append(Token(TokType.STRING, lx.value, lx.pos))
            elif lx.kind == "qmark":
                tokens.append(Token(TokType.QMARK, "?", lx.pos))
            elif lx.kind == "bang":
                tokens.append(Token(TokType.BANG, "!", lx.pos))
            elif lx.kind == "indexz":
                tokens.append(Token(TokType.KW, "'Z", lx.pos))
            elif lx.kind == "newline":
                # Collapse runs of newlines into one token.
                if tokens and tokens[-1].type is TokType.NEWLINE:
                    i += 1
                    continue
                tokens.append(Token(TokType.NEWLINE, "\n", lx.pos))
            i += 1
        last_pos = tokens[-1].pos if tokens else SourcePos(1, 1, self.filename)
        tokens.append(Token(TokType.EOF, None, last_pos))
        return tokens


def tokenize(source: str, filename: str = "<string>") -> list[Token]:
    """Convenience wrapper: tokenize ``source`` into a token list."""
    return Lexer(source, filename).tokenize()
