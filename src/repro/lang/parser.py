"""Recursive-descent parser for LOLCODE 1.2 + the paper's extensions.

LOLCODE expressions use prefix (Polish) notation, so the expression grammar
is unambiguous without precedence rules: a binary operator keyword is
followed by its two operand expressions separated by an optional ``AN``.
Statements are newline-separated; commas are virtual newlines (handled by
the lexer).

Paper-specific grammar, supported here:

* multi-clause declarations, e.g.
  ``I HAS A pe ITZ A NUMBR AN ITZ ME``
  ``WE HAS A pos_x ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32 AN IM SHARIN IT``
* array indexing ``var'Z expr`` (also valid as an assignment target);
* thread predication, single-statement (``TXT MAH BFF k, <stmt>``) and
  block (``TXT MAH BFF k AN STUFF ... TTYL``) forms;
* ``UR`` / ``MAH`` address-space qualifiers on variable references;
* lock statements ``IM [SRSLY] MESIN WIF <var>`` / ``DUN MESIN WIF <var>``;
* ``HUGZ`` barrier, ``ME`` / ``MAH FRENZ`` PE enumeration;
* Table III math keywords (parsed as ordinary unary/nullary operators).
"""

from __future__ import annotations

from functools import lru_cache

from . import ast
from .errors import LolSyntaxError, SourcePos
from .tokens import (
    BINARY_OPS,
    TYPE_KEYWORDS,
    UNARY_OPS,
    VARIADIC_OPS,
    Token,
    TokType,
)

#: Keywords that terminate a statement block; parse_block stops (without
#: consuming) when it sees one of these.
_BLOCK_TERMINATORS = frozenset(
    {
        "KTHXBYE",
        "OIC",
        "YA RLY",
        "NO WAI",
        "MEBBE",
        "OMG",
        "OMGWTF",
        "IM OUTTA YR",
        "IF U SAY SO",
        "TTYL",
    }
)

#: Keyword phrases that can begin an expression.
_EXPR_START_KWS = (
    frozenset(BINARY_OPS)
    | frozenset(UNARY_OPS)
    | frozenset(VARIADIC_OPS)
    | frozenset(
        {
            "MAEK",
            "SRS",
            "IT",
            "ME",
            "MAH FRENZ",
            "WHATEVR",
            "WHATEVAR",
            "WIN",
            "FAIL",
            "NOOB",
            "I IZ",
            "UR",
            "MAH",
        }
    )
)


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.i = 0

    # -- token helpers --------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        j = min(self.i + offset, len(self.tokens) - 1)
        return self.tokens[j]

    def advance(self) -> Token:
        tok = self.tokens[self.i]
        if self.i < len(self.tokens) - 1:
            self.i += 1
        return tok

    def check_kw(self, *phrases: str) -> bool:
        tok = self.peek()
        return tok.type is TokType.KW and tok.value in phrases

    def match_kw(self, *phrases: str) -> Token | None:
        if self.check_kw(*phrases):
            return self.advance()
        return None

    def expect_kw(self, phrase: str) -> Token:
        tok = self.peek()
        if not tok.is_kw(phrase):
            raise LolSyntaxError(f"expected '{phrase}', found {tok}", tok.pos)
        return self.advance()

    def expect(self, ttype: TokType) -> Token:
        tok = self.peek()
        if tok.type is not ttype:
            raise LolSyntaxError(f"expected {ttype.value}, found {tok}", tok.pos)
        return self.advance()

    def skip_newlines(self) -> None:
        while self.peek().type is TokType.NEWLINE:
            self.advance()

    def end_statement(self) -> None:
        tok = self.peek()
        if tok.type is TokType.NEWLINE:
            self.advance()
        elif tok.type is not TokType.EOF and not (
            tok.type is TokType.KW and tok.value in _BLOCK_TERMINATORS
        ):
            raise LolSyntaxError(f"expected end of statement, found {tok}", tok.pos)

    # -- program --------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        self.skip_newlines()
        pos = self.peek().pos
        self.expect_kw("HAI")
        version: str | None = None
        tok = self.peek()
        if tok.type in (TokType.FLOAT, TokType.INT):
            version = str(self.advance().value)
        elif tok.type is TokType.IDENT:
            version = str(self.advance().value)
        self.end_statement()
        body = self.parse_block()
        self.expect_kw("KTHXBYE")
        self.skip_newlines()
        tok = self.peek()
        if tok.type is not TokType.EOF:
            raise LolSyntaxError(f"unexpected {tok} after KTHXBYE", tok.pos)
        return ast.Program(version, body, pos=pos)

    def parse_block(self) -> list[ast.Stmt]:
        stmts: list[ast.Stmt] = []
        while True:
            self.skip_newlines()
            tok = self.peek()
            if tok.type is TokType.EOF:
                return stmts
            if tok.type is TokType.KW and tok.value in _BLOCK_TERMINATORS:
                return stmts
            stmts.append(self.parse_statement())
        return stmts

    # -- statements -------------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        pos = tok.pos
        if tok.type is TokType.KW:
            kw = tok.value
            if kw in ("I HAS A", "WE HAS A"):
                return self.parse_declaration()
            if kw == "VISIBLE":
                return self.parse_visible()
            if kw == "GIMMEH":
                self.advance()
                target = self.parse_lvalue()
                self.end_statement()
                return ast.Gimmeh(target, pos=pos)
            if kw == "CAN HAS":
                self.advance()
                lib = self.expect(TokType.IDENT).value
                self.expect(TokType.QMARK)
                self.end_statement()
                return ast.CanHas(str(lib), pos=pos)
            if kw == "O RLY":
                return self.parse_if()
            if kw == "WTF":
                return self.parse_switch()
            if kw == "IM IN YR":
                return self.parse_loop()
            if kw == "GTFO":
                self.advance()
                self.end_statement()
                return ast.Gtfo(pos=pos)
            if kw == "HOW IZ I":
                return self.parse_funcdef()
            if kw == "FOUND YR":
                self.advance()
                expr = self.parse_expression()
                self.end_statement()
                return ast.Return(expr, pos=pos)
            if kw == "HUGZ":
                self.advance()
                self.end_statement()
                return ast.Hugz(pos=pos)
            if kw in ("IM SRSLY MESIN WIF", "IM MESIN WIF", "DUN MESIN WIF"):
                return self.parse_lock(kw)
            if kw == "TXT MAH BFF":
                return self.parse_txt()
        # Fall through: expression statement, assignment, or IS NOW A cast.
        expr = self.parse_expression()
        if self.check_kw("R"):
            self.advance()
            if not isinstance(expr, ast.LValue):
                raise LolSyntaxError("invalid assignment target", pos)
            value = self.parse_expression()
            self.end_statement()
            return ast.Assign(expr, value, pos=pos)
        if self.check_kw("IS NOW A"):
            self.advance()
            to_type = self.parse_type_name()
            if not isinstance(expr, ast.LValue):
                raise LolSyntaxError("invalid cast target", pos)
            self.end_statement()
            return ast.CastStmt(expr, to_type, pos=pos)
        self.end_statement()
        return ast.ExprStmt(expr, pos=pos)

    # -- declarations ----------------------------------------------------------

    def parse_type_name(self) -> str:
        tok = self.peek()
        if tok.type is TokType.KW and str(tok.value) in TYPE_KEYWORDS:
            self.advance()
            return TYPE_KEYWORDS[str(tok.value)]
        raise LolSyntaxError(f"expected a type name, found {tok}", tok.pos)

    def parse_declaration(self) -> ast.VarDecl:
        tok = self.advance()
        pos = tok.pos
        scope = "WE" if tok.value == "WE HAS A" else "I"
        name = str(self.expect(TokType.IDENT).value)
        decl = ast.VarDecl(scope=scope, name=name, pos=pos)
        while True:
            t = self.peek()
            if t.type is TokType.NEWLINE or t.type is TokType.EOF:
                break
            if t.type is not TokType.KW:
                raise LolSyntaxError(
                    f"unexpected {t} in declaration of '{name}'", t.pos
                )
            kw = str(t.value)
            if kw == "ITZ A":
                self.advance()
                decl.static_type = self.parse_type_name()
            elif kw == "ITZ SRSLY A":
                self.advance()
                decl.static_type = self.parse_type_name()
                decl.srsly = True
            elif kw in ("ITZ SRSLY LOTZ A", "ITZ LOTZ A"):
                self.advance()
                decl.static_type = self.parse_type_name()
                decl.srsly = kw == "ITZ SRSLY LOTZ A"
                decl.is_array = True
            elif kw == "ITZ":
                self.advance()
                decl.init = self.parse_expression()
            elif kw == "AN ITZ":
                self.advance()
                decl.init = self.parse_expression()
            elif kw == "AN THAR IZ":
                self.advance()
                decl.size = self.parse_expression()
                decl.is_array = True
            elif kw in ("AN IM SHARIN IT", "IM SHARIN IT"):
                self.advance()
                decl.shared_lock = True
            else:
                raise LolSyntaxError(
                    f"unexpected '{kw}' in declaration of '{name}'", t.pos
                )
        if decl.is_array and decl.size is None:
            raise LolSyntaxError(
                f"array declaration of '{name}' is missing 'AN THAR IZ <size>'",
                pos,
            )
        if decl.shared_lock and decl.scope != "WE":
            raise LolSyntaxError(
                f"'IM SHARIN IT' requires a symmetric 'WE HAS A' declaration "
                f"for '{name}'",
                pos,
            )
        self.end_statement()
        return decl

    # -- simple statements -------------------------------------------------------

    def parse_visible(self) -> ast.Visible:
        pos = self.advance().pos
        args: list[ast.Expr] = []
        newline = True
        while True:
            tok = self.peek()
            if tok.type in (TokType.NEWLINE, TokType.EOF):
                break
            if tok.type is TokType.BANG:
                self.advance()
                newline = False
                break
            args.append(self.parse_expression())
        self.end_statement()
        return ast.Visible(args, newline, pos=pos)

    def parse_lock(self, kw: str) -> ast.LockStmt:
        pos = self.advance().pos
        kind = {
            "IM SRSLY MESIN WIF": "lock",
            "IM MESIN WIF": "trylock",
            "DUN MESIN WIF": "unlock",
        }[kw]
        target = self.parse_lvalue()
        if isinstance(target, ast.Index):
            raise LolSyntaxError(
                "locks protect whole variables, not array elements", pos
            )
        self.end_statement()
        return ast.LockStmt(kind, target, pos=pos)

    def parse_txt(self) -> ast.TxtStmt:
        pos = self.advance().pos
        pe = self.parse_expression()
        if self.match_kw("AN STUFF"):
            # Block form; tolerate a trailing comma/newline after AN STUFF
            # (the paper's n-body listing writes ``TXT MAH BFF k AN STUFF,``).
            self.skip_newlines()
            body = self.parse_block()
            self.expect_kw("TTYL")
            self.end_statement()
            return ast.TxtStmt(pe, body, block=True, pos=pos)
        # Single-statement form: the lexer turned the comma into a newline.
        self.skip_newlines()
        stmt = self.parse_statement()
        return ast.TxtStmt(pe, [stmt], block=False, pos=pos)

    # -- control flow ------------------------------------------------------------

    def parse_if(self) -> ast.If:
        pos = self.advance().pos  # O RLY
        self.expect(TokType.QMARK)
        self.end_statement()
        self.skip_newlines()
        ya_rly: list[ast.Stmt] = []
        mebbe: list[tuple[ast.Expr, list[ast.Stmt]]] = []
        no_wai: list[ast.Stmt] = []
        if self.match_kw("YA RLY"):
            self.end_statement()
            ya_rly = self.parse_block()
        while self.check_kw("MEBBE"):
            mpos = self.advance().pos
            cond = self.parse_expression()
            self.end_statement()
            body = self.parse_block()
            mebbe.append((cond, body))
            del mpos
        if self.match_kw("NO WAI"):
            self.end_statement()
            no_wai = self.parse_block()
        self.expect_kw("OIC")
        self.end_statement()
        return ast.If(ya_rly, mebbe, no_wai, pos=pos)

    def parse_switch(self) -> ast.Switch:
        pos = self.advance().pos  # WTF
        self.expect(TokType.QMARK)
        self.end_statement()
        self.skip_newlines()
        cases: list[tuple[ast.Expr, list[ast.Stmt]]] = []
        default: list[ast.Stmt] = []
        while self.check_kw("OMG"):
            self.advance()
            literal = self.parse_literal()
            self.end_statement()
            body = self.parse_block()
            cases.append((literal, body))
        if self.match_kw("OMGWTF"):
            self.end_statement()
            default = self.parse_block()
        self.expect_kw("OIC")
        self.end_statement()
        return ast.Switch(cases, default, pos=pos)

    def parse_literal(self) -> ast.Expr:
        tok = self.peek()
        if tok.type is TokType.INT:
            self.advance()
            return ast.IntLit(int(tok.value), pos=tok.pos)  # type: ignore[arg-type]
        if tok.type is TokType.FLOAT:
            self.advance()
            return ast.FloatLit(float(tok.value), pos=tok.pos)  # type: ignore[arg-type]
        if tok.type is TokType.STRING:
            self.advance()
            return ast.StringLit(list(tok.value), pos=tok.pos)  # type: ignore[arg-type]
        if tok.is_kw("WIN"):
            self.advance()
            return ast.TroofLit(True, pos=tok.pos)
        if tok.is_kw("FAIL"):
            self.advance()
            return ast.TroofLit(False, pos=tok.pos)
        raise LolSyntaxError(f"expected a literal, found {tok}", tok.pos)

    def parse_loop(self) -> ast.Loop:
        pos = self.advance().pos  # IM IN YR
        label = str(self.expect(TokType.IDENT).value)
        loop = ast.Loop(label=label, pos=pos)
        tok = self.peek()
        if tok.is_kw("UPPIN") or tok.is_kw("NERFIN"):
            loop.op = str(self.advance().value)
            self.expect_kw("YR")
            loop.var = str(self.expect(TokType.IDENT).value)
            tok = self.peek()
        if tok.is_kw("TIL") or tok.is_kw("WILE"):
            loop.cond_kind = str(self.advance().value)
            loop.cond = self.parse_expression()
        self.end_statement()
        loop.body = self.parse_block()
        self.expect_kw("IM OUTTA YR")
        end_label = str(self.expect(TokType.IDENT).value)
        if end_label != label:
            raise LolSyntaxError(
                f"loop label mismatch: 'IM IN YR {label}' closed by "
                f"'IM OUTTA YR {end_label}'",
                pos,
            )
        self.end_statement()
        return loop

    def parse_funcdef(self) -> ast.FuncDef:
        pos = self.advance().pos  # HOW IZ I
        name = str(self.expect(TokType.IDENT).value)
        params: list[str] = []
        if self.match_kw("YR"):
            params.append(str(self.expect(TokType.IDENT).value))
            while self.check_kw("AN"):
                # 'AN YR <param>'
                save = self.i
                self.advance()
                if not self.match_kw("YR"):
                    self.i = save
                    break
                params.append(str(self.expect(TokType.IDENT).value))
        self.end_statement()
        body = self.parse_block()
        self.expect_kw("IF U SAY SO")
        self.end_statement()
        return ast.FuncDef(name, params, body, pos=pos)

    # -- expressions ---------------------------------------------------------------

    def parse_lvalue(self) -> ast.Expr:
        """Parse a (possibly qualified, possibly indexed) variable reference."""
        expr = self.parse_expression()
        if not isinstance(expr, ast.LValue):
            raise LolSyntaxError(
                "expected a variable reference", self.peek().pos
            )
        return expr

    def parse_expression(self) -> ast.Expr:
        tok = self.peek()
        pos = tok.pos
        if tok.type is TokType.INT:
            self.advance()
            return self._postfix(ast.IntLit(int(tok.value), pos=pos))  # type: ignore[arg-type]
        if tok.type is TokType.FLOAT:
            self.advance()
            return self._postfix(ast.FloatLit(float(tok.value), pos=pos))  # type: ignore[arg-type]
        if tok.type is TokType.STRING:
            self.advance()
            return self._postfix(ast.StringLit(list(tok.value), pos=pos))  # type: ignore[arg-type]
        if tok.type is TokType.IDENT:
            self.advance()
            return self._postfix(ast.VarRef(str(tok.value), pos=pos))
        if tok.type is not TokType.KW:
            raise LolSyntaxError(f"expected an expression, found {tok}", pos)

        kw = str(tok.value)
        if kw in BINARY_OPS:
            self.advance()
            lhs = self.parse_expression()
            self.match_kw("AN")  # the separator is optional in LOLCODE 1.2
            rhs = self.parse_expression()
            return ast.BinOp(BINARY_OPS[kw], lhs, rhs, pos=pos)
        if kw in UNARY_OPS:
            self.advance()
            operand = self.parse_expression()
            return ast.UnaryOp(UNARY_OPS[kw], operand, pos=pos)
        if kw in VARIADIC_OPS:
            self.advance()
            operands = [self.parse_expression()]
            while self.match_kw("AN"):
                operands.append(self.parse_expression())
            self.match_kw("MKAY")  # optional at end of statement
            return ast.NaryOp(VARIADIC_OPS[kw], operands, pos=pos)
        if kw == "MAEK":
            self.advance()
            inner = self.parse_expression()
            self.match_kw("A")  # 'A' is optional in common usage
            to_type = self.parse_type_name()
            return ast.Cast(inner, to_type, pos=pos)
        if kw == "SRS":
            self.advance()
            inner = self.parse_expression()
            return self._postfix(ast.SrsRef(inner, pos=pos))
        if kw in ("UR", "MAH"):
            self.advance()
            nxt = self.peek()
            if nxt.is_kw("SRS"):
                self.advance()
                inner = self.parse_expression()
                return self._postfix(ast.SrsRef(inner, qualifier=kw, pos=pos))
            name = str(self.expect(TokType.IDENT).value)
            return self._postfix(ast.VarRef(name, qualifier=kw, pos=pos))
        if kw == "IT":
            self.advance()
            return ast.ItRef(pos=pos)
        if kw == "ME":
            self.advance()
            return ast.MeExpr(pos=pos)
        if kw == "MAH FRENZ":
            self.advance()
            return ast.FrenzExpr(pos=pos)
        if kw == "WHATEVR":
            self.advance()
            return ast.RandomExpr("int", pos=pos)
        if kw == "WHATEVAR":
            self.advance()
            return ast.RandomExpr("float", pos=pos)
        if kw == "WIN":
            self.advance()
            return ast.TroofLit(True, pos=pos)
        if kw == "FAIL":
            self.advance()
            return ast.TroofLit(False, pos=pos)
        if kw == "NOOB":
            self.advance()
            return ast.NoobLit(pos=pos)
        if kw == "I IZ":
            self.advance()
            name = str(self.expect(TokType.IDENT).value)
            args: list[ast.Expr] = []
            if self.match_kw("YR"):
                args.append(self.parse_expression())
                while self.check_kw("AN"):
                    save = self.i
                    self.advance()
                    if not self.match_kw("YR"):
                        self.i = save
                        break
                    args.append(self.parse_expression())
            self.match_kw("MKAY")
            return ast.FuncCall(name, args, pos=pos)
        raise LolSyntaxError(f"expected an expression, found {tok}", pos)

    def _postfix(self, expr: ast.Expr) -> ast.Expr:
        """Apply the ``'Z`` index postfix (binds tighter than any prefix op)."""
        if self.check_kw("'Z"):
            pos = self.advance().pos
            if not isinstance(expr, (ast.VarRef, ast.SrsRef)):
                raise LolSyntaxError("only variables can be indexed with 'Z", pos)
            index = self.parse_expression()
            return ast.Index(expr, index, pos=pos)
        return expr


def parse(source: str, filename: str = "<string>") -> ast.Program:
    """Parse LOLCODE source text into a :class:`~repro.lang.ast.Program`."""
    from .lexer import tokenize

    return Parser(tokenize(source, filename)).parse_program()


@lru_cache(maxsize=64)
def parse_cached(source: str, filename: str = "<string>") -> ast.Program:
    """Memoized :func:`parse`, shared by the launcher and the closure
    compiler.  Safe because every AST consumer (interpreters, planners,
    compilers, formatter) treats the tree as read-only."""
    return parse(source, filename)


def parse_tokens(tokens: list[Token]) -> ast.Program:
    return Parser(tokens).parse_program()
