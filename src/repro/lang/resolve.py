"""Static scope resolution: names -> integer frame slots.

The closure-compilation engine (:mod:`repro.interp.closures`) replaces the
tree-walker's dict-chain :class:`~repro.interp.env.Env` lookups with flat,
slot-indexed frames.  This module provides the compile-time bookkeeping:
which frame a name lives in, at which slot, with what static metadata.

The scope model mirrors the tree-walker (see the documented divergence
list in :mod:`repro.interp.closures` for the corners where static
resolution cannot reproduce its dynamic behaviour):

* one *frame* per function activation plus one root frame for top-level
  code (slot 0 of every frame is reserved for ``IT``);
* every scoped block (``O RLY?`` arm, ``WTF?`` case, loop body — but
  *not* a ``TXT MAH BFF`` body, which the tree-walker executes in the
  enclosing environment) opens a lexical *block scope* inside the
  current frame — declarations in a block are invisible once the block
  closes, but their slots stay allocated for the frame's lifetime;
* re-declaring a name in the same block **reuses its slot** when the
  static metadata (type, array-ness) is unchanged — the declaration
  statement overwrites the value exactly like the tree-walker's
  fresh-binding replacement, and slot identity keeps function bodies
  (which resolve against the final root scope) pointing at storage that
  is live from the *first* declaration onward; a redeclaration that
  *changes* type or array-ness allocates a fresh slot so compiled
  coercions stay valid;
* symmetric (``WE HAS A``) names always bind into the *root* scope,
  regardless of the block depth of the declaration, because their storage
  lives in the symmetric heap and the tree-walker declares them on the
  globals environment;
* function bodies resolve against their parameters plus the **final**
  root scope (the tree-walker gives calls ``globals.child()``; a global
  that has not been declared by the time the function runs reads as the
  UNDECLARED sentinel and raises the same ``LolNameError``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .types import LolType

#: Variable storage kinds resolved at compile time.
LOCAL = "local"  # slot in the current (function or root) frame
GLOBAL = "global"  # slot in the root frame, accessed from a function
SYMMETRIC = "symmetric"  # storage in the symmetric heap, addressed by name
MISSING = "missing"  # pre-declaration fallback for a name with no outer binding


@dataclass(frozen=True, slots=True)
class VarInfo:
    """Everything the compiler knows about one resolved name.

    ``fallback`` marks a *pre-declared* loop-body binding: the tree-walker
    keeps one environment per loop execution, so a name declared in the
    body is bound to the enclosing (fallback) variable until the first
    iteration's declaration runs, and to the loop-local storage from then
    on.  The compiler pre-allocates the slot, and accesses compiled while
    ``fallback`` is set test the slot's UNDECLARED sentinel at runtime to
    pick the binding — exactly the tree-walker's dynamic behaviour.
    ``fallback`` may be ``None``-kind too: a pre-declared name with no
    enclosing binding simply raises before its declaration runs.
    """

    kind: str  # LOCAL | GLOBAL | SYMMETRIC
    name: str
    slot: int = -1  # frame slot for LOCAL/GLOBAL
    static_type: Optional[LolType] = None
    is_array: bool = False
    fallback: Optional["VarInfo"] = None

    def as_global(self) -> "VarInfo":
        """The view of a root-frame binding from inside a function."""
        if self.kind != LOCAL:
            return self
        return VarInfo(GLOBAL, self.name, self.slot, self.static_type, self.is_array)


@dataclass
class FrameLayout:
    """Slot allocator for one frame.  Slot 0 is reserved for ``IT``."""

    n_slots: int = 1

    def alloc(self) -> int:
        slot = self.n_slots
        self.n_slots += 1
        return slot


class ScopeStack:
    """The resolver state for one frame (root or one function).

    ``push``/``pop`` bracket lexical blocks.  ``declare`` allocates a slot
    in the frame and binds the name in the innermost block;
    ``declare_symmetric`` binds into the outermost (root) block.
    """

    def __init__(
        self,
        layout: FrameLayout,
        root: Optional["ScopeStack"] = None,
    ) -> None:
        self.layout = layout
        self.root = root  # set when resolving a function body
        self.blocks: list[dict[str, VarInfo]] = [{}]

    # -- lexical blocks ---------------------------------------------------

    def push(self) -> None:
        self.blocks.append({})

    def pop(self) -> None:
        self.blocks.pop()

    # -- declarations -----------------------------------------------------

    def declare(
        self,
        name: str,
        *,
        static_type: Optional[LolType] = None,
        is_array: bool = False,
    ) -> VarInfo:
        prev = self.blocks[-1].get(name)
        if (
            prev is not None
            and prev.kind == LOCAL
            and prev.static_type is static_type
            and prev.is_array == is_array
        ):
            # Same-shape (re)declaration: reuse the slot.  If it was only
            # *pre*-declared so far, later references may now take the
            # fast unconditional path — the declaration dominates them.
            if prev.fallback is not None:
                prev = VarInfo(LOCAL, name, prev.slot, static_type, is_array)
                self.blocks[-1][name] = prev
            return prev
        info = VarInfo(LOCAL, name, self.layout.alloc(), static_type, is_array)
        self.blocks[-1][name] = info
        return info

    def predeclare(
        self,
        name: str,
        *,
        static_type: Optional[LolType] = None,
    ) -> VarInfo:
        """Pre-bind a scalar that a loop body will declare (see VarInfo)."""
        if name in self.blocks[-1]:
            return self.blocks[-1][name]
        fallback = self.lookup(name) or VarInfo(MISSING, name)
        info = VarInfo(
            LOCAL, name, self.layout.alloc(), static_type, False, fallback
        )
        self.blocks[-1][name] = info
        return info

    def declare_symmetric(
        self, name: str, *, static_type: Optional[LolType], is_array: bool
    ) -> VarInfo:
        info = VarInfo(SYMMETRIC, name, -1, static_type, is_array)
        # Symmetric storage binds at the root, like Interpreter does with
        # ``self.globals.declare`` — even from nested blocks or functions.
        target = self.root if self.root is not None else self
        target.blocks[0][name] = info
        return info

    # -- lookups ----------------------------------------------------------

    def lookup(self, name: str) -> Optional[VarInfo]:
        for block in reversed(self.blocks):
            info = block.get(name)
            if info is not None:
                return info
        if self.root is not None:
            for block in reversed(self.root.blocks):
                info = block.get(name)
                if info is not None:
                    return info.as_global()
        return None

    def snapshot(self) -> dict[str, VarInfo]:
        """The full visible-name map at the current program point.

        Used to compile ``SRS <expr>`` computed identifiers: the *set* of
        visible bindings at an SRS site is static even though the chosen
        name is dynamic, so the runtime lookup is one dict get against
        this snapshot.
        """
        merged: dict[str, VarInfo] = {}
        if self.root is not None:
            for block in self.root.blocks:
                for name, info in block.items():
                    merged[name] = info.as_global()
        for block in self.blocks:
            merged.update(block)
        return merged
