"""Token model and the multi-word keyword table for extended LOLCODE.

LOLCODE keywords are frequently multi-word phrases (``SUM OF``, ``IM IN
YR``, ``TXT MAH BFF``).  The lexer performs greedy longest-phrase matching
against :data:`KEYWORD_PHRASES`, emitting a single ``KW`` token whose value
is the canonical phrase (space separated, upper case).

The table covers the LOLCODE 1.2 core (paper Table I), the parallel and
distributed computing extensions (Table II), and the additional math and
random-number extensions (Table III).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourcePos


class TokType(enum.Enum):
    KW = "keyword"
    IDENT = "identifier"
    INT = "integer literal"
    FLOAT = "float literal"
    STRING = "string literal"
    NEWLINE = "newline"
    QMARK = "'?'"
    BANG = "'!'"
    EOF = "end of file"


@dataclass(frozen=True, slots=True)
class Token:
    type: TokType
    value: object  # canonical phrase for KW, name for IDENT, parsed literal otherwise
    pos: SourcePos

    def is_kw(self, phrase: str) -> bool:
        return self.type is TokType.KW and self.value == phrase

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.type is TokType.KW:
            return f"KW({self.value})"
        return f"{self.type.name}({self.value!r})"


# ---------------------------------------------------------------------------
# Keyword phrases.
#
# Longest phrases must win, e.g. ``MAH FRENZ`` before ``MAH`` and
# ``SMALLR OF`` (min, LOLCODE 1.2) before the paper's bare ``SMALLR``
# (less-than comparison, Table I).  The lexer sorts internally, so order
# here is purely for readability.
# ---------------------------------------------------------------------------

KEYWORD_PHRASES: tuple[str, ...] = (
    # -- program structure ---------------------------------------------------
    "HAI",
    "KTHXBYE",
    "CAN HAS",
    # -- I/O ------------------------------------------------------------------
    "VISIBLE",
    "GIMMEH",
    # -- declarations / assignment -------------------------------------------
    "I HAS A",
    "WE HAS A",
    "ITZ SRSLY LOTZ A",
    "ITZ SRSLY A",
    "ITZ LOTZ A",
    "ITZ A",
    "ITZ",
    "AN THAR IZ",
    "AN IM SHARIN IT",
    "IM SHARIN IT",
    "AN ITZ",
    "R",
    # -- types ----------------------------------------------------------------
    "NUMBR",
    "NUMBRS",
    "NUMBAR",
    "NUMBARS",
    "YARN",
    "YARNS",
    "TROOF",
    "TROOFS",
    "NOOB",
    "BUKKIT",
    # -- literals ---------------------------------------------------------
    "WIN",
    "FAIL",
    # -- operators (LOLCODE 1.2, Table I) --------------------------------------
    "SUM OF",
    "DIFF OF",
    "PRODUKT OF",
    "QUOSHUNT OF",
    "MOD OF",
    "BIGGR OF",
    "SMALLR OF",
    "BOTH SAEM",
    "DIFFRINT",
    "BIGGER",   # paper Table I: greater-than comparison
    "SMALLR",   # paper Table I: less-than comparison
    "BOTH OF",
    "EITHER OF",
    "WON OF",
    "NOT",
    "ALL OF",
    "ANY OF",
    "SMOOSH",
    "MKAY",
    "AN",
    "IT",
    # -- casting ----------------------------------------------------------
    "MAEK",
    "IS NOW A",
    "A",
    "SRS",
    # -- control flow -------------------------------------------------------
    "O RLY",
    "YA RLY",
    "NO WAI",
    "MEBBE",
    "OIC",
    "WTF",
    "OMGWTF",
    "OMG",
    "GTFO",
    "IM IN YR",
    "IM OUTTA YR",
    "UPPIN",
    "NERFIN",
    "TIL",
    "WILE",
    "YR",
    # -- functions ----------------------------------------------------------
    "HOW IZ I",
    "IF U SAY SO",
    "I IZ",
    "FOUND YR",
    # -- parallel & distributed extensions (paper Table II) -------------------
    "MAH FRENZ",
    "ME",
    "IM SRSLY MESIN WIF",
    "IM MESIN WIF",
    "DUN MESIN WIF",
    "HUGZ",
    "TXT MAH BFF",
    "AN STUFF",
    "TTYL",
    "UR",
    "MAH",
    "'Z",
    # -- additional extensions (paper Table III) -------------------------------
    "WHATEVR",
    "WHATEVAR",
    "SQUAR OF",
    "UNSQUAR OF",
    "FLIP OF",
)

#: Type-name keywords (singular and the plural forms used by
#: ``LOTZ A NUMBARS``) mapped to their canonical singular spelling.
TYPE_KEYWORDS: dict[str, str] = {
    "NUMBR": "NUMBR",
    "NUMBRS": "NUMBR",
    "NUMBAR": "NUMBAR",
    "NUMBARS": "NUMBAR",
    "YARN": "YARN",
    "YARNS": "YARN",
    "TROOF": "TROOF",
    "TROOFS": "TROOF",
    "NOOB": "NOOB",
}

#: Binary arithmetic/comparison operator phrases -> semantic op name.
BINARY_OPS: dict[str, str] = {
    "SUM OF": "add",
    "DIFF OF": "sub",
    "PRODUKT OF": "mul",
    "QUOSHUNT OF": "div",
    "MOD OF": "mod",
    "BIGGR OF": "max",
    "SMALLR OF": "min",
    "BOTH SAEM": "eq",
    "DIFFRINT": "ne",
    "BIGGER": "gt",
    "SMALLR": "lt",
    "BOTH OF": "and",
    "EITHER OF": "or",
    "WON OF": "xor",
}

#: Unary operator phrases -> semantic op name (Table III extensions + NOT).
UNARY_OPS: dict[str, str] = {
    "NOT": "not",
    "SQUAR OF": "square",
    "UNSQUAR OF": "sqrt",
    "FLIP OF": "recip",
}

#: Variadic operator phrases -> semantic op name.
VARIADIC_OPS: dict[str, str] = {
    "ALL OF": "all",
    "ANY OF": "any",
    "SMOOSH": "smoosh",
}

#: Phrases that begin a statement and therefore terminate greedy
#: expression-list parsing (used by VISIBLE argument parsing).
STATEMENT_STARTERS: frozenset[str] = frozenset(
    {
        "VISIBLE",
        "GIMMEH",
        "I HAS A",
        "WE HAS A",
        "O RLY",
        "WTF",
        "IM IN YR",
        "IM OUTTA YR",
        "HOW IZ I",
        "IF U SAY SO",
        "FOUND YR",
        "GTFO",
        "HUGZ",
        "TXT MAH BFF",
        "TTYL",
        "IM SRSLY MESIN WIF",
        "IM MESIN WIF",
        "DUN MESIN WIF",
        "KTHXBYE",
        "OIC",
        "YA RLY",
        "NO WAI",
        "MEBBE",
        "OMG",
        "OMGWTF",
        "CAN HAS",
    }
)
