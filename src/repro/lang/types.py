"""The LOLCODE type system.

LOLCODE 1.2 has five scalar types:

* ``NUMBR`` — 64-bit signed integer
* ``NUMBAR`` — double-precision float
* ``YARN`` — string
* ``TROOF`` — boolean (``WIN`` / ``FAIL``)
* ``NOOB`` — the untyped/uninitialized value

plus, with the paper's extensions, homogeneous fixed-size arrays of the
numeric and scalar types (``LOTZ A NUMBARS AN THAR IZ 32``).

This module centralises the casting rules so that the interpreter, the
static checker, and both compiler backends agree exactly.  The rules follow
the LOLCODE 1.2 specification as implemented by the ``lci`` interpreter the
paper builds on:

* NOOB casts implicitly only to TROOF (FAIL); any other implicit use is an
  error, while *explicit* casts of NOOB yield zero values ("" / 0 / 0.0).
* TROOF: ``""``, ``0``, ``0.0`` and ``NOOB`` are FAIL, all else WIN.
* YARN -> NUMBR/NUMBAR parse decimal strings; failure is a runtime error.
* NUMBAR -> NUMBR truncates toward zero.
* NUMBAR -> YARN formats with two decimal places (per the 1.2 spec).
"""

from __future__ import annotations

import enum

from .errors import LolRuntimeError, LolTypeError, SourcePos


class LolType(enum.Enum):
    NUMBR = "NUMBR"
    NUMBAR = "NUMBAR"
    YARN = "YARN"
    TROOF = "TROOF"
    NOOB = "NOOB"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: numpy dtype strings for the numeric LOLCODE types (used by the symmetric
#: heap and the compiled backends).
NUMPY_DTYPES = {
    LolType.NUMBR: "int64",
    LolType.NUMBAR: "float64",
    LolType.TROOF: "bool",
}

#: C type names emitted by the C backend for statically typed variables.
C_TYPES = {
    LolType.NUMBR: "int64_t",
    LolType.NUMBAR: "double",
    LolType.TROOF: "int",
    LolType.YARN: "char*",
}


#: Exact-type fast path for :func:`type_of`.  Keyed by ``type(value)`` so
#: ``bool`` (a subclass of ``int``) maps to TROOF correctly; numpy scalar
#: types miss here and fall through to the isinstance chain.
_TYPE_OF_FAST = {
    type(None): LolType.NOOB,
    bool: LolType.TROOF,
    int: LolType.NUMBR,
    float: LolType.NUMBAR,
    str: LolType.YARN,
}


def type_of(value: object) -> LolType:
    """Dynamic type of a Python-hosted LOLCODE value."""
    t = _TYPE_OF_FAST.get(type(value))
    if t is not None:
        return t
    if isinstance(value, bool):
        return LolType.TROOF
    if isinstance(value, int):
        return LolType.NUMBR
    if isinstance(value, float):
        return LolType.NUMBAR
    if isinstance(value, str):
        return LolType.YARN
    raise LolTypeError(f"value {value!r} has no LOLCODE type")


def default_value(t: LolType) -> object:
    """Zero value used to initialise statically typed declarations."""
    if t is LolType.NUMBR:
        return 0
    if t is LolType.NUMBAR:
        return 0.0
    if t is LolType.YARN:
        return ""
    if t is LolType.TROOF:
        return False
    return None


def format_yarn(value: object) -> str:
    """Cast any value to YARN following 1.2 formatting rules."""
    t = type_of(value)
    if t is LolType.YARN:
        return value  # type: ignore[return-value]
    if t is LolType.NUMBR:
        return str(value)
    if t is LolType.NUMBAR:
        return f"{value:.2f}"
    if t is LolType.TROOF:
        return "WIN" if value else "FAIL"
    return ""  # NOOB explicitly cast


def to_troof(value: object) -> bool:
    if type(value) is bool:
        return value
    t = type_of(value)
    if t is LolType.TROOF:
        return bool(value)
    if t is LolType.NUMBR:
        return value != 0
    if t is LolType.NUMBAR:
        return value != 0.0
    if t is LolType.YARN:
        return value != ""
    return False  # NOOB


def to_numbr(value: object, pos: SourcePos | None = None) -> int:
    t = type_of(value)
    if t is LolType.NUMBR:
        return int(value)  # type: ignore[arg-type]
    if t is LolType.NUMBAR:
        return int(value)  # truncate toward zero  # type: ignore[arg-type]
    if t is LolType.TROOF:
        return 1 if value else 0
    if t is LolType.YARN:
        try:
            return int(str(value).strip())
        except ValueError as exc:
            raise LolTypeError(
                f"cannot cast YARN {value!r} to NUMBR", pos
            ) from exc
    return 0  # NOOB explicitly cast


def to_array_size(value: object, pos: SourcePos | None = None) -> int:
    """Array extents, unlike general NUMBR casts, must be *integral*:
    truncating ``2.9`` to 2 elements silently shrinks the allocation
    (and, for symmetric data, would let executors disagree on the heap
    layout).  Shared by all three engines and the process-executor
    planner so every path rejects identically."""
    if isinstance(value, float) and not value.is_integer():
        raise LolRuntimeError(
            f"array size must be an integer, got {value!r}", pos
        )
    return to_numbr(value, pos)


def to_numbar(value: object, pos: SourcePos | None = None) -> float:
    t = type_of(value)
    if t is LolType.NUMBAR:
        return float(value)  # type: ignore[arg-type]
    if t is LolType.NUMBR:
        return float(value)  # type: ignore[arg-type]
    if t is LolType.TROOF:
        return 1.0 if value else 0.0
    if t is LolType.YARN:
        try:
            return float(str(value).strip())
        except ValueError as exc:
            raise LolTypeError(
                f"cannot cast YARN {value!r} to NUMBAR", pos
            ) from exc
    return 0.0  # NOOB explicitly cast


def cast(value: object, to_type: LolType, pos: SourcePos | None = None) -> object:
    """Explicit cast (``MAEK`` / ``IS NOW A``)."""
    if to_type is LolType.NOOB:
        return None
    if to_type is LolType.TROOF:
        return to_troof(value)
    if to_type is LolType.NUMBR:
        return to_numbr(value, pos)
    if to_type is LolType.NUMBAR:
        return to_numbar(value, pos)
    if to_type is LolType.YARN:
        return format_yarn(value)
    raise LolTypeError(f"cannot cast to {to_type}", pos)


def coerce_static(
    value: object, declared: LolType, name: str, pos: SourcePos | None = None
) -> object:
    """Coerce an assignment into a statically typed variable.

    The paper's ``ITZ SRSLY A <type>`` extension makes a variable
    statically typed "as a transition to a compiled language".  We allow
    exactly the implicit conversions a C compiler would perform for the
    numeric types (NUMBR <-> NUMBAR, TROOF -> NUMBR) and reject everything
    else with a type error — stricter than dynamic LOLCODE, by design.
    """
    t = type(value)
    if (t is int and declared is LolType.NUMBR) or (
        t is float and declared is LolType.NUMBAR
    ):
        return value
    vt = type_of(value)
    if vt is declared:
        return value
    if declared is LolType.NUMBAR and vt in (LolType.NUMBR, LolType.TROOF):
        return to_numbar(value, pos)
    if declared is LolType.NUMBR and vt in (LolType.NUMBAR, LolType.TROOF):
        return to_numbr(value, pos)
    if declared is LolType.TROOF and vt in (LolType.NUMBR, LolType.NUMBAR):
        return to_troof(value)
    raise LolTypeError(
        f"cannot assign {vt} value to '{name}' statically typed as {declared}",
        pos,
    )


def parse_type(name: str, pos: SourcePos | None = None) -> LolType:
    try:
        return LolType(name)
    except ValueError as exc:
        raise LolTypeError(f"unknown type {name!r}", pos) from exc


def numeric_result_type(a: LolType, b: LolType) -> LolType:
    """Result type of an arithmetic op: NUMBAR if either side is NUMBAR."""
    if LolType.NUMBAR in (a, b):
        return LolType.NUMBAR
    return LolType.NUMBR
