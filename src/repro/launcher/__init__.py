"""SPMD program launcher (the paper's ``coprsh``/``aprun`` analogue)."""

from .spmd import EXECUTORS, const_eval, plan_from_program, run_file, run_lolcode

__all__ = ["EXECUTORS", "const_eval", "plan_from_program", "run_file", "run_lolcode"]
