"""SPMD program launcher (the paper's ``coprsh``/``aprun`` analogue).

Re-exports the launcher-facing configuration spaces — ``EXECUTORS``
(thread/process/serial) and ``ENGINES`` (closure/ast/compiled) — so
callers that build sweeps over them (``repro.bench``, the CLIs) have one
import site.
"""

from ..interp import ENGINES
from .spmd import EXECUTORS, const_eval, plan_from_program, run_file, run_lolcode

__all__ = [
    "ENGINES",
    "EXECUTORS",
    "const_eval",
    "plan_from_program",
    "run_file",
    "run_lolcode",
]
