"""SPMD launcher for LOLCODE programs — the paper's ``coprsh`` / ``aprun``.

``run_lolcode(source, n_pes)`` is the one-call entry point used by the
``lolrun`` CLI, the examples, and the benchmarks.  Four executors:

* ``"thread"`` (default) — one Python thread per PE; supports every
  feature including the race detector;
* ``"process"`` — one OS process per PE over shared memory; true
  parallelism, numeric symmetric data only (see
  :mod:`repro.shmem.runtime_procs`);
* ``"pool"`` — the process executor's worlds on *warm*, persistent
  worker processes (:mod:`repro.service.pool`): no per-call spawn/exec
  cost, same restrictions as ``"process"``;
* ``"serial"`` — requires ``n_pes == 1``; runs inline (the behaviour of a
  plain LOLCODE interpreter, ``loli``).

``engine="c"`` (the natively compiled path) is special: its PEs are
always real OS processes built and launched by
:mod:`repro.compiler.native`, so it pairs only with
``executor="process"`` (or ``"serial"`` at one PE) and refuses the
interpreter-only knobs — ``max_steps``, op tracing, race detection —
with explicit errors rather than silently falling back to a different
engine.

The process executor needs the symmetric allocation set before workers
start, so :func:`plan_from_program` statically scans the AST for
``WE HAS A`` declarations and constant-folds their sizes (``MAH FRENZ``
folds to ``n_pes``; ``ME`` cannot appear in a size, since per-PE sizes
would break the symmetric-heap requirement — exactly as in OpenSHMEM).
"""

from __future__ import annotations

import sys
from contextlib import nullcontext
from functools import partial
from typing import Optional, Sequence

from .. import obs as _obs
from ..lang import ast
from ..lang.errors import LolParallelError
from ..lang.parser import parse_cached
from ..lang.types import parse_type, to_numbr
from ..interp import ENGINES, compile_closures_cached, compile_vm_cached
from ..interp.interpreter import Interpreter
from ..interp.values import binop, unop
from ..compiler.py_backend import compile_python_cached, compiled_worker
from ..shmem.api import DEFAULT_BARRIER_TIMEOUT, ShmemContext
from ..shmem.heap import SymmetricPlan
from ..shmem.runtime_procs import run_spmd_procs
from ..shmem.runtime_threads import SpmdResult, run_spmd

EXECUTORS = ("thread", "process", "serial", "pool")


def _const_fold(expr: ast.Expr, n_pes: int) -> object:
    """Fold a size expression to its raw value (int, float, or TROOF)."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.FrenzExpr):
        return n_pes
    if isinstance(expr, ast.BinOp):
        lhs = _const_fold(expr.lhs, n_pes)
        rhs = _const_fold(expr.rhs, n_pes)
        return binop(expr.op, lhs, rhs, expr.pos)
    if isinstance(expr, ast.UnaryOp):
        return unop(expr.op, _const_fold(expr.operand, n_pes), expr.pos)
    if isinstance(expr, ast.MeExpr):
        raise LolParallelError(
            "symmetric array sizes cannot depend on ME (all PEs must "
            "allocate identically)",
            expr.pos,
        )
    raise LolParallelError(
        "symmetric array size must be a compile-time constant for the "
        "process executor",
        expr.pos,
    )


def const_eval(expr: ast.Expr, n_pes: int) -> int:
    """Constant-fold an array-size expression for the symmetric plan.

    Sizes must fold to an *integral* value: a NUMBAR (or a NUMBAR-typed
    fold result) like ``2.9`` is rejected instead of being silently
    truncated to 2 elements — an allocation-size mismatch between
    executors would corrupt the symmetric heap, not just the one array.
    """
    value = _const_fold(expr, n_pes)
    if isinstance(value, float) and not value.is_integer():
        raise LolParallelError(
            f"symmetric array size must be an integer, but the size "
            f"expression folds to {value!r}",
            expr.pos,
        )
    return to_numbr(value, expr.pos)


def plan_from_program(program: ast.Program, n_pes: int) -> SymmetricPlan:
    """Collect every ``WE HAS A`` declaration into a symmetric plan."""
    plan = SymmetricPlan()
    for stmt in ast.walk_statements(program.body):
        if isinstance(stmt, ast.VarDecl) and stmt.scope == "WE":
            if stmt.static_type is None:
                raise LolParallelError(
                    f"symmetric variable '{stmt.name}' must be typed",
                    stmt.pos,
                )
            lol_type = parse_type(stmt.static_type, stmt.pos)
            size = const_eval(stmt.size, n_pes) if stmt.is_array else 1
            plan.add(stmt.name, lol_type, stmt.is_array, size, stmt.shared_lock)
    return plan


def _pe_main(
    source: str, filename: str, max_steps, engine: str, ctx: ShmemContext
) -> None:
    """Module-level worker so the process executor can pickle it.

    When the observability plane is armed for tracing, the engine body
    runs inside a per-PE ``run`` span (one per PE, the parents of that
    PE's comm spans); disarmed, the wrapper is one ``None`` check.

    Engine dispatch happens here (rather than in ``run_lolcode``) because
    neither compiled closures nor exec'd ``pe_main`` modules are
    picklable: thread PEs share one compiled program through the
    :func:`~repro.interp.compile_closures_cached` /
    :func:`~repro.compiler.compile_python_cached` LRUs, while each worker
    process hits its own per-process cache.  ``max_steps`` is honoured
    natively by the ``vm`` and ``ast`` engines only; the launcher
    rejects it for every other engine before dispatch.
    """
    rt = _obs.ACTIVE
    if rt is not None and rt.trace_on:
        with rt.tracer.span(
            "run",
            f"pe{ctx.my_pe}",
            tid=f"PE-{ctx.my_pe}",
            args={"engine": engine, "pe": ctx.my_pe},
        ):
            _pe_body(source, filename, max_steps, engine, ctx)
        return
    _pe_body(source, filename, max_steps, engine, ctx)


def _compile_span(fn, engine: str, ctx: ShmemContext, *args):
    """Call a cached compile front-end inside a ``compile`` span when
    tracing is armed (a cache hit shows up as a ~0-duration span)."""
    rt = _obs.ACTIVE
    if rt is None or not rt.trace_on:
        return fn(*args)
    with rt.tracer.span("compile", engine, tid=f"PE-{ctx.my_pe}"):
        return fn(*args)


def _pe_body(
    source: str, filename: str, max_steps, engine: str, ctx: ShmemContext
) -> None:
    """Engine dispatch for one PE (see :func:`_pe_main`)."""
    if engine == "vm":
        # The VM counts statement steps in its own dispatch loop, so a
        # max_steps limit never changes which engine runs.  count_flops
        # (like the closure engine) keys off whether tracing is on.
        _compile_span(
            compile_vm_cached,
            engine,
            ctx,
            source,
            filename,
            ctx.trace is not None,
            max_steps is not None,
        ).run(ctx, max_steps=max_steps)
        return
    if max_steps is None:
        if engine == "closure":
            compiled = _compile_span(
                compile_closures_cached,
                engine,
                ctx,
                source,
                filename,
                ctx.trace is not None,
            )
            compiled.run(ctx)
            return
        if engine == "compiled":
            compiled_worker(source, filename, ctx)
            return
    program = parse_cached(source, filename)
    Interpreter(program, ctx, max_steps=max_steps).run()


def run_lolcode(
    source: str,
    n_pes: int = 1,
    *,
    executor: str = "thread",
    filename: str = "<string>",
    seed: Optional[int] = None,
    stdin_lines: Optional[Sequence[Sequence[str]]] = None,
    trace: bool = False,
    trace_detail: bool = True,
    race_detection: bool = False,
    max_steps: Optional[int] = None,
    barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
    engine: str = "closure",
    fallback_engine: Optional[str] = None,
    check: str = "off",
) -> SpmdResult:
    """Parse ``source`` once (for early syntax errors) and run it SPMD.

    ``engine`` selects the execution engine per PE: ``"closure"``
    (default — compile once per program into zero-dispatch closures,
    shared by all PEs), ``"ast"`` (the reference tree-walker),
    ``"vm"`` (register bytecode run by a dispatch loop with inline
    caches — the fastest pure-Python engine; with ``ast`` the only
    engine honouring ``max_steps``, counted natively), ``"compiled"``
    (LOLCODE compiled to a Python ``pe_main`` module and launched;
    rejects interpret-only constructs such as ``SRS`` computed
    identifiers with a :class:`~repro.compiler.CompileError`, and
    refuses ``max_steps`` outright rather than silently
    reinterpreting), or ``"c"`` (the paper's full ``lcc`` pipeline:
    LOLCODE -> C + OpenSHMEM, built by the system C compiler against
    the bundled SHMEM shim, one OS process per PE; pairs with
    ``executor="process"`` only and additionally refuses ``trace`` and
    ``race_detection``; raises
    :class:`~repro.compiler.NativeToolchainError` when the host has no
    C compiler).

    ``fallback_engine`` opts into graceful degradation: if the requested
    engine fails for an *environmental* reason — no C toolchain, or a
    native build that keeps failing (:class:`~repro.compiler.NativeToolchainError`,
    :class:`~repro.compiler.NativeBuildError`) — the run is retried once
    on the fallback engine and the result is marked ``degraded`` with a
    ``degraded_reason``.  Program errors (syntax, compile restrictions,
    runtime faults) never trigger the fallback: those would fail the
    same way — or worse, differently — on any engine.

    ``check`` gates the static analyses (:mod:`repro.analysis`) before
    launch: ``"off"`` (default) skips them, ``"warn"`` prints every
    diagnostic to stderr and runs anyway, ``"error"`` additionally
    refuses to launch (raises
    :class:`~repro.lang.errors.LolStaticError`) when any ``E``-code is
    reported.
    """
    if executor not in EXECUTORS:
        raise LolParallelError(
            f"unknown executor {executor!r} (choose from {EXECUTORS})"
        )
    if engine not in ENGINES:
        raise LolParallelError(
            f"unknown engine {engine!r} (choose from {ENGINES})"
        )
    if check not in ("off", "warn", "error"):
        raise LolParallelError(
            f"unknown check mode {check!r} "
            f"(choose from ('off', 'warn', 'error'))"
        )
    if fallback_engine is not None:
        if fallback_engine not in ENGINES:
            raise LolParallelError(
                f"unknown fallback_engine {fallback_engine!r} "
                f"(choose from {ENGINES})"
            )
        if fallback_engine == engine:
            raise LolParallelError(
                f"fallback_engine must differ from engine (both {engine!r})"
            )
        from ..compiler.native import NativeBuildError, NativeToolchainError

        run = partial(
            run_lolcode,
            source,
            n_pes,
            executor=executor,
            filename=filename,
            seed=seed,
            stdin_lines=stdin_lines,
            trace=trace,
            trace_detail=trace_detail,
            race_detection=race_detection,
            max_steps=max_steps,
            barrier_timeout=barrier_timeout,
            check=check,
        )
        try:
            return run(engine=engine)
        except (NativeToolchainError, NativeBuildError) as exc:
            # The native engine forces executor="process"; the fallback
            # engines run under any executor, so the executor carries over.
            result = run(engine=fallback_engine)
            result.degraded = True
            result.degraded_reason = (
                f"engine {engine!r} unavailable "
                f"({type(exc).__name__}: {str(exc)[:200]}); "
                f"ran fallback engine {fallback_engine!r}"
            )
            return result
    # Surface syntax errors in the caller (cached: benches re-run sources).
    rt = _obs.ACTIVE
    if rt is not None and rt.trace_on:
        with rt.tracer.span("compile", "parse", args={"filename": filename}):
            program = parse_cached(source, filename)
    else:
        program = parse_cached(source, filename)
    if check != "off":
        from ..lang.checker import check_program
        from ..lang.errors import LolStaticError

        diags = check_program(program)
        for diag in diags:
            print(diag.render(), file=sys.stderr)
        errors = [d for d in diags if d.is_error]
        if check == "error" and errors:
            first = errors[0]
            raise LolStaticError(
                f"{first.code}: {first.message} "
                f"({len(errors)} static error(s); fix them or run with "
                f"check='warn')",
                first.pos,
                diagnostics=tuple(diags),
            )
    # One ``launch`` root span per run when tracing is armed: every
    # per-PE run span and the scheduler/pool spans nest under it.
    _launch_span = (
        rt.tracer.span(
            "launch",
            f"{executor}/{engine}",
            args={"n_pes": n_pes, "filename": filename},
        )
        if rt is not None and rt.trace_on
        else nullcontext()
    )
    with _launch_span:
        if engine == "c":
            # The native engine has exactly one execution vehicle: OS
            # processes running the binary the system C compiler produced.
            # Every knob it cannot honour is refused loudly — a silent
            # fallback to an interpreter would misreport what ran.
            if executor not in ("process", "serial"):
                raise LolParallelError(
                    f"engine='c' runs PEs as native OS processes; use "
                    f"executor='process' (got {executor!r})"
                )
            if executor == "serial" and n_pes != 1:
                raise LolParallelError(
                    f"serial executor runs exactly 1 PE, got {n_pes}"
                )
            if max_steps is not None:
                raise LolParallelError(
                    "engine='c' does not support max_steps; use engine='ast' "
                    "(the step-counting tree-walker)"
                )
            if trace:
                raise LolParallelError(
                    "engine='c' does not support op tracing (native binaries "
                    "are not instrumented); use engine='closure' or "
                    "'compiled' for traced runs"
                )
            if race_detection:
                raise LolParallelError(
                    "race detection requires the thread executor"
                )
            # Compile restrictions (CompileError) and a missing C toolchain
            # (NativeToolchainError) both surface here, in the caller.
            from ..compiler.native import run_native_source

            return run_native_source(
                source,
                n_pes,
                filename=filename,
                seed=seed,
                stdin_lines=stdin_lines,
                barrier_timeout=barrier_timeout,
            )
        if engine == "closure" and max_steps is not None:
            # This used to fall back silently to the tree-walker, which made
            # "closure with a step limit" report ast-engine timings and let
            # interpret-only programs slip through.  Refuse loudly instead,
            # like the compiled engines do, and point at the engines that
            # count steps natively.
            raise LolParallelError(
                "engine='closure' does not support max_steps; use engine='vm' "
                "(step counting in the bytecode dispatch loop) or engine='ast' "
                "(the step-counting tree-walker)"
            )
        if engine == "compiled":
            if max_steps is not None:
                # The closure engine's documented max_steps fallback to the
                # tree-walker would be a *silent engine swap* here: callers
                # probing compiled-engine compatibility would see interpret-
                # only programs "succeed".  Refuse instead.
                raise LolParallelError(
                    "engine='compiled' does not support max_steps; use "
                    "engine='ast' (the step-counting tree-walker)"
                )
            # Surface compile-time restrictions (SRS, nested declarations, …)
            # in the caller too, instead of from inside a worker thread; this
            # also warms the exact LRU key the thread PEs will share.
            compile_python_cached(source, filename, trace)
        worker = partial(_pe_main, source, filename, max_steps, engine)

        if executor in ("process", "pool"):
            if race_detection:
                raise LolParallelError(
                    "race detection requires the thread executor"
                )
            plan = plan_from_program(program, n_pes)
            if executor == "pool":
                # Warm worker pool (repro.service): same worlds and the
                # same SpmdResult as the cold process executor, but the
                # worker processes persist across calls.  Imported lazily —
                # the service layer is optional for plain launches.
                from ..service.pool import run_pooled

                return run_pooled(
                    worker,
                    n_pes,
                    plan,
                    seed=seed,
                    stdin_lines=stdin_lines,
                    trace=trace,
                    barrier_timeout=barrier_timeout,
                )
            return run_spmd_procs(
                worker,
                n_pes,
                plan,
                seed=seed,
                stdin_lines=stdin_lines,
                trace=trace,
                barrier_timeout=barrier_timeout,
            )

        if executor == "serial" and n_pes != 1:
            raise LolParallelError(
                f"serial executor runs exactly 1 PE, got {n_pes}"
            )
        return run_spmd(
            worker,
            n_pes,
            seed=seed,
            stdin_lines=stdin_lines,
            trace=trace,
            trace_detail=trace_detail,
            race_detection=race_detection,
            barrier_timeout=barrier_timeout,
        )


def run_file(path: str, n_pes: int = 1, **kwargs) -> SpmdResult:
    """``lolrun -np N path.lol`` — read a program from disk and run it."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    kwargs.setdefault("filename", path)
    return run_lolcode(source, n_pes, **kwargs)
