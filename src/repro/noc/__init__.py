"""NoC topology and machine cost models (the paper's hardware, simulated).

The Epiphany-III eMesh and Cray XC40 are modeled analytically; benchmarks
execute on the Python runtime, record an op trace, and replay it here to
obtain modeled execution times (see DESIGN.md, substitution table).
"""

from .machines import (
    MachineModel,
    cray_xc40,
    epiphany_iii,
    ideal_crossbar,
    python_host,
    registry,
)
from .mesh import LinkTraffic, Mesh2D, square_mesh_for
from .report import (
    comm_matrix,
    render_activity,
    render_comm_matrix,
    projection_rows,
    render_machine_costs,
    render_report,
)
from .timing import (
    PeEstimate,
    TimeEstimate,
    estimate,
    link_traffic_from_trace,
    local_vs_remote_ratio,
)

__all__ = [
    "MachineModel",
    "cray_xc40",
    "epiphany_iii",
    "ideal_crossbar",
    "python_host",
    "registry",
    "LinkTraffic",
    "Mesh2D",
    "square_mesh_for",
    "PeEstimate",
    "TimeEstimate",
    "estimate",
    "link_traffic_from_trace",
    "local_vs_remote_ratio",
    "comm_matrix",
    "render_activity",
    "render_comm_matrix",
    "projection_rows",
    "render_machine_costs",
    "render_report",
]
