"""Machine cost models: the paper's two demonstration platforms.

The paper runs parallel LOLCODE on (i) the $99 Parallella board with the
16-core Adapteva Epiphany-III coprocessor and (ii) ARL's 101,312-core Cray
XC40.  We own neither, so — per the substitution rule — benchmarks execute
on the Python runtime and replay the recorded op trace against these cost
models to obtain *modeled* execution times.  Parameters come from public
datasheets/papers:

* Epiphany-III (E16G301): 16 RISC cores at 600 MHz on a 4x4 eMesh;
  ~1.5 ns/hop write network, ~8 bytes/cycle on-chip write bandwidth,
  remote *reads* make a round trip and are roughly an order of magnitude
  slower than writes (the reason OpenSHMEM-on-Epiphany favours put over
  get); barrier cost grows with mesh diameter.
* Cray XC40 (Aries interconnect): ~1.3 us one-sided latency, ~10 GB/s
  per-PE bandwidth, hardware-accelerated barriers ~5 us at scale; Xeon
  cores at 2.3 GHz.
* PYTHON_HOST: a calibration model whose "flop" cost matches this
  repository's interpreter on commodity hardware, for sanity-checking the
  trace-replay machinery against wall-clock measurements.

The absolute numbers are approximations; what the reproduction relies on
is the *shape*: local << remote access (Figure 1's PGAS asymmetry),
Epiphany latencies in nanoseconds vs Cray in microseconds, and barrier
costs that grow with PE count.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Optional

from .mesh import Mesh2D, square_mesh_for


@dataclass(frozen=True, slots=True)
class MachineModel:
    """An analytic machine model for trace replay."""

    name: str
    max_pes: int
    #: effective scalar floating-point rate of one PE, in flop/s (for the
    #: PYTHON_HOST model this is "interpreter ops per second")
    flops_per_pe: float
    #: one-way injection latency for a small put, seconds
    put_latency: float
    #: additional round-trip factor for gets (Epiphany reads are slow)
    get_multiplier: float
    #: per-byte transfer time, seconds (1 / bandwidth)
    byte_time: float
    #: per-hop wire latency, seconds (mesh machines; 0 => flat network)
    hop_latency: float = 0.0
    #: barrier base cost, seconds
    barrier_base: float = 0.0
    #: per-log2(n_pes) barrier scaling term, seconds
    barrier_per_stage: float = 0.0
    #: lock acquire/release overhead, seconds (uncontended)
    lock_overhead: float = 0.0
    #: mesh topology (None => all PEs equidistant)
    mesh: Optional[Mesh2D] = None
    notes: str = ""

    def hops(self, src: int, dst: int) -> int:
        if self.mesh is None or src < 0 or dst < 0:
            return 1
        n = self.mesh.n_nodes
        return self.mesh.hops(src % n, dst % n)

    def put_time(self, src: int, dst: int, nbytes: int) -> float:
        return (
            self.put_latency
            + self.hops(src, dst) * self.hop_latency
            + nbytes * self.byte_time
        )

    def get_time(self, src: int, dst: int, nbytes: int) -> float:
        # Reads traverse the network twice (request + reply).
        return self.get_multiplier * (
            self.put_latency
            + 2 * self.hops(src, dst) * self.hop_latency
            + nbytes * self.byte_time
        )

    def barrier_time(self, n_pes: int) -> float:
        stages = max(1, ceil(log2(max(2, n_pes))))
        return self.barrier_base + stages * self.barrier_per_stage

    def compute_time(self, flops: int) -> float:
        return flops / self.flops_per_pe


def epiphany_iii(n_pes: int = 16) -> MachineModel:
    """The Parallella's 16-core coprocessor (4x4 eMesh)."""
    mesh = square_mesh_for(min(n_pes, 16)) if n_pes > 1 else Mesh2D(1, 1)
    return MachineModel(
        name="Epiphany-III (Parallella, $99)",
        max_pes=16,
        flops_per_pe=600e6,  # 600 MHz, ~1 flop/cycle scalar
        put_latency=0.1e-6,  # SHMEM software overhead dominates
        get_multiplier=4.0,  # remote reads are far slower than writes
        byte_time=1.0 / 2.4e9,  # ~2.4 GB/s effective on-chip put bandwidth
        hop_latency=1.5e-9,
        barrier_base=0.4e-6,
        barrier_per_stage=0.3e-6,
        lock_overhead=1.0e-6,
        mesh=mesh,
        notes="E16G301 datasheet + ARL OpenSHMEM-for-Epiphany paper",
    )


def cray_xc40(n_pes: int = 101_312) -> MachineModel:
    """ARL's production Cray XC40 ('a portion of' which ran LOLCODE)."""
    return MachineModel(
        name="Cray XC40 (101,312 cores, $30M)",
        max_pes=101_312,
        flops_per_pe=2.3e9,  # scalar rate of one Xeon core
        put_latency=1.3e-6,  # Aries one-sided latency
        get_multiplier=1.6,
        byte_time=1.0 / 10e9,  # ~10 GB/s per PE
        hop_latency=0.0,  # dragonfly modeled as flat
        barrier_base=4.0e-6,
        barrier_per_stage=0.6e-6,
        lock_overhead=3.0e-6,
        mesh=None,
        notes="Aries interconnect public figures",
    )


def python_host(ops_per_sec: float = 2.0e6) -> MachineModel:
    """Calibration model matching this repo's tree-walking interpreter."""
    return MachineModel(
        name="Python host (this reproduction)",
        max_pes=1024,
        flops_per_pe=ops_per_sec,
        put_latency=2e-6,
        get_multiplier=1.0,
        byte_time=1.0 / 1e9,
        barrier_base=20e-6,
        barrier_per_stage=10e-6,
        lock_overhead=5e-6,
        notes="threading.Barrier/Lock measured on commodity hardware",
    )


def ideal_crossbar(base: MachineModel) -> MachineModel:
    """Ablation variant: same injection costs, zero hop distance (as if
    every PE pair had a private wire)."""
    return MachineModel(
        name=f"{base.name} [ideal crossbar]",
        max_pes=base.max_pes,
        flops_per_pe=base.flops_per_pe,
        put_latency=base.put_latency,
        get_multiplier=base.get_multiplier,
        byte_time=base.byte_time,
        hop_latency=0.0,
        barrier_base=base.barrier_base,
        barrier_per_stage=base.barrier_per_stage,
        lock_overhead=base.lock_overhead,
        mesh=None,
        notes="ablation: XY mesh routing removed",
    )


def registry() -> dict[str, MachineModel]:
    return {
        "epiphany": epiphany_iii(),
        "cray-xc40": cray_xc40(),
        "python-host": python_host(),
    }
