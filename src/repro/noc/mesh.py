"""2-D mesh network-on-chip topology (the Epiphany-III eMesh).

The Epiphany-III the paper targets is "a low-power 2D RISC array
architecture with a network on chip (NoC) [that] may be thought of, and
programmed, as a cluster on a chip" — a 4x4 grid of cores with
dimension-ordered (XY) routing.  This module provides the topology and
routing used by the machine cost models and the routing ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.errors import LolRuntimeError


@dataclass(frozen=True, slots=True)
class Mesh2D:
    """A ``rows x cols`` mesh with XY dimension-ordered routing."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise LolRuntimeError("mesh dimensions must be positive")

    @property
    def n_nodes(self) -> int:
        return self.rows * self.cols

    def coords(self, pe: int) -> tuple[int, int]:
        """PE id -> (row, col), row-major as on the Epiphany."""
        if not 0 <= pe < self.n_nodes:
            raise LolRuntimeError(
                f"PE {pe} out of range for {self.rows}x{self.cols} mesh"
            )
        return divmod(pe, self.cols)

    def pe_at(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise LolRuntimeError(f"({row},{col}) outside mesh")
        return row * self.cols + col

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance — the XY route length."""
        r1, c1 = self.coords(src)
        r2, c2 = self.coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def xy_route(self, src: int, dst: int) -> list[int]:
        """The full XY route as a list of PE ids, inclusive of endpoints.

        Dimension-ordered: travel along X (columns) first, then Y (rows) —
        deadlock-free on a mesh.
        """
        r1, c1 = self.coords(src)
        r2, c2 = self.coords(dst)
        path = [self.pe_at(r1, c1)]
        c = c1
        while c != c2:
            c += 1 if c2 > c else -1
            path.append(self.pe_at(r1, c))
        r = r1
        while r != r2:
            r += 1 if r2 > r else -1
            path.append(self.pe_at(r, c))
        return path

    def route_links(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Directed links traversed by the XY route."""
        path = self.xy_route(src, dst)
        return list(zip(path, path[1:]))

    def max_hops(self) -> int:
        """Network diameter."""
        return (self.rows - 1) + (self.cols - 1)

    def average_hops(self) -> float:
        """Mean hop count over all ordered (src != dst) pairs."""
        n = self.n_nodes
        if n == 1:
            return 0.0
        total = sum(
            self.hops(s, d) for s in range(n) for d in range(n) if s != d
        )
        return total / (n * (n - 1))


def square_mesh_for(n_pes: int) -> Mesh2D:
    """Smallest square-ish mesh with at least ``n_pes`` nodes (e.g. the
    canonical 4x4 for the 16-core Epiphany-III)."""
    rows = 1
    while rows * rows < n_pes:
        rows += 1
    cols = rows
    while rows * (cols - 1) >= n_pes:
        cols -= 1
    return Mesh2D(rows, cols)


class LinkTraffic:
    """Accumulates per-link byte counts for contention analysis
    (XY-routing vs ideal-crossbar ablation)."""

    def __init__(self, mesh: Mesh2D) -> None:
        self.mesh = mesh
        self.bytes_on_link: dict[tuple[int, int], int] = {}

    def add_transfer(self, src: int, dst: int, nbytes: int) -> None:
        for link in self.mesh.route_links(src, dst):
            self.bytes_on_link[link] = self.bytes_on_link.get(link, 0) + nbytes

    def hottest_link(self) -> tuple[tuple[int, int], int]:
        if not self.bytes_on_link:
            return ((0, 0), 0)
        link = max(self.bytes_on_link, key=self.bytes_on_link.get)
        return link, self.bytes_on_link[link]

    def total_link_bytes(self) -> int:
        return sum(self.bytes_on_link.values())
