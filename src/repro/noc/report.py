"""Human-readable reports from SPMD op traces.

Turns a :class:`~repro.shmem.trace.WorldTrace` into the artifacts an
instructor (or a curious student) wants on screen after a run:

* a **communication matrix** — bytes moved between each (src, dst) PE
  pair, the standard way to show a ring/stencil/all-to-all pattern;
* a **per-PE activity table** — puts/gets/barriers/flops per PE, which
  makes load imbalance visible;
* a **modeled cost table** across machine models.

Used by ``examples/heat_diffusion.py`` and available as
``repro.noc.report.render_*`` for any traced run.
"""

from __future__ import annotations

from ..shmem.trace import OpKind, WorldTrace
from .machines import MachineModel
from .timing import estimate


def comm_matrix(trace: WorldTrace) -> list[list[int]]:
    """bytes[src][dst] moved by one-sided ops (puts + gets + atomics)."""
    n = trace.n_pes
    matrix = [[0] * n for _ in range(n)]
    for ev in trace.all_events():
        if ev.kind in (OpKind.PUT, OpKind.GET, OpKind.ATOMIC):
            if 0 <= ev.dst_pe < n and ev.dst_pe != ev.src_pe:
                matrix[ev.src_pe][ev.dst_pe] += ev.nbytes
    return matrix


def render_comm_matrix(trace: WorldTrace) -> str:
    matrix = comm_matrix(trace)
    n = trace.n_pes
    width = max(6, *(len(str(v)) for row in matrix for v in row))
    lines = ["communication matrix (bytes, src row -> dst col):"]
    header = "      " + " ".join(f"PE{d}".rjust(width) for d in range(n))
    lines.append(header)
    for src in range(n):
        cells = " ".join(
            (str(matrix[src][dst]) if matrix[src][dst] else ".".rjust(1)).rjust(width)
            for dst in range(n)
        )
        lines.append(f"  PE{src} " + cells)
    return "\n".join(lines)


def render_activity(trace: WorldTrace) -> str:
    lines = ["per-PE activity:"]
    lines.append(
        f"  {'PE':>3} {'puts':>6} {'gets':>6} {'barriers':>8} "
        f"{'locks':>6} {'flops':>10} {'remote B':>9}"
    )
    for t in trace.per_pe:
        lines.append(
            f"  {t.pe:>3} {t.counts[OpKind.PUT]:>6} {t.counts[OpKind.GET]:>6} "
            f"{t.counts[OpKind.BARRIER]:>8} "
            f"{t.counts[OpKind.LOCK] + t.counts[OpKind.TRYLOCK]:>6} "
            f"{t.local_flops:>10} "
            f"{t.remote_bytes_put + t.remote_bytes_got:>9}"
        )
    return "\n".join(lines)


def projection_rows(
    trace: WorldTrace, machines: list[MachineModel]
) -> list[dict]:
    """Machine-model cost projections as JSON-ready rows (one per
    machine) — the structured counterpart of :func:`render_machine_costs`,
    used by the ``repro.bench`` orchestrator for ``BENCH_workloads.json``."""
    return [estimate(trace, machine).row() for machine in machines]


def render_machine_costs(
    trace: WorldTrace, machines: list[MachineModel]
) -> str:
    lines = ["modeled cost across machines:"]
    lines.append(
        f"  {'machine':<36} {'makespan':>12} {'compute':>10} "
        f"{'comm':>10} {'sync':>10}"
    )
    for machine in machines:
        est = estimate(trace, machine)
        lines.append(
            f"  {machine.name:<36} {est.makespan_s * 1e3:>10.3f}ms "
            f"{est.compute_s * 1e3:>8.3f}ms {est.comm_s * 1e3:>8.3f}ms "
            f"{est.sync_s * 1e3:>8.3f}ms"
        )
    return "\n".join(lines)


def render_report(
    trace: WorldTrace, machines: list[MachineModel] | None = None
) -> str:
    """The full post-run report."""
    parts = [render_activity(trace), "", render_comm_matrix(trace)]
    if machines:
        parts += ["", render_machine_costs(trace, machines)]
    return "\n".join(parts)
