"""Trace-driven performance estimation.

A program runs once on the Python runtime with tracing enabled; the
resulting :class:`~repro.shmem.trace.WorldTrace` is replayed against a
:class:`~repro.noc.machines.MachineModel` to estimate what the same
communication/computation pattern would cost on the paper's hardware.

The model is deliberately simple (teaching-grade, like the paper):

* per PE: ``time = compute + sum(remote op costs) + sum(barrier costs)``
  with no computation/communication overlap (conservative);
* makespan = max over PEs (SPMD: everyone runs the same program);
* barrier wait/imbalance is not modeled beyond the barrier's own cost —
  the interesting signal is the compute-vs-communication split and how it
  shifts with PE count and machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..shmem.trace import OpKind, WorldTrace
from .machines import MachineModel
from .mesh import LinkTraffic, Mesh2D


@dataclass(slots=True)
class PeEstimate:
    pe: int
    compute_s: float = 0.0
    put_s: float = 0.0
    get_s: float = 0.0
    atomic_s: float = 0.0
    barrier_s: float = 0.0
    lock_s: float = 0.0

    @property
    def comm_s(self) -> float:
        return self.put_s + self.get_s + self.atomic_s

    @property
    def total_s(self) -> float:
        return self.compute_s + self.comm_s + self.barrier_s + self.lock_s


@dataclass
class TimeEstimate:
    machine: str
    n_pes: int
    per_pe: list[PeEstimate] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        return max((p.total_s for p in self.per_pe), default=0.0)

    @property
    def compute_s(self) -> float:
        return max((p.compute_s for p in self.per_pe), default=0.0)

    @property
    def comm_s(self) -> float:
        return max((p.comm_s for p in self.per_pe), default=0.0)

    @property
    def sync_s(self) -> float:
        return max((p.barrier_s + p.lock_s for p in self.per_pe), default=0.0)

    def comm_fraction(self) -> float:
        total = self.makespan_s
        if total == 0.0:
            return 0.0
        return (self.comm_s + self.sync_s) / total

    def row(self) -> dict[str, object]:
        """One table row for the benchmark harnesses."""
        return {
            "machine": self.machine,
            "n_pes": self.n_pes,
            "makespan_s": self.makespan_s,
            "compute_s": self.compute_s,
            "comm_s": self.comm_s,
            "sync_s": self.sync_s,
            "comm_frac": round(self.comm_fraction(), 4),
        }


def estimate(trace: WorldTrace, machine: MachineModel) -> TimeEstimate:
    """Replay ``trace`` against ``machine``."""
    est = TimeEstimate(machine.name, trace.n_pes)
    for pe_trace in trace.per_pe:
        pe = pe_trace.pe
        p = PeEstimate(pe)
        p.compute_s = machine.compute_time(pe_trace.local_flops)
        for ev in pe_trace.events:
            if ev.kind is OpKind.PUT and ev.dst_pe != ev.src_pe:
                p.put_s += machine.put_time(ev.src_pe, ev.dst_pe, ev.nbytes)
            elif ev.kind is OpKind.GET and ev.dst_pe != ev.src_pe:
                p.get_s += machine.get_time(ev.src_pe, ev.dst_pe, ev.nbytes)
            elif ev.kind is OpKind.ATOMIC:
                p.atomic_s += machine.get_time(ev.src_pe, ev.dst_pe, ev.nbytes)
            elif ev.kind is OpKind.BARRIER:
                p.barrier_s += machine.barrier_time(trace.n_pes)
            elif ev.kind in (OpKind.LOCK, OpKind.TRYLOCK, OpKind.UNLOCK):
                p.lock_s += machine.lock_overhead
            elif ev.kind in (OpKind.BCAST, OpKind.REDUCE):
                p.barrier_s += machine.barrier_time(trace.n_pes)
        est.per_pe.append(p)
    return est


def local_vs_remote_ratio(machine: MachineModel, nbytes: int = 8) -> float:
    """Figure 1's PGAS asymmetry on ``machine``: cost of a remote get of
    ``nbytes`` relative to a local load (modeled as one flop-time)."""
    local = 1.0 / machine.flops_per_pe
    hops = machine.mesh.max_hops() if machine.mesh else 1
    remote = machine.get_multiplier * (
        machine.put_latency + 2 * hops * machine.hop_latency
        + nbytes * machine.byte_time
    )
    return remote / local


def link_traffic_from_trace(trace: WorldTrace, mesh: Mesh2D) -> LinkTraffic:
    """Project a trace's remote transfers onto mesh links (ablation)."""
    traffic = LinkTraffic(mesh)
    n = mesh.n_nodes
    for ev in trace.all_events():
        if ev.kind in (OpKind.PUT, OpKind.GET) and ev.dst_pe not in (-1, ev.src_pe):
            traffic.add_transfer(ev.src_pe % n, ev.dst_pe % n, ev.nbytes)
    return traffic
