"""Zero-cost-when-disabled observability plane.

Three pillars (ISSUE 9 / ROADMAP item 3):

* **tracing** (:mod:`repro.obs.tracing`) — span records for compile,
  native build, launch, per-PE run, barrier/put/get, pool job
  send/reply and scheduler queue→dispatch→done, exported as Chrome
  trace-event JSON (``loltrace``, opens in Perfetto);
* **metrics** (:mod:`repro.obs.metrics`) — a central registry of
  counters/gauges/histograms that absorbs every previously ad-hoc
  counter and renders Prometheus text exposition (``lolserve stats
  --format prom``, the ``metrics`` server op);
* **profiling** (:mod:`repro.obs.vmprof`) — an opt-in per-opcode VM
  profiler (``lolprof``) and per-PE barrier-wait histograms.

Arming follows the fault-plane pattern from :mod:`repro.faults.plan`:
one module global, :data:`ACTIVE`, is ``None`` until armed.  Hot sites
read it as a bare attribute::

    from .. import obs as _obs
    ...
    rt = _obs.ACTIVE
    if rt is not None:
        t0 = time.perf_counter()

so the disarmed cost is a single attribute load and ``None`` test —
the same guarantee the fault plane gives, checked by
``tools/check_obs_overhead.py``.

The ``LOL_OBS`` environment variable arms the plane at import time
(``trace``, ``metrics``, ``profile``, comma-combinable; ``1``/``all``
mean ``trace,metrics``).  Spawn-method subprocesses inherit the
environment and therefore self-arm, which is how pool and process
workers join a traced run; their buffers travel back over the existing
reply pipes via :func:`drain`/:func:`absorb`.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from .metrics import (  # noqa: F401  (re-exports: the public registry API)
    DEFAULT_BUCKETS,
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    percentile,
    render_prometheus,
    reset_registry,
)
from .tracing import (  # noqa: F401
    CAT_BUILD,
    CAT_COMM,
    CAT_COMPILE,
    CAT_LAUNCH,
    CAT_POOL,
    CAT_RUN,
    CAT_SCHED,
    Tracer,
)

ENV_VAR = "LOL_OBS"

_MODES = ("trace", "metrics", "profile")

#: Fine-grained barrier buckets: sub-µs spins to multi-second stalls.
BARRIER_BUCKETS = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
    1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0,
)


def _parse_mode(mode: str) -> frozenset:
    tokens = {t.strip().lower() for t in mode.split(",") if t.strip()}
    if tokens & {"1", "all", "on", "true"}:
        tokens |= {"trace", "metrics"}
    tokens &= set(_MODES)
    return frozenset(tokens)


class ObsRuntime:
    """Armed-state bundle: the tracer plus pre-resolved metric handles.

    Handles are resolved once at arm time so the armed hot path does no
    registry lookups — just an attribute read and a method call.
    """

    __slots__ = (
        "mode",
        "trace_on",
        "metrics_on",
        "profile_on",
        "tracer",
        "registry",
        "comm_ops",
        "comm_bytes",
        "barrier_wait",
    )

    def __init__(self, mode: str) -> None:
        modes = _parse_mode(mode)
        if not modes:
            raise ValueError(f"no recognised obs mode in {mode!r}")
        self.mode = ",".join(sorted(modes))
        self.trace_on = "trace" in modes
        self.metrics_on = "metrics" in modes
        self.profile_on = "profile" in modes
        self.tracer = Tracer()
        self.registry = get_registry()
        self.comm_ops = self.registry.counter(
            "lol_comm_ops_total", "SHMEM data-plane operations by kind"
        )
        self.comm_bytes = self.registry.counter(
            "lol_comm_bytes_total", "Bytes moved by SHMEM put/get, by kind"
        )
        self.barrier_wait = self.registry.histogram(
            "lol_barrier_wait_seconds",
            "Per-PE time spent waiting in barrier_all",
            buckets=BARRIER_BUCKETS,
        )


#: The arming global.  ``None`` == disarmed == zero-cost path.
ACTIVE: Optional[ObsRuntime] = None


def arm(mode: str = "trace,metrics") -> ObsRuntime:
    """Arm the plane (replacing any previous arming) and return the
    runtime.  Also mirrors the mode into ``os.environ[LOL_OBS]`` so
    spawn-method child processes self-arm."""
    global ACTIVE
    ACTIVE = ObsRuntime(mode)
    os.environ[ENV_VAR] = ACTIVE.mode
    return ACTIVE


def ensure_armed(mode: str) -> Optional[ObsRuntime]:
    """Arm only if currently disarmed (the per-job worker path: a warm
    pool worker must not reset its tracer mid-run)."""
    if ACTIVE is None and mode:
        try:
            return arm(mode)
        except ValueError:
            return None
    return ACTIVE


def disarm() -> None:
    global ACTIVE
    ACTIVE = None
    os.environ.pop(ENV_VAR, None)


def active() -> Optional[ObsRuntime]:
    return ACTIVE


# -- cross-process payloads --------------------------------------------------


def drain() -> Optional[dict]:
    """Worker side: package buffered spans plus a metrics delta for the
    reply pipe, resetting both so warm workers never double-report.
    Returns ``None`` when disarmed (the wire fields stay ``None`` and
    the parent skips the merge entirely)."""
    rt = ACTIVE
    if rt is None:
        return None
    payload: dict = {"pid": os.getpid(), "mode": rt.mode}
    if rt.trace_on:
        payload["trace"] = rt.tracer.drain()
    if rt.metrics_on:
        snap = rt.registry.snapshot(reset=True)
        _tag_gauges(snap, os.getpid())
        payload["metrics"] = snap
    return payload


def _tag_gauges(snapshot: dict, pid: int) -> None:
    """Label gauge series with the originating pid so worker gauges
    (e.g. compile-cache sizes) never overwrite the parent's on merge."""
    for payload in snapshot.values():
        if payload.get("type") != "gauge":
            continue
        series = payload.get("series", {})
        retagged = {}
        for raw_key, value in series.items():
            key = [list(kv) for kv in json.loads(raw_key)]
            if not any(k == "pid" for k, _ in key):
                key.append(["pid", str(pid)])
            retagged[json.dumps(sorted(map(tuple, key)))] = value
        payload["series"] = retagged


def absorb(payload: Optional[dict]) -> None:
    """Parent side: fold a worker's drained payload in.  Metrics always
    merge into the process-wide registry; spans merge only if this
    process is tracing (otherwise there is no timeline to join)."""
    if not payload:
        return
    metrics = payload.get("metrics")
    if metrics:
        get_registry().merge(metrics)
    rt = ACTIVE
    trace = payload.get("trace")
    if rt is not None and rt.trace_on and trace:
        rt.tracer.absorb(trace)


# -- import-time arming (mirrors repro.faults.plan) ---------------------------

_env_mode = os.environ.get(ENV_VAR, "").strip()
if _env_mode and _parse_mode(_env_mode):
    arm(_env_mode)
del _env_mode
