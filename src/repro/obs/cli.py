"""``loltrace`` and ``lolprof`` — the observability CLIs.

* ``loltrace`` arms the tracing plane, runs a LOLCODE file or a
  registered workload under any executor/engine, and writes the merged
  timeline (all PEs, pool workers included) as Chrome trace-event JSON
  — drag the file into https://ui.perfetto.dev or ``chrome://tracing``.
* ``lolprof`` runs a program on the register-bytecode VM with the
  per-opcode profiler (:mod:`repro.obs.vmprof`) and prints a
  count/self-time table per opcode, aggregated across PEs.

Both follow the ``repro.cli`` conventions: ``main(argv) -> int``,
LOLCODE errors reported via their ``describe()`` form, exit code 0 on
success.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence

from .. import obs
from ..lang.errors import LolError


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def _fail(exc: LolError) -> int:
    print(exc.describe(), file=sys.stderr)
    return 1


def _parse_sets(pairs: Sequence[str]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set expects name=value, got {pair!r}")
        key, _, value = pair.partition("=")
        try:
            out[key.strip()] = int(value)
        except ValueError:
            raise SystemExit(f"--set {key}: not an integer: {value!r}")
    return out


def _resolve_source(args) -> tuple:
    """(source text, filename) from either a file or --workload."""
    if args.workload:
        from ..workloads import get_workload

        workload = get_workload(args.workload)
        params = workload.bind_params(_parse_sets(args.set), smoke=args.smoke)
        return workload.source_fn(params), f"<workload:{workload.name}>"
    if not args.source:
        raise SystemExit("need a source file or --workload NAME")
    return _read(args.source), args.source


def loltrace_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="loltrace",
        description="run parallel LOLCODE with structured tracing armed "
        "and export a Chrome trace-event JSON (opens in Perfetto)",
    )
    parser.add_argument(
        "source", nargs="?", help="input .lol file ('-' for stdin)"
    )
    parser.add_argument(
        "--workload", help="trace a registered workload instead of a file"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="use the workload's smoke sizes"
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="workload parameter override (repeatable)",
    )
    parser.add_argument("-np", "--n-pes", type=int, default=4, dest="n_pes")
    parser.add_argument(
        "--executor",
        choices=("thread", "process", "pool", "serial"),
        default="thread",
    )
    parser.add_argument("--engine", default="closure")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "-o",
        "--out",
        default="trace.json",
        help="output path for the Chrome trace JSON (default trace.json)",
    )
    parser.add_argument(
        "--stdout",
        action="store_true",
        help="also echo the program's VISIBLE output",
    )
    args = parser.parse_args(argv)

    try:
        source, filename = _resolve_source(args)
    except LolError as exc:
        return _fail(exc)

    # Arm before launch: spawn-method workers inherit LOL_OBS from the
    # environment and self-arm, so their spans ride the reply pipes back.
    rt = obs.arm("trace,metrics")
    try:
        from ..launcher import run_lolcode

        result = run_lolcode(
            source,
            args.n_pes,
            executor=args.executor,
            filename=filename,
            seed=args.seed,
            engine=args.engine,
        )
    except LolError as exc:
        return _fail(exc)
    finally:
        summary = rt.tracer.summary()
        chrome = rt.tracer.export_chrome()
        obs.disarm()

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(chrome, fh, indent=1)
    if args.stdout:
        sys.stdout.write(result.output)
    by_cat = ", ".join(
        f"{k}={v['spans']}" for k, v in summary["by_cat"].items()
    )
    dropped = f", {summary['dropped']} dropped" if summary["dropped"] else ""
    print(
        f"loltrace: {summary['spans']} spans ({by_cat}){dropped}",
        file=sys.stderr,
    )
    print(
        f"loltrace: wrote {args.out} — open in https://ui.perfetto.dev",
        file=sys.stderr,
    )
    return 0


def lolprof_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lolprof",
        description="per-opcode VM profiler: run on the register-bytecode "
        "engine and print counts + self-time per opcode",
    )
    parser.add_argument(
        "source", nargs="?", help="input .lol file ('-' for stdin)"
    )
    parser.add_argument(
        "--workload", help="profile a registered workload instead of a file"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="use the workload's smoke sizes"
    )
    parser.add_argument(
        "--set", action="append", default=[], metavar="NAME=VALUE"
    )
    parser.add_argument("-np", "--n-pes", type=int, default=1, dest="n_pes")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--top", type=int, default=None, help="show only the N hottest opcodes"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the rows as JSON"
    )
    parser.add_argument(
        "--stdout",
        action="store_true",
        help="also echo the program's VISIBLE output",
    )
    args = parser.parse_args(argv)

    try:
        source, filename = _resolve_source(args)
    except LolError as exc:
        return _fail(exc)

    from ..interp import compile_vm_cached
    from ..shmem.runtime_threads import run_spmd
    from .vmprof import OpcodeProfile, ProfilingMachine, format_report

    profiles: list = []

    def pe_main(ctx):
        program = compile_vm_cached(source, filename, False, False)
        machine = ProfilingMachine(ctx)
        try:
            machine.run(program)
        finally:
            profiles.append(machine.profile)
        return None

    try:
        result = run_spmd(pe_main, args.n_pes, seed=args.seed)
    except LolError as exc:
        return _fail(exc)

    merged = OpcodeProfile()
    for profile in profiles:
        for op in range(len(merged.counts)):
            merged.counts[op] += profile.counts[op]
            merged.self_s[op] += profile.self_s[op]

    if args.stdout:
        sys.stdout.write(result.output)
    if args.json:
        print(
            json.dumps(
                {"summary": merged.summary(), "opcodes": merged.rows()},
                indent=2,
            )
        )
    else:
        print(format_report(merged, top=args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover
    # ``python -m repro.obs.cli`` is the loltrace entry point; lolprof
    # is reachable as ``python -m repro.obs.cli prof ...`` for parity.
    _argv = sys.argv[1:]
    if _argv and _argv[0] == "prof":
        sys.exit(lolprof_main(_argv[1:]))
    sys.exit(loltrace_main(_argv))
