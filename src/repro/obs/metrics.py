"""Central metrics registry: counters, gauges, and histograms.

Every ad-hoc counter in the tree (the VM's ``sym_misses``/``vec_runs``,
the native builder's ``corrupt_rebuilds``, the pool's respawn counts,
the scheduler's shed/retry totals, the fault plane's arrival/fire maps)
feeds one process-wide :class:`MetricsRegistry`, so ``lolserve stats``,
``BENCH_service.json`` and the Prometheus ``metrics`` op all read the
same numbers instead of hand-assembled copies that can drift.

Design constraints, in order:

* **leaf module** — imports nothing from :mod:`repro` (everything else
  imports *it*), so instrumentation can live in the VM, the SHMEM
  runtimes, the compiler and the service without cycles;
* **cross-process mergeable** — :meth:`MetricsRegistry.snapshot` (with
  ``reset=True`` it is a *drain*) produces a picklable delta a pool or
  process worker ships to its parent over the existing reply pipes, and
  :meth:`MetricsRegistry.merge` folds it in (counters add, histogram
  buckets add, gauges overwrite);
* **Prometheus-exportable** — :func:`render_prometheus` emits the text
  exposition format (``# HELP``/``# TYPE``, ``_bucket``/``_sum``/
  ``_count`` histogram series, ``le="+Inf"``), checked by
  :mod:`repro.obs.promcheck`.

Histograms keep a bounded reservoir of raw samples next to their
cumulative buckets so :func:`percentile` (the shared p50/p99 helper
``lolbench`` and the service bench have always used — it moved here
from ``repro.bench``) works on exact values, not bucket interpolation.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated ``q``-th percentile (0..100) of ``samples``.

    Shared latency helper for the sweep, the service-throughput
    benchmark (p50/p99 rows in ``BENCH_service.json``) and histogram
    summaries.  (Re-exported by :mod:`repro.bench` for compatibility.)
    """
    if not samples:
        raise ValueError("percentile of no samples")
    return float(np.percentile(list(samples), q))


#: Default histogram buckets (seconds) — spans micro-barriers to jobs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Raw samples retained per histogram series for exact percentiles.
SAMPLE_CAP = 4096

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Base: one named family of label-keyed series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self._lock = lock
        self._series: Dict[_LabelKey, object] = {}

    def labels_seen(self) -> List[dict]:
        with self._lock:
            return [dict(key) for key in self._series]

    def reset(self) -> None:
        """Drop every series (test isolation; drains use snapshot(reset))."""
        with self._lock:
            self._series.clear()


class Counter(Metric):
    """Monotonic counter.  Name should end in ``_total``."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return sum(self._series.values())


class Gauge(Metric):
    """Point-in-time value (queue depth, live workers)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._series[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)


class _HistSeries:
    """One label combination's cumulative state."""

    __slots__ = ("bucket_counts", "sum", "count", "samples")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets  # non-cumulative, per bucket
        self.sum = 0.0
        self.count = 0
        self.samples: List[float] = []


class Histogram(Metric):
    """Cumulative-bucket histogram plus a bounded sample reservoir.

    The buckets feed the Prometheus exposition; the reservoir feeds
    exact p50/p99 summaries (``lolserve stats``, ``lolbench`` rows).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, lock)
        self.buckets = tuple(sorted(buckets))

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistSeries(len(self.buckets) + 1)
                self._series[key] = series
            idx = len(self.buckets)  # +Inf slot
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    idx = i
                    break
            series.bucket_counts[idx] += 1
            series.sum += value
            series.count += 1
            if len(series.samples) < SAMPLE_CAP:
                series.samples.append(value)

    def summary(self, **labels: str) -> Optional[dict]:
        """count/sum/p50/p99 for one label combination (None if empty)."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return None
            samples = series.samples
        return {
            "count": series.count,
            "sum_s": round(series.sum, 6),
            "p50_s": round(percentile(samples, 50), 6),
            "p99_s": round(percentile(samples, 99), 6),
        }

    def merged_summary(self) -> Optional[dict]:
        """Summary pooled across every label combination."""
        with self._lock:
            samples: List[float] = []
            count = 0
            total = 0.0
            for series in self._series.values():
                samples.extend(series.samples)
                count += series.count
                total += series.sum
        if not samples:
            return None
        return {
            "count": count,
            "sum_s": round(total, 6),
            "p50_s": round(percentile(samples, 50), 6),
            "p99_s": round(percentile(samples, 99), 6),
        }


class MetricsRegistry:
    """Thread-safe collection of metrics plus snapshot/merge plumbing.

    ``register_collector`` hooks lazily-evaluated sources (compile-cache
    ``cache_info()``, pool worker liveness, fault-plane counters): each
    callback runs just before a snapshot or render and typically sets
    gauges.  Collector errors are swallowed — observability must never
    take down the thing it observes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}
        self._collectors: List[Callable[[], None]] = []

    # -- metric construction (get-or-create, idempotent) --------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, help, Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, help, Gauge)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, help, threading.Lock(), buckets)
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def _get_or_create(self, name: str, help: str, cls) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, threading.Lock())
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.name)

    # -- collectors ----------------------------------------------------------

    def register_collector(self, fn: Callable[[], None]) -> None:
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    def unregister_collector(self, fn: Callable[[], None]) -> None:
        with self._lock:
            if fn in self._collectors:
                self._collectors.remove(fn)

    def run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            try:
                fn()
            except Exception:  # noqa: BLE001 - observers must not crash us
                pass

    # -- snapshot / merge (the cross-process wire format) --------------------

    def snapshot(self, *, reset: bool = False, collect: bool = True) -> dict:
        """Picklable state dump.  ``reset=True`` drains: the caller gets
        the delta since the previous drain and the registry restarts at
        zero — the pool-worker reply protocol, which lets the parent
        ``merge`` per-job deltas without double counting."""
        if collect:
            self.run_collectors()
        out: dict = {}
        for metric in self.metrics():
            with metric._lock:
                if isinstance(metric, Histogram):
                    series = {
                        json.dumps(key): {
                            "buckets": list(s.bucket_counts),
                            "sum": s.sum,
                            "count": s.count,
                            "samples": list(s.samples),
                        }
                        for key, s in metric._series.items()
                    }
                    out[metric.name] = {
                        "type": "histogram",
                        "help": metric.help,
                        "bounds": list(metric.buckets),
                        "series": series,
                    }
                else:
                    out[metric.name] = {
                        "type": metric.kind,
                        "help": metric.help,
                        "series": {
                            json.dumps(key): v
                            for key, v in metric._series.items()
                        },
                    }
                if reset:
                    metric._series.clear()
        return out

    def merge(self, snapshot: Mapping) -> None:
        """Fold a worker's drained snapshot in: counters and histogram
        buckets/samples add; gauges overwrite (point-in-time wins)."""
        for name, payload in snapshot.items():
            kind = payload.get("type", "counter")
            if kind == "histogram":
                metric = self.histogram(
                    name, payload.get("help", ""),
                    tuple(payload.get("bounds", DEFAULT_BUCKETS)),
                )
                with metric._lock:
                    for raw_key, state in payload.get("series", {}).items():
                        key = tuple(tuple(kv) for kv in json.loads(raw_key))
                        series = metric._series.get(key)
                        if series is None:
                            series = _HistSeries(len(metric.buckets) + 1)
                            metric._series[key] = series
                        counts = state.get("buckets", [])
                        for i, n in enumerate(counts[: len(series.bucket_counts)]):
                            series.bucket_counts[i] += n
                        series.sum += state.get("sum", 0.0)
                        series.count += state.get("count", 0)
                        room = SAMPLE_CAP - len(series.samples)
                        if room > 0:
                            series.samples.extend(state.get("samples", [])[:room])
            elif kind == "gauge":
                metric = self.gauge(name, payload.get("help", ""))
                with metric._lock:
                    for raw_key, value in payload.get("series", {}).items():
                        key = tuple(tuple(kv) for kv in json.loads(raw_key))
                        metric._series[key] = value
            else:
                metric = self.counter(name, payload.get("help", ""))
                with metric._lock:
                    for raw_key, value in payload.get("series", {}).items():
                        key = tuple(tuple(kv) for kv in json.loads(raw_key))
                        metric._series[key] = metric._series.get(key, 0) + value

    def reset(self) -> None:
        """Zero every metric, keep registrations (test isolation)."""
        for metric in self.metrics():
            metric.reset()


def diff_snapshots(before: Mapping, after: Mapping) -> dict:
    """Per-metric delta between two (non-reset) snapshots.

    Counters and histogram counts subtract; histogram ``samples`` are
    the tail added after ``before`` (exact as long as the reservoir did
    not fill); gauges pass through ``after``.  This is how ``lolbench``
    attributes one cell's comm/barrier activity without draining the
    registry out from under concurrent readers.
    """
    out: dict = {}
    for name, payload in after.items():
        prev = before.get(name, {})
        prev_series = prev.get("series", {})
        kind = payload.get("type", "counter")
        if kind == "histogram":
            series = {}
            for raw_key, state in payload.get("series", {}).items():
                prev_state = prev_series.get(raw_key, {})
                prev_count = prev_state.get("count", 0)
                prev_buckets = prev_state.get("buckets", [])
                buckets = [
                    n - (prev_buckets[i] if i < len(prev_buckets) else 0)
                    for i, n in enumerate(state.get("buckets", []))
                ]
                delta = {
                    "buckets": buckets,
                    "sum": state.get("sum", 0.0) - prev_state.get("sum", 0.0),
                    "count": state.get("count", 0) - prev_count,
                    "samples": state.get("samples", [])[prev_count:],
                }
                if delta["count"]:
                    series[raw_key] = delta
            if series:
                out[name] = {**payload, "series": series}
        elif kind == "gauge":
            out[name] = payload
        else:
            series = {
                raw_key: value - prev_series.get(raw_key, 0)
                for raw_key, value in payload.get("series", {}).items()
                if value != prev_series.get(raw_key, 0)
            }
            if series:
                out[name] = {**payload, "series": series}
    return out


# -- Prometheus text exposition ---------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(key: _LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs = pairs + [extra]
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _fmt_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _fmt_value(float(bound))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    registry.run_collectors()
    lines: List[str] = []
    for metric in registry.metrics():
        help_text = (metric.help or metric.name).replace("\n", " ")
        lines.append(f"# HELP {metric.name} {help_text}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        with metric._lock:
            if isinstance(metric, Histogram):
                for key in sorted(metric._series):
                    series = metric._series[key]
                    cumulative = 0
                    for bound, n in zip(
                        list(metric.buckets) + [float("inf")],
                        series.bucket_counts,
                    ):
                        cumulative += n
                        labels = _fmt_labels(key, ("le", _fmt_bound(bound)))
                        lines.append(
                            f"{metric.name}_bucket{labels} {cumulative}"
                        )
                    lines.append(
                        f"{metric.name}_sum{_fmt_labels(key)} "
                        f"{_fmt_value(series.sum)}"
                    )
                    lines.append(
                        f"{metric.name}_count{_fmt_labels(key)} {series.count}"
                    )
            else:
                if not metric._series:
                    # An empty family still exposes a zero sample so the
                    # catalog is visible before the first event.
                    lines.append(f"{metric.name} 0")
                for key in sorted(metric._series):
                    lines.append(
                        f"{metric.name}{_fmt_labels(key)} "
                        f"{_fmt_value(metric._series[key])}"
                    )
    return "\n".join(lines) + "\n"


# -- the process-wide default registry --------------------------------------

_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented layer feeds."""
    return _registry


def reset_registry() -> None:
    """Zero all metrics in the default registry (test isolation)."""
    _registry.reset()
