"""Validator for the Prometheus text exposition format (0.0.4).

Used by the test suite and the CI ``obs-smoke`` job to check that
whatever ``lolserve stats --format prom`` / the ``metrics`` server op
emit would actually be scrapeable.  Pure stdlib, no Prometheus client
dependency (the container has none, by design).

``validate_exposition(text)`` returns a list of human-readable error
strings — empty means valid.  ``python -m repro.obs.promcheck [FILE]``
validates a file (or stdin) and exits non-zero on problems.
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Optional, Tuple

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"

_HELP_RE = re.compile(rf"^# HELP ({_METRIC_NAME}) (.*)$")
_TYPE_RE = re.compile(rf"^# TYPE ({_METRIC_NAME}) (\w+)$")
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})(\{{.*\}})? ([^ ]+)( [0-9]+)?$"
)
_LABEL_RE = re.compile(rf'({_LABEL_NAME})="((?:[^"\\]|\\.)*)"')

_VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}

_HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_value(text: str) -> Optional[float]:
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        return None


def _parse_labels(raw: str) -> Optional[Dict[str, str]]:
    """Parse ``{a="x",b="y"}`` -> dict; None on malformed label syntax."""
    inner = raw[1:-1].strip()
    if not inner:
        return {}
    labels: Dict[str, str] = {}
    rest = inner
    while rest:
        match = _LABEL_RE.match(rest)
        if not match:
            return None
        name, value = match.group(1), match.group(2)
        if name in labels:
            return None  # duplicate label name
        labels[name] = value
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            return None
    return labels


def _family_of(name: str, types: Dict[str, str]) -> str:
    """Map a sample name back to its declared family (histogram series
    carry ``_bucket``/``_sum``/``_count`` suffixes)."""
    if name in types:
        return name
    for suffix in _HIST_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return name


def validate_exposition(text: str) -> List[str]:
    """Return a list of format violations in ``text`` (empty == valid)."""
    errors: List[str] = []
    types: Dict[str, str] = {}
    helped: Dict[str, bool] = {}
    seen_sample: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], int] = {}
    # histogram state: family -> labelset(minus le) -> list of (le, cum)
    hist_buckets: Dict[str, Dict[tuple, List[Tuple[float, float]]]] = {}
    hist_sums: Dict[str, Dict[tuple, float]] = {}
    hist_counts: Dict[str, Dict[tuple, float]] = {}

    if text and not text.endswith("\n"):
        errors.append("exposition must end with a newline")

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            help_m = _HELP_RE.match(line)
            type_m = _TYPE_RE.match(line)
            if help_m:
                name = help_m.group(1)
                if helped.get(name):
                    errors.append(f"line {lineno}: duplicate HELP for {name}")
                helped[name] = True
                continue
            if type_m:
                name, mtype = type_m.groups()
                if mtype not in _VALID_TYPES:
                    errors.append(
                        f"line {lineno}: invalid TYPE {mtype!r} for {name}"
                    )
                if name in types:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                types[name] = mtype
                continue
            if line.startswith(("# HELP", "# TYPE")):
                errors.append(f"line {lineno}: malformed comment: {line!r}")
            continue  # other comments are legal and ignored

        sample = _SAMPLE_RE.match(line)
        if not sample:
            errors.append(f"line {lineno}: unparsable sample line: {line!r}")
            continue
        name, raw_labels, raw_value, _ts = sample.groups()
        labels = _parse_labels(raw_labels) if raw_labels else {}
        if labels is None:
            errors.append(f"line {lineno}: malformed labels: {raw_labels!r}")
            continue
        value = _parse_value(raw_value)
        if value is None:
            errors.append(f"line {lineno}: unparsable value {raw_value!r}")
            continue

        family = _family_of(name, types)
        ftype = types.get(family)
        if ftype is None:
            errors.append(
                f"line {lineno}: sample {name!r} has no preceding # TYPE"
            )
        if ftype == "counter":
            if not name.endswith("_total"):
                errors.append(
                    f"line {lineno}: counter {name!r} should end in _total"
                )
            if value < 0:
                errors.append(f"line {lineno}: counter {name!r} is negative")
        if ftype == "histogram" and not name.endswith(_HIST_SUFFIXES):
            errors.append(
                f"line {lineno}: histogram family {family!r} has plain "
                f"sample {name!r}"
            )

        key = (name, tuple(sorted(labels.items())))
        if key in seen_sample:
            errors.append(
                f"line {lineno}: duplicate series {name}{labels} "
                f"(first at line {seen_sample[key]})"
            )
        seen_sample[key] = lineno

        if ftype == "histogram":
            base = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            ))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(
                        f"line {lineno}: histogram bucket without le label"
                    )
                else:
                    le = _parse_value(labels["le"])
                    if le is None:
                        errors.append(
                            f"line {lineno}: unparsable le={labels['le']!r}"
                        )
                    else:
                        hist_buckets.setdefault(family, {}).setdefault(
                            base, []
                        ).append((le, value))
            elif name.endswith("_sum"):
                hist_sums.setdefault(family, {})[base] = value
            elif name.endswith("_count"):
                hist_counts.setdefault(family, {})[base] = value

    # Post-pass: histogram invariants.
    for family, per_labels in hist_buckets.items():
        for base, buckets in per_labels.items():
            ordered = sorted(buckets, key=lambda b: b[0])
            if not ordered or ordered[-1][0] != float("inf"):
                errors.append(
                    f"histogram {family}{dict(base)}: missing le=\"+Inf\" bucket"
                )
            last = -1.0
            for le, cum in ordered:
                if cum < last:
                    errors.append(
                        f"histogram {family}{dict(base)}: bucket counts "
                        f"decrease at le={le}"
                    )
                    break
                last = cum
            count = hist_counts.get(family, {}).get(base)
            if count is None:
                errors.append(f"histogram {family}{dict(base)}: missing _count")
            elif ordered and ordered[-1][0] == float("inf") and \
                    ordered[-1][1] != count:
                errors.append(
                    f"histogram {family}{dict(base)}: _count {count} != "
                    f"+Inf bucket {ordered[-1][1]}"
                )
            if base not in hist_sums.get(family, {}):
                errors.append(f"histogram {family}{dict(base)}: missing _sum")
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] not in ("-", "--"):
        with open(argv[0], "r", encoding="utf-8") as fh:
            text = fh.read()
        source = argv[0]
    else:
        text = sys.stdin.read()
        source = "<stdin>"
    errors = validate_exposition(text)
    if errors:
        for err in errors:
            print(f"{source}: {err}", file=sys.stderr)
        print(f"{source}: INVALID ({len(errors)} problem(s))", file=sys.stderr)
        return 1
    samples = sum(
        1 for line in text.splitlines() if line.strip() and not line.startswith("#")
    )
    print(f"{source}: OK ({samples} samples)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
