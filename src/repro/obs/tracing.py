"""Structured tracing: span records exported as Chrome trace-event JSON.

A :class:`Tracer` collects :dfn:`spans` — named, categorised intervals
with monotonic timestamps and parent IDs — per process.  Workers (pool
or process executor) :meth:`~Tracer.drain` their buffer into a
picklable payload that rides the existing reply pipes; the parent
merges it back via :meth:`~Tracer.absorb`, so one run yields one
merged timeline.
:meth:`~Tracer.export_chrome` writes the Chrome trace-event format
(``{"traceEvents": [...]}``), which opens directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.

Timestamps come from :func:`time.perf_counter` — CLOCK_MONOTONIC on
Linux, so values are comparable across processes on one machine and
worker spans nest correctly under the parent's root span.

Like :mod:`repro.obs.metrics` this is a leaf module: it imports nothing
from :mod:`repro`.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Span categories, the taxonomy documented in docs/observability.md.
CAT_COMPILE = "compile"   # parse, closure/vm/py compile, per-engine
CAT_BUILD = "build"       # native cc/link, cache probes
CAT_LAUNCH = "launch"     # run_lolcode orchestration root
CAT_RUN = "run"           # one PE's program execution
CAT_COMM = "comm"         # barrier / put / get
CAT_POOL = "pool"         # job send / reply over worker pipes
CAT_SCHED = "sched"       # queued -> dispatch -> done

#: Hard cap on buffered spans per process; beyond it spans are counted
#: as dropped rather than grown without bound.
MAX_SPANS = 200_000


class Tracer:
    """Per-process span buffer with thread-local parent stacks."""

    def __init__(self, max_spans: int = MAX_SPANS) -> None:
        self.pid = os.getpid()
        self.max_spans = max_spans
        self.dropped = 0
        self._spans: List[dict] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._tls = threading.local()

    # -- parent bookkeeping --------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current_parent(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- recording -----------------------------------------------------------

    def _append(self, span: dict) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)

    def complete(
        self,
        cat: str,
        name: str,
        ts: float,
        dur: float,
        *,
        tid: Optional[str] = None,
        parent: Optional[int] = None,
        args: Optional[dict] = None,
    ) -> int:
        """Record an already-measured interval (the hot-site form: the
        caller reads ``perf_counter`` itself, so the disarmed path pays
        nothing and the armed path pays one method call)."""
        sid = next(self._ids)
        self._append(
            {
                "sid": sid,
                "parent": parent if parent is not None else self.current_parent(),
                "cat": cat,
                "name": name,
                "ts": ts,
                "dur": dur,
                "pid": self.pid,
                "tid": tid if tid is not None else threading.current_thread().name,
                "args": args or {},
            }
        )
        return sid

    def instant(
        self,
        cat: str,
        name: str,
        *,
        tid: Optional[str] = None,
        args: Optional[dict] = None,
    ) -> int:
        """Zero-duration marker (queue events, fault fires)."""
        sid = next(self._ids)
        self._append(
            {
                "sid": sid,
                "parent": self.current_parent(),
                "cat": cat,
                "name": name,
                "ts": time.perf_counter(),
                "dur": 0.0,
                "pid": self.pid,
                "tid": tid if tid is not None else threading.current_thread().name,
                "args": args or {},
                "ph": "i",
            }
        )
        return sid

    @contextmanager
    def span(
        self,
        cat: str,
        name: str,
        *,
        tid: Optional[str] = None,
        args: Optional[dict] = None,
    ) -> Iterator[int]:
        """Scoped span: children opened inside (same thread) get this
        span as their parent."""
        sid = next(self._ids)
        stack = self._stack()
        parent = stack[-1] if stack else None
        stack.append(sid)
        t0 = time.perf_counter()
        try:
            yield sid
        finally:
            dur = time.perf_counter() - t0
            stack.pop()
            self._append(
                {
                    "sid": sid,
                    "parent": parent,
                    "cat": cat,
                    "name": name,
                    "ts": t0,
                    "dur": dur,
                    "pid": self.pid,
                    "tid": tid
                    if tid is not None
                    else threading.current_thread().name,
                    "args": args or {},
                }
            )

    # -- cross-process merge --------------------------------------------------

    def spans(self) -> List[dict]:
        with self._lock:
            return list(self._spans)

    def drain(self) -> dict:
        """Worker side: hand over buffered spans and reset, so repeated
        jobs on a warm worker never re-send old spans."""
        with self._lock:
            spans, self._spans = self._spans, []
            dropped, self.dropped = self.dropped, 0
        return {"pid": self.pid, "spans": spans, "dropped": dropped}

    def absorb(self, payload: dict) -> None:
        """Parent side: fold a worker's drained spans into this buffer.

        Span IDs are renumbered into this tracer's sequence (parent
        links inside the payload are remapped) so merged timelines never
        collide; the originating pid is preserved on each span.
        """
        spans = payload.get("spans") or []
        remap: Dict[int, int] = {}
        for span in spans:
            remap[span["sid"]] = next(self._ids)
        with self._lock:
            self.dropped += payload.get("dropped", 0)
            for span in spans:
                span = dict(span)
                span["sid"] = remap[span["sid"]]
                old_parent = span.get("parent")
                span["parent"] = remap.get(old_parent)
                if len(self._spans) >= self.max_spans:
                    self.dropped += 1
                    continue
                self._spans.append(span)

    # -- export ----------------------------------------------------------------

    def export_chrome(self) -> dict:
        """Chrome trace-event JSON (the object form, Perfetto-loadable)."""
        events: List[dict] = []
        names: Dict[int, str] = {}
        threads: Dict[tuple, str] = {}
        for span in self.spans():
            pid = span.get("pid", self.pid)
            tid = str(span.get("tid", "main"))
            names.setdefault(pid, "repro" if pid == self.pid else f"worker-{pid}")
            threads.setdefault((pid, tid), tid)
            event = {
                "name": span["name"],
                "cat": span["cat"],
                "ph": span.get("ph", "X"),
                "ts": round(span["ts"] * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": dict(span.get("args") or {}, sid=span["sid"]),
            }
            if span.get("parent") is not None:
                event["args"]["parent"] = span["parent"]
            if event["ph"] == "X":
                event["dur"] = round(span["dur"] * 1e6, 3)
            else:
                event["s"] = "t"
            events.append(event)
        for pid, label in names.items():
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": "0",
                    "args": {"name": label},
                }
            )
        for (pid, tid), label in threads.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        events.sort(key=lambda e: (e.get("ts", -1), e["pid"], str(e["tid"])))
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.export_chrome(), indent=indent)

    def summary(self) -> dict:
        """Per-category span counts and total recorded time."""
        by_cat: Dict[str, dict] = {}
        for span in self.spans():
            entry = by_cat.setdefault(span["cat"], {"spans": 0, "total_s": 0.0})
            entry["spans"] += 1
            entry["total_s"] += span["dur"]
        for entry in by_cat.values():
            entry["total_s"] = round(entry["total_s"], 6)
        return {
            "spans": len(self._spans),
            "dropped": self.dropped,
            "by_cat": dict(sorted(by_cat.items())),
        }
