"""Opt-in per-opcode VM profiler (counts + self-time), zero-touch.

:class:`ProfilingMachine` subclasses the bytecode :class:`Machine` and
overrides only ``_exec``: the real :class:`CodeObject` is wrapped in a
view whose ``.code`` intercepts each ``code[pc]`` fetch.  The dispatch
loop in :mod:`repro.vm.machine` is **not modified** — that file stays
byte-identical whether profiling exists or not, which is the structural
half of the "zero cost when disabled" guarantee
(``tools/check_obs_overhead.py`` asserts it).

Self-time attribution: the interval between one fetch and the next is
charged to the first opcode.  A ``CALL`` therefore absorbs call-setup
time until the callee's first fetch (nested ``m._exec`` calls dispatch
through the same override, so functions and SYMDECL mini-expressions
are profiled too), and a callee's final ``RET``/``HALT`` absorbs the
return path — the natural reading of "self time" for a threaded
interpreter.

Surfaced by the ``lolprof`` CLI (:mod:`repro.obs.cli`).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..vm import isa
from ..vm.machine import Machine


class OpcodeProfile:
    """Flat per-opcode accumulators, shared across every code object
    executed by one machine (totals are program-wide)."""

    __slots__ = ("counts", "self_s", "last_op", "last_t")

    def __init__(self) -> None:
        self.counts = [0] * isa.N_OPCODES
        self.self_s = [0.0] * isa.N_OPCODES
        self.last_op = -1
        self.last_t = 0.0

    def close(self) -> None:
        """Charge the trailing interval (the op that ended execution)."""
        if self.last_op >= 0:
            self.self_s[self.last_op] += time.perf_counter() - self.last_t
            self.last_op = -1

    def rows(self) -> List[dict]:
        """Non-zero opcodes, hottest (by self-time) first."""
        total_s = sum(self.self_s) or 1e-12
        rows = []
        for op, count in enumerate(self.counts):
            if not count:
                continue
            self_s = self.self_s[op]
            rows.append(
                {
                    "op": isa.OPNAMES[op],
                    "count": count,
                    "self_s": round(self_s, 6),
                    "pct": round(100.0 * self_s / total_s, 2),
                    "avg_ns": round(1e9 * self_s / count, 1),
                }
            )
        rows.sort(key=lambda r: (-r["self_s"], r["op"]))
        return rows

    def summary(self) -> dict:
        return {
            "ops_executed": sum(self.counts),
            "self_s": round(sum(self.self_s), 6),
            "distinct_opcodes": sum(1 for c in self.counts if c),
        }


class _ProfCode:
    """Stand-in for ``CodeObject.code`` that meters every fetch."""

    __slots__ = ("_code", "_prof")

    def __init__(self, code: tuple, prof: OpcodeProfile) -> None:
        self._code = code
        self._prof = prof

    def __getitem__(self, pc: int):
        prof = self._prof
        now = time.perf_counter()
        last = prof.last_op
        if last >= 0:
            prof.self_s[last] += now - prof.last_t
        ins = self._code[pc]
        prof.counts[ins[0]] += 1
        prof.last_op = ins[0]
        prof.last_t = now
        return ins

    def __len__(self) -> int:
        return len(self._code)


class _ProfView:
    """CodeObject facade: same attribute surface, metered ``.code``."""

    __slots__ = ("name", "code", "positions", "n_slots", "n_caches")

    def __init__(self, co, prof: OpcodeProfile) -> None:
        self.name = co.name
        self.code = _ProfCode(co.code, prof)
        self.positions = co.positions
        self.n_slots = co.n_slots
        self.n_caches = co.n_caches


class ProfilingMachine(Machine):
    """Drop-in Machine that meters dispatch via code-object views."""

    __slots__ = ("profile", "_views")

    def __init__(self, ctx, max_steps: Optional[int] = None) -> None:
        super().__init__(ctx, max_steps=max_steps)
        self.profile = OpcodeProfile()
        self._views: Dict[object, _ProfView] = {}

    def _exec(self, co, frame, *args, **kwargs):
        view = self._views.get(co)
        if view is None:
            view = _ProfView(co, self.profile)
            self._views[co] = view
        return Machine._exec(self, view, frame)

    def run(self, program) -> None:
        try:
            super().run(program)
        finally:
            self.profile.close()


def format_report(profile: OpcodeProfile, top: Optional[int] = None) -> str:
    """Human-readable opcode table (``lolprof`` text output)."""
    rows = profile.rows()
    if top is not None:
        rows = rows[:top]
    summary = profile.summary()
    lines = [
        f"{'OPCODE':<14} {'COUNT':>10} {'SELF ms':>10} {'%':>6} {'AVG ns':>9}",
        "-" * 53,
    ]
    for row in rows:
        lines.append(
            f"{row['op']:<14} {row['count']:>10} "
            f"{row['self_s'] * 1e3:>10.3f} {row['pct']:>6.2f} "
            f"{row['avg_ns']:>9.1f}"
        )
    lines.append("-" * 53)
    lines.append(
        f"{'total':<14} {summary['ops_executed']:>10} "
        f"{summary['self_s'] * 1e3:>10.3f} {100.0:>6.2f}"
    )
    return "\n".join(lines)
