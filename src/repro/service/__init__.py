"""Persistent LOLCODE execution service.

Everything below this package outlives a single program run — the first
layer of the reproduction where the runtime is a *service* rather than a
launcher invocation:

* :mod:`repro.service.pool` — a warm pool of long-lived spawned worker
  processes that accept successive SPMD jobs over per-worker pipes,
  with shared-memory segments recycled by size class.  Exposed through
  the launcher as ``executor="pool"`` (the warm counterpart of the
  cold-spawn ``"process"`` executor).
* :mod:`repro.service.scheduler` — an asyncio job queue with bounded
  concurrency, per-job timeouts, FIFO fairness, and single-flight
  compilation.
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  JSON-over-unix-socket protocol (submit -> job id; status / wait /
  cancel; result payloads mirror ``lolbench`` rows).
* :mod:`repro.service.bench` — the service-throughput benchmark behind
  ``BENCH_service.json`` (jobs/sec, p50/p99 latency, warm pool vs cold
  process executor).
* :mod:`repro.service.cli` — the ``lolserve`` command
  (``serve`` / ``submit`` / ``status`` / ``wait`` / ``cancel`` /
  ``bench`` / ``smoke``).

The heavy submodules import lazily where it matters (the launcher only
pulls :mod:`~repro.service.pool` when ``executor="pool"`` is requested);
this package init re-exports the stable entry points.
"""

from .pool import WorkerPool, get_default_pool, run_pooled, shutdown_default_pool
from .scheduler import Job, JobSpec, JobState, Scheduler, execute_job

__all__ = [
    "Job",
    "JobSpec",
    "JobState",
    "Scheduler",
    "WorkerPool",
    "execute_job",
    "get_default_pool",
    "run_pooled",
    "shutdown_default_pool",
]
