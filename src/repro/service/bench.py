"""Service-throughput benchmark: warm pool vs cold process executor.

Measures what the warm worker pool buys on exactly the workload the
paper's launcher model is worst at — many small kernels submitted one
after another.  ``run_service_bench`` starts a real server
(:class:`~repro.service.server.BackgroundServer`), drives it through the
real client, and for each executor under test runs a *submit loop*:
``jobs`` submissions of one small registry kernel, each awaited to
completion, per-job latency recorded.

Reported per executor row (``BENCH_service.json``):

* ``jobs_per_s`` — completed jobs per wall-clock second of the loop;
* ``p50_s`` / ``p99_s`` — per-job latency percentiles
  (:func:`repro.bench.percentile`, the sweep's shared helper);
* ``total_s``, ``min_s``, ``max_s`` — loop aggregates.

The headline number is ``speedup_pool_vs_process``: the cold process
executor pays one full ``spawn`` (fresh interpreter + imports) per PE
per job, the pool pays it once at warm-up — the acceptance gate expects
the pool to be at least 3x faster on a 50-job small-kernel loop.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from typing import Optional, Sequence

from ..bench import percentile
from .client import ServiceClient
from .scheduler import ServiceError
from .server import BackgroundServer

DEFAULT_OUT = "BENCH_service.json"
SCHEMA_VERSION = 1

#: Executors compared by default: the warm pool against the cold
#: per-call process spawn it replaces.
DEFAULT_EXECUTORS = ("pool", "process")


def _submit_loop(
    client: ServiceClient,
    *,
    executor: str,
    workload: str,
    n_pes: int,
    jobs: int,
    seed: int,
    job_timeout: float,
) -> dict:
    """Submit ``jobs`` kernels sequentially, waiting for each; returns
    the executor's result row."""
    latencies: list[float] = []
    t_loop = time.perf_counter()
    for i in range(jobs):
        t0 = time.perf_counter()
        job_id = client.submit(
            workload=workload,
            smoke=True,
            n_pes=n_pes,
            executor=executor,
            seed=seed + i,
            timeout=job_timeout,
        )
        row = client.result(job_id, timeout=job_timeout)
        latencies.append(time.perf_counter() - t0)
        if row.get("checker") != "pass":
            raise ServiceError(
                f"{workload}[{executor}] job {i} failed verification: "
                f"{row.get('checker')}"
            )
    total = time.perf_counter() - t_loop
    return {
        "executor": executor,
        "jobs": jobs,
        "total_s": round(total, 6),
        "jobs_per_s": round(jobs / total, 3),
        "p50_s": round(percentile(latencies, 50), 6),
        "p99_s": round(percentile(latencies, 99), 6),
        "min_s": round(min(latencies), 6),
        "max_s": round(max(latencies), 6),
    }


def run_service_bench(
    *,
    jobs: int = 50,
    workload: str = "ring",
    n_pes: int = 2,
    executors: Sequence[str] = DEFAULT_EXECUTORS,
    seed: int = 42,
    job_timeout: float = 120.0,
    socket_path: Optional[str] = None,
) -> dict:
    """Run the full benchmark; returns the ``BENCH_service.json`` payload."""
    rows = []
    service_stats: Optional[dict] = None
    with BackgroundServer(socket_path, max_concurrency=1) as bg:
        client = ServiceClient(bg.socket_path, timeout=job_timeout)
        client.ping()
        for executor in executors:
            # One untimed warm-up job per executor: compile caches warm
            # for everyone, and the pool pays its one-time spawn here —
            # the steady state is what the service actually serves.
            warm = client.submit(
                workload=workload,
                smoke=True,
                n_pes=n_pes,
                executor=executor,
                seed=seed,
                timeout=job_timeout,
            )
            client.result(warm, timeout=job_timeout)
            rows.append(
                _submit_loop(
                    client,
                    executor=executor,
                    workload=workload,
                    n_pes=n_pes,
                    jobs=jobs,
                    seed=seed,
                    job_timeout=job_timeout,
                )
            )
        # Robustness counters for the whole run: a clean bench reports
        # zero retries/shed/degraded, and a bench under an armed fault
        # plan records what the service absorbed while still verifying
        # every job.
        stats = client.stats()
        service_stats = {
            key: stats.get(key)
            for key in ("retries", "shed", "degraded", "native", "faults")
        }
    payload = {
        "schema": SCHEMA_VERSION,
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "workload": workload,
            "n_pes": n_pes,
            "jobs": jobs,
            "seed": seed,
            "note": "sequential submit loop through the lolserve "
            "unix-socket service; latency = submit-to-result per job",
        },
        "rows": rows,
        "service_stats": service_stats,
    }
    by_exec = {row["executor"]: row for row in rows}
    if "pool" in by_exec and "process" in by_exec:
        payload["speedup_pool_vs_process"] = round(
            by_exec["process"]["total_s"] / by_exec["pool"]["total_s"], 2
        )
    return payload


def render_bench(payload: dict) -> str:
    """Fixed-width terminal summary of a bench payload."""
    lines = [
        f"{'executor':<9} {'jobs':>5} {'total':>9} {'jobs/s':>8} "
        f"{'p50':>9} {'p99':>9}"
    ]
    for row in payload["rows"]:
        lines.append(
            f"{row['executor']:<9} {row['jobs']:>5} {row['total_s']:>8.3f}s "
            f"{row['jobs_per_s']:>8.2f} {row['p50_s'] * 1e3:>7.2f}ms "
            f"{row['p99_s'] * 1e3:>7.2f}ms"
        )
    speedup = payload.get("speedup_pool_vs_process")
    if speedup is not None:
        lines.append(f"warm pool vs cold process executor: {speedup:.2f}x")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``lolserve bench`` — run and write ``BENCH_service.json``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="lolserve bench",
        description="service throughput: warm pool vs cold process executor",
    )
    parser.add_argument("--jobs", type=int, default=50, help="jobs per executor")
    parser.add_argument(
        "--workload", default="ring", help="registry kernel to submit"
    )
    parser.add_argument("--pes", type=int, default=2, dest="n_pes")
    parser.add_argument(
        "--executors", nargs="+", default=list(DEFAULT_EXECUTORS),
        help="executors to compare (default: pool process)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out", default=DEFAULT_OUT, help=f"output JSON (default {DEFAULT_OUT})"
    )
    args = parser.parse_args(argv)
    payload = run_service_bench(
        jobs=args.jobs,
        workload=args.workload,
        n_pes=args.n_pes,
        executors=tuple(args.executors),
        seed=args.seed,
    )
    print(render_bench(payload))
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0
