"""The ``lolserve`` command line.

Subcommands::

    lolserve serve  --socket /tmp/lolserve.sock [--concurrency K]
    lolserve submit --socket /tmp/lolserve.sock ring --workload -np 4 --wait
    lolserve submit --socket /tmp/lolserve.sock code.lol -np 4
    lolserve status --socket /tmp/lolserve.sock job-1
    lolserve wait   --socket /tmp/lolserve.sock job-1
    lolserve cancel --socket /tmp/lolserve.sock job-1
    lolserve stats  --socket /tmp/lolserve.sock
    lolserve bench  --jobs 50 --out BENCH_service.json
    lolserve smoke  --jobs 20

``serve`` runs the unix-socket server in the foreground; everything
else is a thin client call (``bench``/``smoke`` start their own
throwaway server).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence

DEFAULT_SOCKET = "/tmp/lolserve.sock"


def _parse_params(entries: Sequence[str]) -> Dict[str, int]:
    params: Dict[str, int] = {}
    for entry in entries:
        try:
            name, value = entry.split("=", 1)
            params[name] = int(value)
        except ValueError:
            raise SystemExit(
                f"lolserve: bad --set {entry!r} (expected param=int)"
            ) from None
    return params


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lolserve",
        description="persistent LOLCODE execution service "
        "(warm worker pool behind a unix-socket job queue)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser("serve", help="run the server in the foreground")
    serve_p.add_argument("--socket", default=DEFAULT_SOCKET)
    serve_p.add_argument(
        "--concurrency", type=int, default=2,
        help="max jobs executing at once (default 2)",
    )
    serve_p.add_argument(
        "--timeout", type=float, default=120.0,
        help="default per-job timeout in seconds (default 120)",
    )
    serve_p.add_argument(
        "--queue-depth", type=int, default=256, dest="queue_depth",
        help="max queued jobs before submissions are shed with a "
        "queue-full error (default 256)",
    )

    submit_p = sub.add_parser("submit", help="submit a job")
    submit_p.add_argument(
        "target", help=".lol file ('-' for stdin), or a workload name "
        "with --workload",
    )
    submit_p.add_argument("--socket", default=DEFAULT_SOCKET)
    submit_p.add_argument(
        "--workload", action="store_true",
        help="treat TARGET as a registry workload name",
    )
    submit_p.add_argument(
        "--set", action="append", default=[], metavar="PARAM=N",
        dest="overrides", help="workload parameter override",
    )
    submit_p.add_argument("--smoke", action="store_true",
                          help="use the workload's smoke sizes")
    submit_p.add_argument("-np", "--n-pes", type=int, default=4, dest="n_pes")
    submit_p.add_argument("--engine", default="closure")
    submit_p.add_argument("--executor", default="pool")
    submit_p.add_argument("--seed", type=int, default=None)
    submit_p.add_argument("--trace", action="store_true")
    submit_p.add_argument("--timeout", type=float, default=None,
                          help="per-job timeout in seconds")
    submit_p.add_argument(
        "--fallback-engine", default=None, dest="fallback_engine",
        help="engine to degrade to if the requested engine is "
        "unavailable (result is marked degraded)",
    )
    submit_p.add_argument(
        "--max-attempts", type=int, default=None, dest="max_attempts",
        help="override the scheduler's retry budget for this job",
    )
    submit_p.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its result",
    )

    for name, doc in (
        ("status", "show a job's state"),
        ("wait", "block until a job finishes; print it"),
        ("cancel", "cancel a queued job"),
    ):
        p = sub.add_parser(name, help=doc)
        p.add_argument("job_id")
        p.add_argument("--socket", default=DEFAULT_SOCKET)
        if name == "wait":
            p.add_argument("--timeout", type=float, default=None)

    stats_p = sub.add_parser(
        "stats", help="print server counters (queue, pool, retries, "
        "shed, degraded, per-engine latency, native cache, faults)",
    )
    stats_p.add_argument("--socket", default=DEFAULT_SOCKET)
    stats_p.add_argument(
        "--format", choices=("json", "prom", "text"), default="json",
        help="json (raw stats), prom (Prometheus text exposition from "
        "the server's metric registry), or text (one-screen summary)",
    )
    stats_p.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-poll and re-print every SECONDS until interrupted",
    )

    bench_p = sub.add_parser(
        "bench", help="throughput benchmark -> BENCH_service.json"
    )
    bench_p.add_argument("--jobs", type=int, default=50)
    bench_p.add_argument("--workload", default="ring")
    bench_p.add_argument("--pes", type=int, default=2, dest="n_pes")
    bench_p.add_argument("--executors", nargs="+", default=None)
    bench_p.add_argument("--seed", type=int, default=42)
    bench_p.add_argument("--out", default=None)

    smoke_p = sub.add_parser(
        "smoke", help="concurrent registry submissions; all must verify"
    )
    smoke_p.add_argument("--jobs", type=int, default=20)
    smoke_p.add_argument("--concurrency", type=int, default=4)
    smoke_p.add_argument("--seed", type=int, default=42)

    return parser


def _forward(args: argparse.Namespace, names: Sequence[str]) -> list[str]:
    """Re-render selected parsed options as argv for a sub-main."""
    argv: list[str] = []
    for name in names:
        value = getattr(args, name)
        if value is None:
            continue
        flag = "--pes" if name == "n_pes" else f"--{name}"
        if isinstance(value, (list, tuple)):
            argv.extend([flag, *map(str, value)])
        else:
            argv.extend([flag, str(value)])
    return argv


def _render_stats_text(stats: dict) -> str:
    """One-screen operator summary of the ``stats`` payload."""
    lines = [
        "queue    depth={queued} running={running} "
        "peak={peak_running} capacity={max_queue_depth}".format(**stats),
        "jobs     total={jobs} retries={retries} shed={shed} "
        "degraded={degraded}".format(**stats),
    ]
    states = stats.get("states") or {}
    if states:
        lines.append(
            "states   "
            + " ".join(f"{k}={v}" for k, v in sorted(states.items()))
        )
    for engine, row in sorted((stats.get("latency") or {}).items()):
        lines.append(
            f"latency  {engine}: n={row['count']} "
            f"p50={row['p50_s'] * 1e3:.1f}ms p99={row['p99_s'] * 1e3:.1f}ms"
        )
    pool = stats.get("pool")
    if pool:
        lines.append(
            "pool     size={size} alive={workers_alive} "
            "jobs={jobs_run} replaced={workers_replaced} "
            "rebuilds={rebuilds}".format(
                **dict({"workers_alive": "?"}, **pool)
            )
        )
    else:
        lines.append("pool     (not started)")
    native = stats.get("native")
    if native:
        lines.append(
            "native   builds={builds} cache_hits={cache_hits} "
            "corrupt_rebuilds={corrupt_rebuilds} "
            "transient_retries={transient_retries}".format(**native)
        )
    return "\n".join(lines)


def _stats_command(client, args: argparse.Namespace) -> int:
    import time as _time

    def _render() -> str:
        if args.format == "prom":
            return client.metrics().rstrip("\n")
        stats = client.stats()
        if args.format == "text":
            return _render_stats_text(stats)
        return json.dumps(stats, indent=2)

    if args.watch is None:
        print(_render())
        return 0
    try:
        while True:
            print(f"--- {_time.strftime('%H:%M:%S')} ---")
            print(_render(), flush=True)
            _time.sleep(max(args.watch, 0.05))
    except KeyboardInterrupt:
        return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "serve":
        from .server import serve

        print(f"lolserve: listening on {args.socket}", file=sys.stderr)
        serve(
            args.socket,
            max_concurrency=args.concurrency,
            default_timeout=args.timeout,
            max_queue_depth=args.queue_depth,
        )
        return 0

    if args.command == "bench":
        from .bench import main as bench_main

        return bench_main(
            _forward(args, ("jobs", "workload", "n_pes", "executors", "seed", "out"))
        )

    if args.command == "smoke":
        from .smoke import main as smoke_main

        return smoke_main(_forward(args, ("jobs", "concurrency", "seed")))

    from .client import ServiceClient
    from .scheduler import ServiceError

    client = ServiceClient(args.socket)
    try:
        if args.command == "submit":
            if args.workload:
                job_id = client.submit(
                    workload=args.target,
                    params=_parse_params(args.overrides),
                    smoke=args.smoke,
                    n_pes=args.n_pes,
                    engine=args.engine,
                    executor=args.executor,
                    seed=args.seed,
                    trace=args.trace,
                    timeout=args.timeout,
                    fallback_engine=args.fallback_engine,
                    max_attempts=args.max_attempts,
                )
            else:
                if args.target == "-":
                    source = sys.stdin.read()
                else:
                    with open(args.target, "r", encoding="utf-8") as fh:
                        source = fh.read()
                job_id = client.submit(
                    source,
                    n_pes=args.n_pes,
                    engine=args.engine,
                    executor=args.executor,
                    seed=args.seed,
                    trace=args.trace,
                    timeout=args.timeout,
                    filename=args.target,
                    fallback_engine=args.fallback_engine,
                    max_attempts=args.max_attempts,
                )
            if args.wait:
                print(json.dumps(client.wait(job_id), indent=2))
            else:
                print(job_id)
            return 0
        if args.command == "status":
            print(json.dumps(client.status(args.job_id), indent=2))
            return 0
        if args.command == "wait":
            print(json.dumps(client.wait(args.job_id, args.timeout), indent=2))
            return 0
        if args.command == "cancel":
            cancelled = client.cancel(args.job_id)
            print("cancelled" if cancelled else "not cancellable (running or done)")
            return 0
        if args.command == "stats":
            return _stats_command(client, args)
    except ServiceError as exc:
        print(f"lolserve: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"lolserve: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
