"""Synchronous client for the execution service.

Speaks the newline-delimited JSON protocol of
:mod:`repro.service.server` over a unix-domain socket.  Each request
opens its own connection, so one client object is safe to share across
threads and a long ``wait`` never head-of-line-blocks other calls.

Failure handling is typed and retrying:

* :class:`ServerUnavailableError` — connection refused / reset / closed
  before a reply, i.e. *the server is gone* (restarting, crashed).
  Connect-phase failures are retried for every op (nothing was sent);
  mid-request failures are retried only for read-only ops, never for
  ``submit``/``shutdown`` where a blind replay could duplicate work.
* :class:`MalformedReplyError` — the socket spoke, but not JSON: a
  protocol bug or a non-lolserve endpoint, never retried.
* :class:`~repro.service.scheduler.QueueFullError` — re-raised from the
  server's typed ``queue_full`` reply with its ``retry_after`` hint so
  callers can implement polite backpressure.

The retry schedule is a :class:`~repro.faults.RetryPolicy`
(deterministic backoff), so ``lolserve submit --wait`` rides out a
server restart instead of dying on the first refused connect.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Mapping, Optional

from ..faults import RetryPolicy
from .scheduler import QueueFullError, ServiceError

#: Extra slack (seconds) on the socket deadline beyond a wait timeout,
#: so the server's own timeout error arrives before the socket's.
_SOCKET_SLACK = 10.0

#: Ops safe to replay after a *mid-request* connection loss: read-only,
#: or idempotent by construction.  ``submit`` is deliberately absent —
#: the server processes a request before replying, so a reply lost in
#: flight could mean the job was already enqueued.
RETRY_SAFE_OPS = frozenset(
    {"ping", "status", "wait", "cancel", "stats", "metrics", "workloads"}
)

#: Default client-side retry: 3 connect attempts with ~0.1-0.4s backoff
#: rides out a service restart without masking a genuinely absent server
#: for more than a second.
DEFAULT_CLIENT_RETRY = RetryPolicy(
    max_attempts=3, backoff_base=0.1, backoff_factor=2.0, max_backoff=1.0
)


class ServerUnavailableError(ServiceError):
    """The server cannot be reached (refused, reset, or hung up early).

    ``mid_request`` distinguishes "never connected" (always safe to
    retry) from "connection died after the request was sent" (safe only
    for :data:`RETRY_SAFE_OPS`).
    """

    error_type = "server_unavailable"
    retryable = True

    def __init__(self, message: str, *, mid_request: bool) -> None:
        super().__init__(message)
        self.mid_request = mid_request


class MalformedReplyError(ServiceError):
    """The endpoint replied with something that is not protocol JSON."""

    error_type = "malformed_reply"


class ServiceClient:
    """Blocking unix-socket client; raises :class:`ServiceError`
    subclasses on protocol-level failures (``ok: false`` responses)."""

    def __init__(
        self,
        socket_path: str,
        *,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = DEFAULT_CLIENT_RETRY,
    ) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self.retry = retry

    # -- transport ----------------------------------------------------------

    def request(self, op: str, *, _deadline: Optional[float] = None, **fields) -> dict:
        """One request/response round trip (with availability retries)."""
        attempts = self.retry.max_attempts if self.retry else 1
        for attempt in range(1, attempts + 1):
            try:
                return self._request_once(op, _deadline, fields)
            except ServerUnavailableError as exc:
                replayable = not exc.mid_request or op in RETRY_SAFE_OPS
                if attempt >= attempts or not replayable:
                    raise
                time.sleep(self.retry.delay(attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self, op: str, _deadline: Optional[float], fields: Mapping
    ) -> dict:
        payload = {"op": op, **{k: v for k, v in fields.items() if v is not None}}
        deadline = _deadline if _deadline is not None else self.timeout
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(deadline)
        try:
            try:
                sock.connect(self.socket_path)
            except socket.timeout as exc:
                raise ServerUnavailableError(
                    f"no connection to {self.socket_path} within "
                    f"{deadline:g}s: {exc}",
                    mid_request=False,
                ) from exc
            except OSError as exc:
                # Refused / socket file missing / reset during the
                # handshake: the server is down or restarting.
                raise ServerUnavailableError(
                    f"cannot reach service at {self.socket_path}: {exc}",
                    mid_request=False,
                ) from exc
            try:
                sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
                line = self._read_line(sock)
            except socket.timeout as exc:
                # The server is *reachable* but slow — not an
                # availability failure; a blind retry would stack more
                # load on a struggling server.
                raise ServiceError(
                    f"no response from {self.socket_path} within {deadline:g}s"
                ) from exc
            except OSError as exc:
                raise ServerUnavailableError(
                    f"connection to {self.socket_path} lost mid-request: {exc}",
                    mid_request=True,
                ) from exc
        finally:
            sock.close()
        try:
            response = json.loads(line)
            if not isinstance(response, dict):
                raise ValueError("response must be a JSON object")
        except (json.JSONDecodeError, ValueError) as exc:
            raise MalformedReplyError(
                f"malformed response from {self.socket_path}: {exc}"
            ) from exc
        if not response.get("ok"):
            message = response.get("error", "unknown service error")
            if response.get("error_type") == "queue_full":
                raise QueueFullError(
                    message, float(response.get("retry_after", 1.0))
                )
            raise ServiceError(message)
        return response

    def _read_line(self, sock: socket.socket) -> bytes:
        chunks: list[bytes] = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        if not chunks:
            # EOF with no data: the server accepted the connection and
            # hung up — gone (or shedding) between accept and reply.
            raise ServerUnavailableError(
                f"{self.socket_path} closed the connection before a "
                f"response arrived",
                mid_request=True,
            )
        return b"".join(chunks)

    # -- operations ---------------------------------------------------------

    def ping(self) -> int:
        """Round-trip check; returns the server pid."""
        return self.request("ping")["pid"]

    def submit(
        self,
        source: Optional[str] = None,
        *,
        workload: Optional[str] = None,
        params: Optional[Mapping[str, int]] = None,
        smoke: bool = False,
        n_pes: int = 1,
        engine: str = "closure",
        executor: str = "pool",
        seed: Optional[int] = None,
        trace: bool = False,
        timeout: Optional[float] = None,
        filename: Optional[str] = None,
        fallback_engine: Optional[str] = None,
        max_attempts: Optional[int] = None,
    ) -> str:
        """Submit a job; returns its job id immediately.

        ``fallback_engine`` opts into graceful degradation (the result
        row is marked ``degraded`` if the fallback ran); ``max_attempts``
        overrides the scheduler's retry budget for this job.
        """
        return self.request(
            "submit",
            source=source,
            workload=workload,
            params=dict(params) if params else None,
            smoke=smoke or None,
            n_pes=n_pes,
            engine=engine,
            executor=executor,
            seed=seed,
            trace=trace or None,
            timeout=timeout,
            filename=filename,
            fallback_engine=fallback_engine,
            max_attempts=max_attempts,
        )["job_id"]

    def status(self, job_id: str) -> dict:
        return self.request("status", job_id=job_id)["job"]

    def wait(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """Block until the job is terminal; returns its description.

        ``timeout`` defaults to the client's timeout and is enforced
        server-side (the socket deadline gets extra slack), so the
        server's "timed out waiting" error — which names the job's
        current state — always arrives before the socket gives up.
        """
        timeout = timeout if timeout is not None else self.timeout
        return self.request(
            "wait",
            job_id=job_id,
            timeout=timeout,
            _deadline=timeout + _SOCKET_SLACK,
        )["job"]

    def result(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """Wait for the job and return its ``lolbench``-row result,
        raising :class:`ServiceError` if it did not complete."""
        job = self.wait(job_id, timeout)
        if job["state"] != "done":
            raise ServiceError(
                f"{job_id} finished as {job['state']}: "
                f"{job.get('error', 'no error recorded')}"
            )
        return job["result"]

    def cancel(self, job_id: str) -> bool:
        return self.request("cancel", job_id=job_id)["cancelled"]

    def workloads(self) -> list[str]:
        return self.request("workloads")["workloads"]

    def stats(self) -> dict:
        return self.request("stats")["stats"]

    def metrics(self) -> str:
        """Server-side metric registry in Prometheus text exposition
        format (see :func:`repro.obs.render_prometheus`)."""
        return self.request("metrics")["metrics"]

    def shutdown(self) -> None:
        self.request("shutdown")
