"""Synchronous client for the execution service.

Speaks the newline-delimited JSON protocol of
:mod:`repro.service.server` over a unix-domain socket.  Each request
opens its own connection, so one client object is safe to share across
threads and a long ``wait`` never head-of-line-blocks other calls.
"""

from __future__ import annotations

import json
import socket
from typing import Mapping, Optional

from .scheduler import ServiceError

#: Extra slack (seconds) on the socket deadline beyond a wait timeout,
#: so the server's own timeout error arrives before the socket's.
_SOCKET_SLACK = 10.0


class ServiceClient:
    """Blocking unix-socket client; raises :class:`ServiceError` on
    protocol-level failures (``ok: false`` responses)."""

    def __init__(self, socket_path: str, *, timeout: float = 60.0) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def request(self, op: str, *, _deadline: Optional[float] = None, **fields) -> dict:
        """One request/response round trip."""
        payload = {"op": op, **{k: v for k, v in fields.items() if v is not None}}
        deadline = _deadline if _deadline is not None else self.timeout
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(deadline)
                sock.connect(self.socket_path)
                sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
                line = self._read_line(sock)
        except socket.timeout as exc:
            raise ServiceError(
                f"no response from {self.socket_path} within {deadline:g}s"
            ) from exc
        except OSError as exc:
            raise ServiceError(
                f"cannot reach service at {self.socket_path}: {exc}"
            ) from exc
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"malformed response: {exc}") from exc
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown service error"))
        return response

    @staticmethod
    def _read_line(sock: socket.socket) -> bytes:
        chunks: list[bytes] = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        if not chunks:
            raise ServiceError("connection closed before a response arrived")
        return b"".join(chunks)

    # -- operations ---------------------------------------------------------

    def ping(self) -> int:
        """Round-trip check; returns the server pid."""
        return self.request("ping")["pid"]

    def submit(
        self,
        source: Optional[str] = None,
        *,
        workload: Optional[str] = None,
        params: Optional[Mapping[str, int]] = None,
        smoke: bool = False,
        n_pes: int = 1,
        engine: str = "closure",
        executor: str = "pool",
        seed: Optional[int] = None,
        trace: bool = False,
        timeout: Optional[float] = None,
        filename: Optional[str] = None,
    ) -> str:
        """Submit a job; returns its job id immediately."""
        return self.request(
            "submit",
            source=source,
            workload=workload,
            params=dict(params) if params else None,
            smoke=smoke or None,
            n_pes=n_pes,
            engine=engine,
            executor=executor,
            seed=seed,
            trace=trace or None,
            timeout=timeout,
            filename=filename,
        )["job_id"]

    def status(self, job_id: str) -> dict:
        return self.request("status", job_id=job_id)["job"]

    def wait(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """Block until the job is terminal; returns its description.

        ``timeout`` defaults to the client's timeout and is enforced
        server-side (the socket deadline gets extra slack), so the
        server's "timed out waiting" error — which names the job's
        current state — always arrives before the socket gives up.
        """
        timeout = timeout if timeout is not None else self.timeout
        return self.request(
            "wait",
            job_id=job_id,
            timeout=timeout,
            _deadline=timeout + _SOCKET_SLACK,
        )["job"]

    def result(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """Wait for the job and return its ``lolbench``-row result,
        raising :class:`ServiceError` if it did not complete."""
        job = self.wait(job_id, timeout)
        if job["state"] != "done":
            raise ServiceError(
                f"{job_id} finished as {job['state']}: "
                f"{job.get('error', 'no error recorded')}"
            )
        return job["result"]

    def cancel(self, job_id: str) -> bool:
        return self.request("cancel", job_id=job_id)["cancelled"]

    def workloads(self) -> list[str]:
        return self.request("workloads")["workloads"]

    def stats(self) -> dict:
        return self.request("stats")["stats"]

    def shutdown(self) -> None:
        self.request("shutdown")
