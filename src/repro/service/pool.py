"""Warm process-worker pool: the persistent counterpart of
:func:`repro.shmem.runtime_procs.run_spmd_procs`.

The cold process executor pays one full ``spawn`` (a fresh Python
interpreter importing :mod:`repro` and :mod:`numpy`) per PE per
``run_lolcode`` call, plus a new ``SharedMemory`` segment per call —
spawn/exec cost dominates small kernels and every ``lolbench`` sweep
cell.  This module keeps the workers alive instead:

* **workers** are spawned once and then accept successive jobs over a
  per-worker duplex pipe; each job message carries the picklable
  ``pe_main`` (the launcher's ``partial(_pe_main, source, ...)``), so a
  worker's per-process compile caches stay warm across jobs of the same
  source;
* **synchronisation primitives** (barriers for every party count up to
  the pool size, a fixed bank of symbol locks, the epoch counter, the
  atomics mutex) are created with the pool and inherited by workers at
  spawn time — multiprocessing primitives cannot travel over pipes, so
  they must pre-exist; the per-job world is rebuilt around them;
* **shared-memory segments** are pooled and recycled by power-of-two
  size class: a job acquires the smallest free segment that fits its
  symmetric plan (creating one only on a size-class miss) and returns
  it on completion;
* **crashed workers are replaced transparently**: a worker process that
  dies (mid-job or idle) fails at most the job it was running — the
  pool respawns its slot before the next job, and the job error names
  the dead rank.

One pool runs one job at a time (``run`` is serialised by a mutex): the
barrier/lock bank is a single set, and an N-worker pool running one
N-PE job is the right occupancy anyway.  Concurrency above the pool is
the scheduler's business (:mod:`repro.service.scheduler`), which also
keeps ``executor="thread"`` jobs flowing in parallel with pool jobs.

``run_pooled`` + ``get_default_pool`` expose a lazily created,
automatically grown default pool — that is what the launcher's
``executor="pool"`` uses, returning the same
:class:`~repro.shmem.runtime_threads.SpmdResult` as every other
executor.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import threading
import time
import traceback
from contextlib import nullcontext
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from multiprocessing import shared_memory
from typing import Callable, Optional, Sequence

import numpy as np

from .. import obs as _obs
from ..faults import InjectedFaultError, inject
from ..lang.errors import LolParallelError
from ..shmem.api import DEFAULT_BARRIER_TIMEOUT, ShmemContext
from ..shmem.heap import SymmetricPlan
from ..shmem.runtime_procs import (
    _ITEM,
    _ProcEpochBox,
    _WorldSpec,
    _build_world,
    plan_layout,
)
from ..shmem.runtime_threads import SpmdResult
from ..shmem.trace import OpTrace, merge_traces

# Registry-mirrored pool counters: the per-instance attributes below
# (jobs_run, workers_replaced, ...) stay canonical for callers holding a
# pool object; these mirror the same increments into the process-wide
# registry so `lolserve stats` / the `metrics` op read identical numbers.
_REG = _obs.get_registry()
_M_JOBS = _REG.counter("lol_pool_jobs_total", "SPMD jobs run on the warm pool")
_M_REPLACED = _REG.counter(
    "lol_pool_workers_replaced_total", "Pool workers respawned after death"
)
_M_REBUILDS = _REG.counter(
    "lol_pool_rebuilds_total", "Full pool rebuilds (primitive bank reset)"
)
_M_SEG_CREATED = _REG.counter(
    "lol_pool_segments_created_total", "Shared-memory segments allocated"
)
_M_SEG_REUSED = _REG.counter(
    "lol_pool_segments_reused_total", "Shared-memory segments recycled"
)

#: Symbol-lock bank size.  ``IM SHARIN IT`` symbols map onto these in
#: plan order; programs needing more are rejected with a clear error.
DEFAULT_MAX_LOCKS = 32

#: Smallest segment size class (bytes) — tiny plans share one class.
_MIN_SEGMENT = 4096


class WorkerCrashError(LolParallelError):
    """A worker process died (or corrupted its reply protocol) mid-job.

    The pool has already rebuilt itself by the time this is raised, so a
    fresh attempt runs against fresh workers — which is why it is the
    canonical *retryable* pool failure
    (:func:`repro.faults.is_retryable`): the job itself was never the
    problem.
    """

    retryable = True


class StragglerTimeoutError(LolParallelError):
    """PE(s) went silent past the drain deadline and were replaced.

    Deliberately **not** retryable by default: a straggler is just as
    likely a program-level deadlock (which a retry would faithfully
    reproduce, burning another timeout) as an infrastructure hiccup.
    """

    retryable = False


def _size_class(nbytes: int) -> int:
    """Round a byte count up to its power-of-two recycling class."""
    size = _MIN_SEGMENT
    while size < nbytes:
        size *= 2
    return size


class SegmentPool:
    """Shared-memory segments recycled by power-of-two size class."""

    def __init__(self) -> None:
        self._free: dict[int, list[shared_memory.SharedMemory]] = {}
        self._all: dict[str, shared_memory.SharedMemory] = {}
        self.created = 0
        self.reused = 0

    def acquire(self, nbytes: int) -> shared_memory.SharedMemory:
        cls = _size_class(nbytes)
        bucket = self._free.get(cls)
        if bucket:
            self.reused += 1
            _M_SEG_REUSED.inc()
            return bucket.pop()
        self.created += 1
        _M_SEG_CREATED.inc()
        shm = shared_memory.SharedMemory(create=True, size=cls)
        self._all[shm.name] = shm
        return shm

    def release(self, shm: shared_memory.SharedMemory) -> None:
        self._free.setdefault(shm.size, []).append(shm)

    def close(self) -> None:
        for shm in self._all.values():
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - platform dependent
                pass
        self._free.clear()
        self._all.clear()


@dataclass(frozen=True, slots=True)
class _PoolJob:
    """One PE's share of a pooled SPMD job (sent over the worker pipe)."""

    job_id: int
    pe: int
    spec: _WorldSpec
    pe_main: Callable[[ShmemContext], object]
    seed: Optional[int]
    stdin_lines: Optional[Sequence[str]]
    trace: bool
    #: Observability mode ("trace,metrics", …) or "" when disarmed.
    #: Carried per job because warm workers outlive any later arming in
    #: the parent — the spawn-time LOL_OBS environment is not enough.
    obs: str = ""


def _pool_worker_main(index, conn, barriers, locks, epoch_value, atomic_lock):
    """Worker process main loop: attach, run, reply, repeat.

    The pool-wide primitives arrive once, at spawn; each job message
    then only has to carry the (picklable) world *layout* and program.
    A LOLCODE-level failure is marshalled back as an ``error`` reply and
    the worker lives on — only process death costs a respawn.
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "stop":
            return
        job: _PoolJob = msg[1]
        if job.obs:
            _obs.ensure_armed(job.obs)
        barrier = barriers[job.spec.n_pes]
        shm = None
        world = None
        try:
            lock_map = {
                name: locks[i] for i, name in enumerate(job.spec.lock_names)
            }
            world, shm = _build_world(
                job.spec, barrier, lock_map, epoch_value, atomic_lock
            )
            ctx = ShmemContext(
                world,
                job.pe,
                seed=job.seed,
                stdin_lines=job.stdin_lines,
                trace=job.trace,
            )
            ret = job.pe_main(ctx)
            # Final wire field: this worker's drained observability
            # payload (spans + metrics delta), or None when disarmed.
            reply = (
                "ok", job.job_id, job.pe, ctx.output, ret, ctx.trace,
                _obs.drain(),
            )
            # Worker-side injection site: this process was spawned with
            # the parent's environment, so an exported LOL_FAULTS plan
            # armed it at import time.  Failing *here* — after the work,
            # before the reply — exercises the parent's real recovery
            # machinery (death detection, protocol hardening, respawn).
            rule = inject("pool.reply", rank=job.pe, job=job.job_id)
            if rule is not None:
                if rule.kind == "kill":
                    os._exit(113)
                elif rule.kind == "delay":
                    time.sleep(rule.delay_s)
                elif rule.kind == "garbage":
                    reply = ("garbage", b"\xfe\xed\xfa\xce")
            conn.send(reply)
        except BaseException as exc:  # noqa: BLE001 - marshalled to parent
            # Abort *before* replying: the parent resets the barrier for
            # the next job once every PE has replied, so an abort landing
            # after our reply could arrive post-reset and re-break it.
            try:
                barrier.abort()
            except Exception:
                pass
            # Free any symbol locks this PE still holds.  The lock bank
            # is persistent — unlike the cold executor's per-call locks,
            # a lock left acquired here would poison every later job
            # that maps the same slot (e.g. erroring out of an
            # ``IM SRSLY MESIN WIF`` region).
            if world is not None:
                for name in job.spec.lock_names:
                    try:
                        if world.locks.owner(name) == job.pe:
                            world.locks.release(name, job.pe)
                    except Exception:
                        pass
            try:
                conn.send(
                    (
                        "error",
                        job.job_id,
                        job.pe,
                        traceback.format_exc(),
                        repr(exc),
                        None,
                        _obs.drain(),
                    )
                )
            except OSError:
                return
        finally:
            if shm is not None:
                shm.close()


@dataclass
class _Worker:
    index: int
    process: mp.process.BaseProcess
    conn: object  # parent end of the duplex pipe


class WorkerPool:
    """A fixed-size pool of warm SPMD worker processes.

    ``size`` bounds the PE count of any one job; ``run`` executes one
    job at a time (see the module docstring for why).
    """

    def __init__(
        self,
        size: int,
        *,
        max_locks: int = DEFAULT_MAX_LOCKS,
        start_method: str = "spawn",
    ) -> None:
        if size < 1:
            raise LolParallelError(f"worker pool needs at least 1 PE, got {size}")
        self.size = size
        self.max_locks = max_locks
        self._mpctx = mp.get_context(start_method)
        self._mutex = threading.Lock()
        self._closed = False
        self._job_counter = 0
        self.jobs_run = 0
        self.workers_replaced = 0
        self.rebuilds = 0
        self.segments = SegmentPool()
        self._make_primitives()
        self._workers = [self._spawn(i) for i in range(size)]

    def _make_primitives(self) -> None:
        """(Re)create the shared synchronisation bank the workers
        inherit at spawn: barriers for every party count, the symbol
        lock bank, the epoch counter, and the atomics mutex."""
        self._epoch_value = self._mpctx.Value("i", 0)
        epoch_box = _ProcEpochBox(self._epoch_value)
        self._barriers = {
            n: self._mpctx.Barrier(n, action=epoch_box.increment)
            for n in range(1, self.size + 1)
        }
        self._locks = tuple(self._mpctx.Lock() for _ in range(self.max_locks))
        self._atomic_lock = self._mpctx.Lock()

    # -- worker lifecycle ---------------------------------------------------

    def _spawn(self, index: int) -> _Worker:
        rule = inject("pool.worker_spawn", rank=index)
        if rule is not None and rule.kind == "fail":
            raise InjectedFaultError(rule)
        parent_conn, child_conn = self._mpctx.Pipe(duplex=True)
        process = self._mpctx.Process(
            target=_pool_worker_main,
            args=(
                index,
                child_conn,
                self._barriers,
                self._locks,
                self._epoch_value,
                self._atomic_lock,
            ),
            name=f"pool-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(index, process, parent_conn)

    @staticmethod
    def _terminate(worker: _Worker) -> None:
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - last resort
                worker.process.kill()
                worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    def _replace(self, index: int) -> _Worker:
        """Respawn one worker slot onto the *existing* primitive bank.

        Only safe for a worker that died **idle** (between jobs it holds
        no lock, no barrier slot): mid-job deaths must go through
        :meth:`_rebuild` instead.
        """
        self._terminate(self._workers[index])
        self.workers_replaced += 1
        _M_REPLACED.inc()
        self._workers[index] = self._spawn(index)
        return self._workers[index]

    def _rebuild(self) -> None:
        """Tear down every worker *and* the shared primitive bank, then
        respawn.  Required after a mid-job death or a straggler
        termination: a process killed inside a critical section leaves
        an mp lock held (or the atomics mutex, or barrier internals)
        with no owner to release it, silently poisoning every later job
        — so warm-but-possibly-poisoned primitives are traded for a
        cold restart.  Pooled segments are plain memory and survive.
        """
        for worker in self._workers:
            self._terminate(worker)
        self._make_primitives()
        self.rebuilds += 1
        _M_REBUILDS.inc()
        self._workers = [self._spawn(i) for i in range(self.size)]

    def _ensure_alive(self, index: int) -> _Worker:
        worker = self._workers[index]
        if not worker.process.is_alive():
            worker = self._replace(index)
        return worker

    @property
    def alive(self) -> bool:
        return not self._closed

    def worker_pids(self) -> list[int]:
        """Current worker process ids (stable across jobs unless a
        worker crashed and was replaced — the warmness observable)."""
        return [w.process.pid for w in self._workers]

    def workers_alive(self) -> int:
        """How many worker processes are currently alive (the liveness
        gauge: equals ``size`` when healthy)."""
        return sum(1 for w in self._workers if w.process.is_alive())

    # -- job execution ------------------------------------------------------

    def run(
        self,
        pe_main: Callable[[ShmemContext], object],
        n_pes: int,
        plan: SymmetricPlan,
        *,
        seed: Optional[int] = None,
        stdin_lines: Optional[Sequence[Sequence[str]]] = None,
        trace: bool = False,
        barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
    ) -> SpmdResult:
        """Execute ``pe_main(ctx)`` on ``n_pes`` warm workers.

        Same contract (and same :class:`SpmdResult`) as
        :func:`~repro.shmem.runtime_procs.run_spmd_procs`, including the
        numeric-symmetric-data restriction — the worlds are built by the
        same code.
        """
        with self._mutex:
            if self._closed:
                raise LolParallelError("worker pool is closed")
            if n_pes < 1:
                raise LolParallelError(f"need at least 1 PE, got {n_pes}")
            if n_pes > self.size:
                raise LolParallelError(
                    f"job needs {n_pes} PEs but the pool has {self.size} "
                    f"workers (grow the pool or use executor='process')"
                )
            return self._run_locked(
                pe_main,
                n_pes,
                plan,
                seed=seed,
                stdin_lines=stdin_lines,
                trace=trace,
                barrier_timeout=barrier_timeout,
            )

    def _run_locked(
        self,
        pe_main,
        n_pes,
        plan,
        *,
        seed,
        stdin_lines,
        trace,
        barrier_timeout,
    ) -> SpmdResult:
        layouts, data_elems = plan_layout(plan, n_pes)
        lock_names = tuple(lay.name for lay in layouts if lay.has_lock)
        if len(lock_names) > self.max_locks:
            raise LolParallelError(
                f"program declares {len(lock_names)} shared locks but the "
                f"pool's lock bank holds {self.max_locks}"
            )
        exchange_offset = data_elems
        owners_offset = data_elems + n_pes
        total_elems = owners_offset + max(1, len(lock_names))
        shm = self.segments.acquire(max(1, total_elems * _ITEM))
        try:
            # Recycled segments carry the previous job's bytes: zero the
            # region this plan addresses and free every lock-owner slot.
            np.ndarray((total_elems,), dtype="int64", buffer=shm.buf)[:] = 0
            owners = np.ndarray(
                (max(1, len(lock_names)),),
                dtype="int64",
                buffer=shm.buf,
                offset=owners_offset * _ITEM,
            )
            owners[:] = -1
            self._epoch_value.value = 0
            spec = _WorldSpec(
                n_pes=n_pes,
                shm_name=shm.name,
                symbols=tuple(layouts),
                lock_names=lock_names,
                exchange_offset=exchange_offset,
                owners_offset=owners_offset,
                barrier_timeout=barrier_timeout,
            )
            self._job_counter += 1
            job_id = self._job_counter
            rt = _obs.ACTIVE
            obs_mode = rt.mode if rt is not None else ""
            _job_span = (
                rt.tracer.span(
                    "pool", f"job{job_id}", args={"n_pes": n_pes}
                )
                if rt is not None and rt.trace_on
                else nullcontext()
            )
            dispatched = 0
            with _job_span:
              try:
                  for pe in range(n_pes):
                      worker = self._ensure_alive(pe)
                      rule = inject("pool.job_send", rank=pe, job=job_id)
                      if rule is not None:
                          if rule.kind == "drop":
                              # Simulated dispatch failure: the except
                              # clause below rebuilds (partially
                              # dispatched siblings are running) and the
                              # typed error names the injected site.
                              raise InjectedFaultError(rule)
                          if rule.kind == "kill":
                              # Kill the target *before* the send so the
                              # BrokenPipe replace-and-resend path below
                              # runs deterministically.
                              worker.process.terminate()
                              worker.process.join(timeout=5.0)
                      job = _PoolJob(
                          job_id,
                          pe,
                          spec,
                          pe_main,
                          seed,
                          stdin_lines[pe] if stdin_lines else None,
                          trace,
                          obs_mode,
                      )
                      try:
                          worker.conn.send(("job", job))
                      except (BrokenPipeError, OSError):
                          # Died between the liveness check and the send.
                          worker = self._replace(pe)
                          worker.conn.send(("job", job))
                      if rt is not None and rt.trace_on:
                          rt.tracer.instant(
                              "pool", f"send-pe{pe}", args={"job": job_id}
                          )
                      dispatched += 1
              except Exception:
                  # Dispatch died partway: workers 0..dispatched-1 are
                  # already running this job and hold views into the
                  # segment.  Rebuild the pool (terminating releases their
                  # mappings, and they may be mid-critical-section) before
                  # the finally clause recycles the segment.
                  self._rebuild()
                  raise
              result = self._collect(job_id, n_pes, plan, trace, barrier_timeout)
              self.jobs_run += 1
              _M_JOBS.inc()
              return result
        finally:
            self.segments.release(shm)

    def _collect(
        self, job_id: int, n_pes: int, plan, trace: bool, barrier_timeout: float
    ) -> SpmdResult:
        rt = _obs.ACTIVE
        results: dict[int, tuple] = {}
        errors: list[tuple] = []
        error_pes: set[int] = set()
        dead_pes: set[int] = set()
        drain_timeout = barrier_timeout * 2
        deadline = time.monotonic() + drain_timeout

        def pending() -> list[int]:
            return [
                pe
                for pe in range(n_pes)
                if pe not in results and pe not in error_pes and pe not in dead_pes
            ]

        def mark_dead(pe: int, detail: str, brief: str) -> None:
            # Hard crash (or protocol corruption): the worker can never
            # reply usefully.  Unblock its siblings (they fail with
            # barrier-broken); the slot is respawned by the post-drain
            # rebuild.
            dead_pes.add(pe)
            errors.append(("error", job_id, pe, detail, brief, None, None))
            try:
                self._barriers[n_pes].abort()
            except Exception:
                pass

        def mark_crashed(pe: int) -> None:
            mark_dead(
                pe,
                f"worker process died "
                f"(exitcode {self._workers[pe].process.exitcode})",
                "WorkerCrash",
            )

        # The deadline is a *silence* window: every reply pushes it out,
        # so staggered-but-healthy PEs are not cut off at a fixed total.
        while pending() and time.monotonic() < deadline:
            pend = pending()
            # One wakeup across every pending pipe (and process
            # sentinel, so a death wakes us too) instead of a serial
            # poll(0.002) per worker per sweep.
            waitables = [self._workers[pe].conn for pe in pend]
            waitables += [self._workers[pe].process.sentinel for pe in pend]
            mp_connection.wait(
                waitables, timeout=min(0.2, deadline - time.monotonic())
            )
            progressed = False
            for pe in pend:
                worker = self._workers[pe]
                try:
                    has_msg = worker.conn.poll(0)
                except (EOFError, OSError):
                    has_msg = True  # EOF is "readable"; recv classifies it
                if has_msg:
                    progressed = True
                    try:
                        msg = worker.conn.recv()
                    except (EOFError, OSError):
                        # A dead worker's pipe reads as EOF (poll() keeps
                        # returning True) — classify it here, not via a
                        # liveness check that readability would shadow.
                        mark_crashed(pe)
                        continue
                    if (
                        not isinstance(msg, tuple)
                        or len(msg) != 7
                        or msg[0] not in ("ok", "error")
                    ):
                        # Garbage on the pipe: the worker is alive but
                        # its protocol state is untrusted — treat it
                        # like a crash (rebuild replaces it) instead of
                        # letting a malformed tuple raise out of the
                        # drain loop and wedge the job.
                        mark_dead(
                            pe,
                            f"worker sent a malformed reply "
                            f"({type(msg).__name__}: {msg!r:.80})",
                            "MalformedReply",
                        )
                        continue
                    if msg[1] != job_id:
                        continue  # stale reply from an abandoned job
                    if msg[0] == "error":
                        error_pes.add(pe)
                        errors.append(msg)
                    else:
                        results[pe] = msg
                        if rt is not None and rt.trace_on:
                            rt.tracer.instant(
                                "pool", f"reply-pe{pe}", args={"job": job_id}
                            )
                elif not worker.process.is_alive():
                    progressed = True
                    mark_crashed(pe)
            if progressed:
                deadline = time.monotonic() + drain_timeout
        stragglers = sorted(pending())
        if stragglers:
            try:
                self._barriers[n_pes].abort()
            except Exception:
                pass
        if dead_pes or stragglers:
            # A worker that died (or was terminated) *mid-job* may have
            # been inside a lock/atomic/barrier critical section; the
            # shared primitive bank cannot be trusted any more.  Rebuild
            # it wholesale — only idle deaths get the cheap single-slot
            # respawn (see _ensure_alive).
            self.workers_replaced += len(dead_pes) + len(stragglers)
            _M_REPLACED.inc(len(dead_pes) + len(stragglers))
            self._rebuild()
        elif errors:
            # Soft failures only (workers alive, locks self-released):
            # the aborted barrier just needs a reset to be reusable.
            try:
                self._barriers[n_pes].reset()
            except Exception:  # pragma: no cover - defensive
                pass
        if errors:
            # Prefer a root-cause error over secondary barrier-broken ones.
            for failed in errors:
                _obs.absorb(failed[6])
            errors.sort(key=lambda e: ("barrier broken" in str(e[4]), e[2]))
            _, _, pe, tb, brief, _, _ = errors[0]
            # Worker death/corruption is the pool's retryable failure
            # class (the rebuild already produced fresh workers); a
            # LOLCODE-level error stays a plain LolParallelError — a
            # deterministic program fails identically on every retry.
            exc_cls = WorkerCrashError if dead_pes else LolParallelError
            raise exc_cls(
                f"PE {pe} failed in pool executor: {brief}\n{tb}"
            )
        if stragglers:
            raise StragglerTimeoutError(
                f"PE(s) {stragglers} did not report a result within "
                f"{drain_timeout:.1f}s of the last completion (completed: "
                f"{sorted(results)}); the worker pool was rebuilt"
            )
        outputs = [results[pe][3] for pe in range(n_pes)]
        returns = [results[pe][4] for pe in range(n_pes)]
        traces: list[Optional[OpTrace]] = [results[pe][5] for pe in range(n_pes)]
        for pe in range(n_pes):
            _obs.absorb(results[pe][6])
        merged = merge_traces(traces) if trace else None
        return SpmdResult(
            n_pes=n_pes,
            outputs=outputs,
            returns=returns,
            trace=merged,
            races=[],
            heap_symbols=sorted(plan.entries),
        )

    # -- teardown -----------------------------------------------------------

    def close(self) -> None:
        """Stop every worker and release all pooled segments."""
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            for worker in self._workers:
                try:
                    worker.conn.send(("stop",))
                except OSError:
                    pass
            for worker in self._workers:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=2.0)
                try:
                    worker.conn.close()
                except OSError:
                    pass
            self.segments.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# The default pool behind ``executor="pool"``.
# ---------------------------------------------------------------------------

_default_pool: Optional[WorkerPool] = None
_default_pool_mutex = threading.Lock()


def _pool_liveness_collector() -> None:
    """Registry collector: worker-liveness gauges for the default pool
    (ROADMAP item 3's load-shedding input).  Runs on snapshot/render."""
    pool = _default_pool
    if pool is None:
        # No pool was ever created in this process (e.g. inside a pool
        # worker): stay silent rather than emit misleading zeros.
        return
    size_g = _REG.gauge("lol_pool_size", "Configured worker count")
    alive_g = _REG.gauge(
        "lol_pool_workers_alive", "Worker processes currently alive"
    )
    if not pool.alive:
        size_g.set(0)
        alive_g.set(0)
        return
    size_g.set(pool.size)
    alive_g.set(pool.workers_alive())


_REG.register_collector(_pool_liveness_collector)


def get_default_pool(min_size: int = 1) -> WorkerPool:
    """The process-wide warm pool, created lazily and grown on demand.

    Growing rebuilds the pool (the barrier bank is sized at spawn and
    multiprocessing primitives cannot be shipped to live workers), so
    steady-state callers should converge on their peak PE count once.
    """
    global _default_pool
    with _default_pool_mutex:
        pool = _default_pool
        if pool is None or not pool.alive or pool.size < min_size:
            if pool is not None:
                pool.close()
            pool = WorkerPool(max(min_size, pool.size if pool else 1))
            _default_pool = pool
        return pool


def shutdown_default_pool() -> None:
    """Tear down the default pool (atexit hook; also used by tests)."""
    global _default_pool
    with _default_pool_mutex:
        if _default_pool is not None:
            _default_pool.close()
            _default_pool = None


atexit.register(shutdown_default_pool)


def run_pooled(
    pe_main: Callable[[ShmemContext], object],
    n_pes: int,
    plan: SymmetricPlan,
    *,
    seed: Optional[int] = None,
    stdin_lines: Optional[Sequence[Sequence[str]]] = None,
    trace: bool = False,
    barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
) -> SpmdResult:
    """``run_spmd_procs`` drop-in running on the default warm pool.

    Retries once if the pool it grabbed was concurrently rebuilt (a
    sibling caller growing the default pool closes the old one).
    """
    last_exc: Optional[LolParallelError] = None
    for _ in range(3):
        pool = get_default_pool(n_pes)
        try:
            return pool.run(
                pe_main,
                n_pes,
                plan,
                seed=seed,
                stdin_lines=stdin_lines,
                trace=trace,
                barrier_timeout=barrier_timeout,
            )
        except LolParallelError as exc:
            if "pool is closed" not in str(exc):
                raise
            last_exc = exc
    raise last_exc
