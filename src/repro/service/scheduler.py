"""Asyncio job scheduler for the execution service.

One :class:`Scheduler` owns a FIFO :class:`asyncio.Queue` drained by
``max_concurrency`` worker tasks — bounded concurrency and first-come
first-served fairness fall out of that shape directly.  Each job runs
``run_lolcode`` on a thread (:func:`asyncio.to_thread`) under
:func:`asyncio.wait_for`, so a per-job timeout cannot stall the queue.

Compilation is **single-flight**: ``run_lolcode`` goes through the
process-wide compile caches (:func:`repro.interp.compile_closures_cached`
/ :func:`repro.compiler.compile_python_cached`), which serialise
concurrent identical keys — N simultaneous submissions of one source
compile it once, the other N-1 block briefly and reuse the warm entry.

Result payloads mirror ``lolbench`` rows (workload / engine / executor /
n_pes / params / seconds / checker), so a service consumer and a sweep
consumer read the same schema.
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..lang.errors import LolError

#: Fallback per-job timeout (seconds) when a submission does not set one.
DEFAULT_JOB_TIMEOUT = 120.0


class ServiceError(Exception):
    """A request-level failure (bad submission, unknown job, ...)."""


class JobState(str, enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    ERROR = "error"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to execute one submission."""

    source: str
    n_pes: int = 1
    engine: str = "closure"
    executor: str = "pool"
    seed: Optional[int] = None
    trace: bool = False
    filename: str = "<service>"
    workload: Optional[str] = None
    params: Mapping[str, int] = field(default_factory=dict)
    timeout: Optional[float] = None

    @classmethod
    def from_request(cls, payload: Mapping) -> "JobSpec":
        """Validate and resolve a wire-format submission.

        Submissions carry either raw ``source`` or a registry
        ``workload`` name (plus ``params`` overrides); a workload job
        gets its source generated here and its checker run on the
        result, exactly like a ``lolbench`` sweep cell.

        ``engine="c"`` jobs may be submitted with the default ``"pool"``
        executor; they resolve to ``"process"`` (native PEs are always
        OS processes) while keeping warm-job economics through the
        native build cache, and they refuse ``trace``.
        """
        from ..launcher import ENGINES, EXECUTORS

        source = payload.get("source")
        workload = payload.get("workload")
        params = dict(payload.get("params") or {})
        if (source is None) == (workload is None):
            raise ServiceError(
                "submit needs exactly one of 'source' or 'workload'"
            )
        if workload is not None:
            from ..workloads import WorkloadError, get_workload

            try:
                w = get_workload(workload)
                params = dict(
                    w.bind_params(params, smoke=bool(payload.get("smoke")))
                )
                source = w.source(params)
            except WorkloadError as exc:
                raise ServiceError(str(exc)) from exc
        engine = payload.get("engine", "closure")
        executor = payload.get("executor", "pool")
        if engine not in ENGINES:
            raise ServiceError(
                f"unknown engine {engine!r} (choose from {ENGINES})"
            )
        if executor not in EXECUTORS:
            raise ServiceError(
                f"unknown executor {executor!r} (choose from {EXECUTORS})"
            )
        if engine == "c":
            # Native jobs always execute as OS processes — the warm
            # pool's Python workers cannot host a native binary, so a
            # pool submission (including the default) resolves to the
            # process executor here and bypasses the scheduler's pool
            # gate.  Warm-job economics survive anyway: the on-disk
            # build cache reuses one binary across every job with the
            # same (source, n_pes).
            if payload.get("trace"):
                raise ServiceError(
                    "engine 'c' does not support op tracing; submit with "
                    "engine 'closure' or 'compiled' for traced runs"
                )
            if executor == "pool":
                executor = "process"
            elif executor not in ("process", "serial"):
                # Same loud-early refusal as trace: don't accept a job
                # that can only fail later inside a worker.
                raise ServiceError(
                    f"engine 'c' runs PEs as native OS processes; "
                    f"submit with executor 'process' (got {executor!r})"
                )
        n_pes = payload.get("n_pes", 1)
        if not isinstance(n_pes, int) or n_pes < 1:
            raise ServiceError(f"n_pes must be a positive integer, got {n_pes!r}")
        timeout = payload.get("timeout")
        if timeout is not None and not (
            isinstance(timeout, (int, float)) and timeout > 0
        ):
            raise ServiceError(f"timeout must be a positive number, got {timeout!r}")
        return cls(
            source=source,
            n_pes=n_pes,
            engine=engine,
            executor=executor,
            seed=payload.get("seed"),
            trace=bool(payload.get("trace", False)),
            filename=payload.get("filename")
            or (f"<workload:{workload}>" if workload else "<service>"),
            workload=workload,
            params=params,
            timeout=timeout,
        )


@dataclass
class Job:
    """One submission's lifecycle record."""

    job_id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[dict] = None
    error: Optional[str] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def describe(self) -> dict:
        """Wire-format job status (the ``status``/``wait`` payload)."""
        out = {
            "job_id": self.job_id,
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        return out


def execute_job(spec: JobSpec) -> dict:
    """Run one job synchronously; returns a ``lolbench``-row-shaped dict.

    Raises on infrastructure failures; LOLCODE/program failures are
    raised as :class:`~repro.lang.errors.LolError` and recorded by the
    scheduler as the job's error.
    """
    from ..launcher import run_lolcode

    t0 = time.perf_counter()
    result = run_lolcode(
        spec.source,
        spec.n_pes,
        executor=spec.executor,
        engine=spec.engine,
        seed=spec.seed,
        trace=spec.trace,
        filename=spec.filename,
    )
    elapsed = time.perf_counter() - t0
    row = {
        "workload": spec.workload or "<source>",
        "engine": spec.engine,
        "executor": spec.executor,
        "n_pes": spec.n_pes,
        "params": dict(spec.params),
        "seconds": round(elapsed, 6),
        "outputs": result.outputs,
        "output": result.output,
    }
    if spec.trace and result.trace is not None:
        row["trace"] = result.trace.summary()
    if spec.workload is not None:
        from ..workloads import get_workload

        try:
            problems = get_workload(spec.workload).check(
                result, spec.n_pes, dict(spec.params)
            )
        except Exception as exc:  # noqa: BLE001 - a checker tripping over
            # malformed output is a verification failure, not a crash
            problems = [f"checker raised {type(exc).__name__}: {exc}"]
        row["checker"] = "pass" if not problems else problems
    return row


class Scheduler:
    """FIFO queue + bounded worker tasks over :func:`execute_job`."""

    def __init__(
        self,
        *,
        max_concurrency: int = 2,
        default_timeout: float = DEFAULT_JOB_TIMEOUT,
        max_retained_jobs: int = 1000,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        self.max_concurrency = max_concurrency
        self.default_timeout = default_timeout
        self.max_retained_jobs = max_retained_jobs
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._jobs: Dict[str, Job] = {}
        #: terminal job ids in completion order, oldest first — the
        #: eviction queue that keeps a long-lived service's memory flat
        self._terminal_order: deque[str] = deque()
        self._ids = itertools.count(1)
        self._workers: list[asyncio.Task] = []
        #: pool-executor jobs serialise here *before* their timeout
        #: clock starts: the warm pool runs one job at a time, and a
        #: job must not be "timed out" for time spent queued behind
        #: sibling pool jobs it could never preempt.
        self._pool_gate = asyncio.Lock()
        self._running = 0
        self.peak_running = 0  # observability: max concurrent jobs seen

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        if self._workers:
            return
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"sched-worker-{i}")
            for i in range(self.max_concurrency)
        ]

    async def stop(self) -> None:
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []

    # -- client-facing operations -------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Enqueue a job (FIFO); returns its record immediately."""
        job = Job(job_id=f"job-{next(self._ids)}", spec=spec)
        self._jobs[job.job_id] = job
        self._queue.put_nowait(job)
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job id {job_id!r}") from None

    async def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state."""
        job = self.get(job_id)
        try:
            await asyncio.wait_for(job.done.wait(), timeout)
        except asyncio.TimeoutError:
            raise ServiceError(
                f"timed out waiting for {job_id} (state: {job.state.value})"
            ) from None
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running jobs cannot be revoked (their
        worker thread is already executing) and return ``False``."""
        job = self.get(job_id)
        if job.state is JobState.QUEUED:
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            job.done.set()
            self._retire(job)
            return True
        return False

    def _retire(self, job: Job) -> None:
        """Record a terminal job and evict the oldest terminal records
        beyond ``max_retained_jobs`` — a persistent service must not
        accumulate every result (with its full per-PE outputs) forever."""
        self._terminal_order.append(job.job_id)
        while len(self._terminal_order) > self.max_retained_jobs:
            self._jobs.pop(self._terminal_order.popleft(), None)

    def stats(self) -> dict:
        states = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            states[job.state.value] += 1
        return {
            "jobs": len(self._jobs),
            "states": states,
            "queued": self._queue.qsize(),
            "running": self._running,
            "peak_running": self.peak_running,
            "max_concurrency": self.max_concurrency,
        }

    # -- execution ----------------------------------------------------------

    async def _worker_loop(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                if job.state is JobState.QUEUED:
                    await self._run_job(job)
            finally:
                self._queue.task_done()

    async def _run_job(self, job: Job) -> None:
        job.state = JobState.RUNNING
        self._running += 1
        self.peak_running = max(self.peak_running, self._running)
        try:
            if job.spec.executor == "pool":
                async with self._pool_gate:
                    await self._execute(job)
            else:
                await self._execute(job)
        finally:
            self._running -= 1
            job.finished_at = time.time()
            job.done.set()
            self._retire(job)

    async def _execute(self, job: Job) -> None:
        job.started_at = time.time()
        timeout = job.spec.timeout or self.default_timeout
        try:
            job.result = await asyncio.wait_for(
                asyncio.to_thread(execute_job, job.spec), timeout
            )
            job.state = JobState.DONE
        except asyncio.TimeoutError:
            # The worker thread cannot be killed; the run itself is
            # bounded by its barrier timeout.  The *job* is failed now
            # so the queue keeps moving.
            job.state = JobState.ERROR
            job.error = f"job timed out after {timeout:g}s"
        except LolError as exc:
            job.state = JobState.ERROR
            job.error = exc.render()
        except Exception as exc:  # noqa: BLE001 - recorded per job
            job.state = JobState.ERROR
            job.error = f"{type(exc).__name__}: {exc}"
