"""Asyncio job scheduler for the execution service.

One :class:`Scheduler` owns a FIFO :class:`asyncio.Queue` drained by
``max_concurrency`` worker tasks — bounded concurrency and first-come
first-served fairness fall out of that shape directly.  Each job runs
``run_lolcode`` on a thread (:func:`asyncio.to_thread`) under
:func:`asyncio.wait_for`, so a per-job timeout cannot stall the queue.

Compilation is **single-flight**: ``run_lolcode`` goes through the
process-wide compile caches (:func:`repro.interp.compile_closures_cached`
/ :func:`repro.compiler.compile_python_cached`), which serialise
concurrent identical keys — N simultaneous submissions of one source
compile it once, the other N-1 block briefly and reuse the warm entry.

Result payloads mirror ``lolbench`` rows (workload / engine / executor /
n_pes / params / seconds / checker), so a service consumer and a sweep
consumer read the same schema.
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .. import obs as _obs
from ..faults import RetryPolicy, inject, is_retryable
from ..lang.errors import LolError

# Registry-mirrored scheduler metrics.  Instance attributes stay
# canonical for `stats()` (a process may host several schedulers in
# tests); these feed the same increments into the process-wide registry
# so the Prometheus `metrics` op reads identical numbers.
_REG = _obs.get_registry()
_M_SUBMITTED = _REG.counter(
    "lol_sched_jobs_submitted_total", "Jobs admitted to the queue"
)
_M_FINISHED = _REG.counter(
    "lol_sched_jobs_finished_total", "Jobs reaching a terminal state"
)
_M_SHED = _REG.counter(
    "lol_sched_shed_total", "Submissions rejected with QueueFullError"
)
_M_RETRIES = _REG.counter(
    "lol_sched_retries_total", "Retry attempts actually performed"
)
_M_DEGRADED = _REG.counter(
    "lol_sched_degraded_total", "Jobs completed on a fallback engine"
)
_M_JOB_LATENCY = _REG.histogram(
    "lol_job_latency_seconds", "Job wall time from dispatch to terminal"
)

#: Per-engine latency samples retained per scheduler for p50/p99 rows.
_LATENCY_WINDOW = 512

#: Fallback per-job timeout (seconds) when a submission does not set one.
DEFAULT_JOB_TIMEOUT = 120.0

#: Bound on queued-but-not-running jobs; beyond it, submissions are shed
#: with a typed :class:`QueueFullError` instead of growing the queue
#: (and the server's memory) without limit.
DEFAULT_MAX_QUEUE_DEPTH = 256

#: Default re-submission policy for jobs failing with *retryable* typed
#: errors (worker death, toolchain transients, injected faults).  Those
#: are rare in a healthy deployment, so retries are on by default —
#: program-level errors never carry ``retryable`` and are never retried.
DEFAULT_RETRY_POLICY = RetryPolicy(
    max_attempts=3, backoff_base=0.05, backoff_factor=2.0, max_backoff=1.0
)


class ServiceError(Exception):
    """A request-level failure (bad submission, unknown job, ...)."""


class QueueFullError(ServiceError):
    """Submission shed: the scheduler's queue is at capacity.

    Carries ``retry_after`` (seconds, estimated from recent job
    durations and the concurrency) so clients can back off politely;
    the server forwards both as ``error_type: "queue_full"`` +
    ``retry_after`` wire fields.
    """

    error_type = "queue_full"
    retryable = True

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class JobState(str, enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    ERROR = "error"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to execute one submission."""

    source: str
    n_pes: int = 1
    engine: str = "closure"
    executor: str = "pool"
    seed: Optional[int] = None
    trace: bool = False
    filename: str = "<service>"
    workload: Optional[str] = None
    params: Mapping[str, int] = field(default_factory=dict)
    timeout: Optional[float] = None
    fallback_engine: Optional[str] = None
    max_attempts: Optional[int] = None

    @classmethod
    def from_request(cls, payload: Mapping) -> "JobSpec":
        """Validate and resolve a wire-format submission.

        Submissions carry either raw ``source`` or a registry
        ``workload`` name (plus ``params`` overrides); a workload job
        gets its source generated here and its checker run on the
        result, exactly like a ``lolbench`` sweep cell.

        ``engine="c"`` jobs may be submitted with the default ``"pool"``
        executor; they resolve to ``"process"`` (native PEs are always
        OS processes) while keeping warm-job economics through the
        native build cache, and they refuse ``trace``.
        """
        from ..launcher import ENGINES, EXECUTORS

        source = payload.get("source")
        workload = payload.get("workload")
        params = dict(payload.get("params") or {})
        if (source is None) == (workload is None):
            raise ServiceError(
                "submit needs exactly one of 'source' or 'workload'"
            )
        if workload is not None:
            from ..workloads import WorkloadError, get_workload

            try:
                w = get_workload(workload)
                params = dict(
                    w.bind_params(params, smoke=bool(payload.get("smoke")))
                )
                source = w.source(params)
            except WorkloadError as exc:
                raise ServiceError(str(exc)) from exc
        engine = payload.get("engine", "closure")
        executor = payload.get("executor", "pool")
        if engine not in ENGINES:
            raise ServiceError(
                f"unknown engine {engine!r} (choose from {ENGINES})"
            )
        if executor not in EXECUTORS:
            raise ServiceError(
                f"unknown executor {executor!r} (choose from {EXECUTORS})"
            )
        if engine == "c":
            # Native jobs always execute as OS processes — the warm
            # pool's Python workers cannot host a native binary, so a
            # pool submission (including the default) resolves to the
            # process executor here and bypasses the scheduler's pool
            # gate.  Warm-job economics survive anyway: the on-disk
            # build cache reuses one binary across every job with the
            # same (source, n_pes).
            if payload.get("trace"):
                raise ServiceError(
                    "engine 'c' does not support op tracing; submit with "
                    "engine 'closure' or 'compiled' for traced runs"
                )
            if executor == "pool":
                executor = "process"
            elif executor not in ("process", "serial"):
                # Same loud-early refusal as trace: don't accept a job
                # that can only fail later inside a worker.
                raise ServiceError(
                    f"engine 'c' runs PEs as native OS processes; "
                    f"submit with executor 'process' (got {executor!r})"
                )
        n_pes = payload.get("n_pes", 1)
        if not isinstance(n_pes, int) or n_pes < 1:
            raise ServiceError(f"n_pes must be a positive integer, got {n_pes!r}")
        timeout = payload.get("timeout")
        if timeout is not None and not (
            isinstance(timeout, (int, float)) and timeout > 0
        ):
            raise ServiceError(f"timeout must be a positive number, got {timeout!r}")
        fallback_engine = payload.get("fallback_engine")
        if fallback_engine is not None:
            if fallback_engine not in ENGINES:
                raise ServiceError(
                    f"unknown fallback_engine {fallback_engine!r} "
                    f"(choose from {ENGINES})"
                )
            if fallback_engine == engine:
                raise ServiceError(
                    "fallback_engine must differ from engine "
                    f"(both {engine!r})"
                )
        max_attempts = payload.get("max_attempts")
        if max_attempts is not None and not (
            isinstance(max_attempts, int) and max_attempts >= 1
        ):
            raise ServiceError(
                f"max_attempts must be a positive integer, got {max_attempts!r}"
            )
        return cls(
            source=source,
            n_pes=n_pes,
            engine=engine,
            executor=executor,
            seed=payload.get("seed"),
            trace=bool(payload.get("trace", False)),
            filename=payload.get("filename")
            or (f"<workload:{workload}>" if workload else "<service>"),
            workload=workload,
            params=params,
            timeout=timeout,
            fallback_engine=fallback_engine,
            max_attempts=max_attempts,
        )


@dataclass
class Job:
    """One submission's lifecycle record."""

    job_id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[dict] = None
    error: Optional[str] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)
    #: per-attempt failure records (empty when the first attempt worked)
    attempts: list = field(default_factory=list)

    def describe(self) -> dict:
        """Wire-format job status (the ``status``/``wait`` payload)."""
        out = {
            "job_id": self.job_id,
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.attempts:
            out["attempts"] = list(self.attempts)
        return out


def execute_job(spec: JobSpec) -> dict:
    """Run one job synchronously; returns a ``lolbench``-row-shaped dict.

    Raises on infrastructure failures; LOLCODE/program failures are
    raised as :class:`~repro.lang.errors.LolError` and recorded by the
    scheduler as the job's error.
    """
    from ..launcher import run_lolcode

    t0 = time.perf_counter()
    result = run_lolcode(
        spec.source,
        spec.n_pes,
        executor=spec.executor,
        engine=spec.engine,
        seed=spec.seed,
        trace=spec.trace,
        filename=spec.filename,
        fallback_engine=spec.fallback_engine,
    )
    elapsed = time.perf_counter() - t0
    row = {
        "workload": spec.workload or "<source>",
        "engine": spec.engine,
        "executor": spec.executor,
        "n_pes": spec.n_pes,
        "params": dict(spec.params),
        "seconds": round(elapsed, 6),
        "outputs": result.outputs,
        "output": result.output,
    }
    if result.degraded:
        # The requested engine failed and the recorded fallback ran
        # instead — the result is real but the row must say so.
        row["degraded"] = True
        row["degraded_reason"] = result.degraded_reason
    if spec.trace and result.trace is not None:
        row["trace"] = result.trace.summary()
    if spec.workload is not None:
        from ..workloads import get_workload

        try:
            problems = get_workload(spec.workload).check(
                result, spec.n_pes, dict(spec.params)
            )
        except Exception as exc:  # noqa: BLE001 - a checker tripping over
            # malformed output is a verification failure, not a crash
            problems = [f"checker raised {type(exc).__name__}: {exc}"]
        row["checker"] = "pass" if not problems else problems
    return row


class Scheduler:
    """FIFO queue + bounded worker tasks over :func:`execute_job`."""

    def __init__(
        self,
        *,
        max_concurrency: int = 2,
        default_timeout: float = DEFAULT_JOB_TIMEOUT,
        max_retained_jobs: int = 1000,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.max_concurrency = max_concurrency
        self.default_timeout = default_timeout
        self.max_retained_jobs = max_retained_jobs
        self.max_queue_depth = max_queue_depth
        self.retry_policy = retry_policy
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._jobs: Dict[str, Job] = {}
        #: terminal job ids in completion order, oldest first — the
        #: eviction queue that keeps a long-lived service's memory flat
        self._terminal_order: deque[str] = deque()
        self._ids = itertools.count(1)
        self._workers: list[asyncio.Task] = []
        #: pool-executor jobs serialise here *before* their timeout
        #: clock starts: the warm pool runs one job at a time, and a
        #: job must not be "timed out" for time spent queued behind
        #: sibling pool jobs it could never preempt.
        self._pool_gate = asyncio.Lock()
        self._running = 0
        self.peak_running = 0  # observability: max concurrent jobs seen
        #: robustness counters, surfaced through ``stats`` (and from
        #: there ``lolserve stats`` / ``BENCH_service.json``)
        self.retries_total = 0  # retry attempts actually performed
        self.shed_total = 0  # submissions rejected with QueueFullError
        self.degraded_total = 0  # jobs completed on a fallback engine
        #: EMA of job wall time, feeding QueueFullError's retry-after
        self._ema_job_s = 0.1
        #: recent job wall times per engine (bounded), feeding the
        #: per-engine p50/p99 block in ``stats()`` — the load-shedding
        #: inputs ROADMAP item 3 names
        self._latency: Dict[str, deque] = {}

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        if self._workers:
            return
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"sched-worker-{i}")
            for i in range(self.max_concurrency)
        ]

    async def stop(self) -> None:
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []

    # -- client-facing operations -------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Enqueue a job (FIFO); returns its record immediately.

        Admission is bounded: past ``max_queue_depth`` queued jobs the
        submission is shed with :class:`QueueFullError` (carrying a
        retry-after estimate) instead of growing the backlog without
        limit — under overload, fast rejection beats slow timeouts.
        """
        depth = self._queue.qsize()
        rule = inject("scheduler.enqueue")
        forced = rule is not None and rule.kind == "queue_full"
        if forced or depth >= self.max_queue_depth:
            self.shed_total += 1
            _M_SHED.inc()
            retry_after = round(
                max(0.05, (depth + 1) * self._ema_job_s / self.max_concurrency),
                3,
            )
            raise QueueFullError(
                f"queue full ({depth}/{self.max_queue_depth} jobs queued"
                + (", injected fault at site 'scheduler.enqueue'" if forced else "")
                + f"); retry in ~{retry_after:g}s",
                retry_after,
            )
        job = Job(job_id=f"job-{next(self._ids)}", spec=spec)
        self._jobs[job.job_id] = job
        self._queue.put_nowait(job)
        _M_SUBMITTED.inc(engine=job.spec.engine)
        rt = _obs.ACTIVE
        if rt is not None and rt.trace_on:
            rt.tracer.instant(
                "sched",
                f"queued:{job.job_id}",
                args={"engine": job.spec.engine, "depth": depth + 1},
            )
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job id {job_id!r}") from None

    async def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state."""
        job = self.get(job_id)
        try:
            await asyncio.wait_for(job.done.wait(), timeout)
        except asyncio.TimeoutError:
            raise ServiceError(
                f"timed out waiting for {job_id} (state: {job.state.value})"
            ) from None
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running jobs cannot be revoked (their
        worker thread is already executing) and return ``False``."""
        job = self.get(job_id)
        if job.state is JobState.QUEUED:
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            job.done.set()
            self._retire(job)
            return True
        return False

    def _retire(self, job: Job) -> None:
        """Record a terminal job and evict the oldest terminal records
        beyond ``max_retained_jobs`` — a persistent service must not
        accumulate every result (with its full per-PE outputs) forever."""
        self._terminal_order.append(job.job_id)
        while len(self._terminal_order) > self.max_retained_jobs:
            self._jobs.pop(self._terminal_order.popleft(), None)

    def stats(self) -> dict:
        states = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            states[job.state.value] += 1
        return {
            "jobs": len(self._jobs),
            "states": states,
            "queued": self._queue.qsize(),
            "running": self._running,
            "peak_running": self.peak_running,
            "max_concurrency": self.max_concurrency,
            "max_queue_depth": self.max_queue_depth,
            "retries": self.retries_total,
            "shed": self.shed_total,
            "degraded": self.degraded_total,
            "retry_policy": self.retry_policy.describe(),
            "latency": self.latency_summary(),
        }

    def latency_summary(self) -> dict:
        """Per-engine job wall-time p50/p99 over the recent window —
        with queue depth and worker liveness, the third load-shedding
        input ROADMAP item 3 names."""
        out = {}
        for engine in sorted(self._latency):
            window = self._latency[engine]
            if not window:
                continue
            samples = list(window)
            out[engine] = {
                "count": len(samples),
                "p50_s": round(_obs.percentile(samples, 50), 6),
                "p99_s": round(_obs.percentile(samples, 99), 6),
                "mean_s": round(sum(samples) / len(samples), 6),
            }
        return out

    # -- execution ----------------------------------------------------------

    async def _worker_loop(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                if job.state is JobState.QUEUED:
                    await self._run_job(job)
            finally:
                self._queue.task_done()

    async def _run_job(self, job: Job) -> None:
        job.state = JobState.RUNNING
        self._running += 1
        self.peak_running = max(self.peak_running, self._running)
        rt = _obs.ACTIVE
        t0 = time.perf_counter() if rt is not None else 0.0
        try:
            if job.spec.executor == "pool":
                async with self._pool_gate:
                    await self._execute(job)
            else:
                await self._execute(job)
        finally:
            self._running -= 1
            job.finished_at = time.time()
            if job.started_at is not None:
                self._record_latency(
                    job.spec.engine, job.finished_at - job.started_at
                )
            _M_FINISHED.inc(engine=job.spec.engine, state=job.state.value)
            if rt is not None and rt.trace_on:
                rt.tracer.complete(
                    "sched",
                    f"job:{job.job_id}",
                    t0,
                    time.perf_counter() - t0,
                    args={
                        "engine": job.spec.engine,
                        "executor": job.spec.executor,
                        "state": job.state.value,
                        "queued_s": round(
                            (job.started_at or job.finished_at)
                            - job.submitted_at,
                            6,
                        ),
                    },
                )
            job.done.set()
            self._retire(job)

    def _record_latency(self, engine: str, seconds: float) -> None:
        window = self._latency.get(engine)
        if window is None:
            window = self._latency[engine] = deque(maxlen=_LATENCY_WINDOW)
        window.append(seconds)
        _M_JOB_LATENCY.observe(seconds, engine=engine)

    async def _execute(self, job: Job) -> None:
        job.started_at = time.time()
        timeout = job.spec.timeout or self.default_timeout
        try:
            # The per-job timeout bounds the *whole* attempt loop
            # (including backoff sleeps): retries must never let one
            # job hold a worker slot longer than its budget.
            job.result = await asyncio.wait_for(
                self._run_attempts(job), timeout
            )
            job.state = JobState.DONE
            if job.result.get("degraded"):
                self.degraded_total += 1
                _M_DEGRADED.inc()
        except asyncio.TimeoutError:
            # The worker thread cannot be killed; the run itself is
            # bounded by its barrier timeout.  The *job* is failed now
            # so the queue keeps moving.
            job.state = JobState.ERROR
            job.error = f"job timed out after {timeout:g}s"
            if job.attempts:
                job.error += (
                    f" (attempt {len(job.attempts)} had failed with: "
                    f"{job.attempts[-1]['error']})"
                )
        except LolError as exc:
            job.state = JobState.ERROR
            job.error = exc.render()
        except Exception as exc:  # noqa: BLE001 - recorded per job
            job.state = JobState.ERROR
            job.error = f"{type(exc).__name__}: {exc}"
        finally:
            if job.started_at is not None:
                elapsed = time.time() - job.started_at
                self._ema_job_s = 0.8 * self._ema_job_s + 0.2 * elapsed

    async def _run_attempts(self, job: Job) -> dict:
        """Run the job, re-submitting on *retryable* typed failures.

        Worker death, toolchain transients, and injected faults carry
        ``retryable = True`` and get up to ``max_attempts`` tries with
        deterministic exponential backoff; every failed attempt is
        recorded on the job (and echoed into the result row), so "it
        worked, on the second try, after a worker crash" is visible to
        the submitter, not silently papered over.
        """
        policy = self.retry_policy
        max_attempts = job.spec.max_attempts or policy.max_attempts
        for attempt in itertools.count(1):
            try:
                row = await asyncio.to_thread(execute_job, job.spec)
            except Exception as exc:  # noqa: BLE001 - classified below
                retryable = is_retryable(exc)
                brief = f"{type(exc).__name__}: {exc}"
                record = {
                    "attempt": attempt,
                    "error": brief[:300],
                    "retryable": retryable,
                }
                job.attempts.append(record)
                if not retryable or attempt >= max_attempts:
                    raise
                delay = policy.delay(attempt, seed=job.spec.seed or 0)
                record["backoff_s"] = round(delay, 4)
                self.retries_total += 1
                _M_RETRIES.inc()
                await asyncio.sleep(delay)
                continue
            row["attempt_count"] = attempt
            if job.attempts:
                row["retries"] = list(job.attempts)
            return row
