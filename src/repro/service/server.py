"""JSON-over-unix-socket front end for the scheduler.

Wire protocol: newline-delimited JSON objects, one request per line,
one response per line, over a ``AF_UNIX`` stream socket.  Requests are
``{"op": ..., ...}``; responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": "..."}``.

=============== ========================================= =================
op              request fields                            response fields
=============== ========================================= =================
``ping``        —                                         ``pid``
``submit``      ``source`` | ``workload`` (+``params``,   ``job_id``
                ``smoke``), ``n_pes``, ``engine``,
                ``executor``, ``seed``, ``trace``,
                ``timeout``
``status``      ``job_id``                                ``job``
``wait``        ``job_id``, ``timeout``                   ``job``
``cancel``      ``job_id``                                ``cancelled``
``workloads``   —                                         ``workloads``
``stats``       —                                         ``stats``
``metrics``     —                                         ``metrics`` (Prom
                                                          text exposition)
``shutdown``    —                                         ``stopping``
=============== ========================================= =================

``job.result`` payloads mirror ``lolbench`` rows (see
:func:`repro.service.scheduler.execute_job`).

:class:`BackgroundServer` runs the whole thing on a daemon thread with
its own event loop — the harness used by the tests, the throughput
benchmark, and the CI smoke check.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import tempfile
import threading
from typing import Optional

from .. import obs as _obs
from ..faults import fault_stats, inject
from .scheduler import (
    DEFAULT_JOB_TIMEOUT,
    DEFAULT_MAX_QUEUE_DEPTH,
    JobSpec,
    Scheduler,
    ServiceError,
)

#: Cap on one request line; a submission is source text, not a payload
#: channel, and an unbounded readline is a trivial memory DoS.
MAX_REQUEST_BYTES = 4 * 1024 * 1024


class ServiceServer:
    """Asyncio unix-socket server owning one :class:`Scheduler`."""

    def __init__(
        self,
        socket_path: str,
        *,
        max_concurrency: int = 2,
        default_timeout: float = DEFAULT_JOB_TIMEOUT,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
    ) -> None:
        self.socket_path = str(socket_path)
        self.scheduler = Scheduler(
            max_concurrency=max_concurrency,
            default_timeout=default_timeout,
            max_queue_depth=max_queue_depth,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        await self.scheduler.start()
        self._clear_stale_socket()
        self._server = await asyncio.start_unix_server(
            self._handle_connection,
            path=self.socket_path,
            limit=MAX_REQUEST_BYTES,
        )

    def _clear_stale_socket(self) -> None:
        """Remove a leftover socket file from an unclean exit.

        Only the clean-shutdown path unlinks the socket, so after a
        ``kill -9`` the next ``lolserve serve`` would fail with
        "address already in use".  Probe-connect to tell a stale file
        (connection refused -> unlink) from a live server (error out
        loudly instead of stealing its address).
        """
        if not os.path.exists(self.socket_path):
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(1.0)
        try:
            probe.connect(self.socket_path)
        except (ConnectionRefusedError, FileNotFoundError):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        except OSError:
            pass  # unknown state: let the bind surface the real error
        else:
            raise ServiceError(
                f"another server is already listening on {self.socket_path}"
            )
        finally:
            probe.close()

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    # -- protocol -----------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._reply(
                        writer, {"ok": False, "error": "request too large"}
                    )
                    break
                if not line:
                    break
                rule = inject("server.conn")
                if rule is not None and rule.kind == "drop":
                    # Simulated mid-request connection loss: the request
                    # was read but never processed, so a client retry is
                    # always safe.  Close without replying.
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                    response = await self._dispatch(request)
                except ServiceError as exc:
                    response = {"ok": False, "error": str(exc)}
                    # Typed errors (e.g. QueueFullError) publish their
                    # class and hints so clients can react specifically
                    # instead of string-matching the message.
                    error_type = getattr(exc, "error_type", None)
                    if error_type:
                        response["error_type"] = error_type
                    retry_after = getattr(exc, "retry_after", None)
                    if retry_after is not None:
                        response["retry_after"] = retry_after
                except (json.JSONDecodeError, ValueError) as exc:
                    response = {"ok": False, "error": f"bad request: {exc}"}
                except Exception as exc:  # noqa: BLE001 - connection-scoped
                    response = {
                        "ok": False,
                        "error": f"internal error: {type(exc).__name__}: {exc}",
                    }
                try:
                    await self._reply(writer, response)
                except (ConnectionError, BrokenPipeError):
                    break  # client gave up (e.g. its socket timed out)
        except asyncio.CancelledError:
            pass  # server shutting down mid-connection: close quietly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _reply(writer, response: dict) -> None:
        writer.write(json.dumps(response).encode("utf-8") + b"\n")
        await writer.drain()

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid()}
        if op == "submit":
            spec = JobSpec.from_request(request)
            job = self.scheduler.submit(spec)
            return {"ok": True, "job_id": job.job_id}
        if op == "status":
            job = self.scheduler.get(self._job_id(request))
            return {"ok": True, "job": job.describe()}
        if op == "wait":
            timeout = request.get("timeout")
            job = await self.scheduler.wait(self._job_id(request), timeout)
            return {"ok": True, "job": job.describe()}
        if op == "cancel":
            cancelled = self.scheduler.cancel(self._job_id(request))
            return {"ok": True, "cancelled": cancelled}
        if op == "workloads":
            from ..workloads import workload_names

            return {"ok": True, "workloads": workload_names()}
        if op == "stats":
            from ..compiler.native import native_stats

            stats = dict(self.scheduler.stats())
            stats["pool"] = self._pool_stats()
            stats["native"] = native_stats()
            stats["faults"] = fault_stats()
            return {"ok": True, "stats": stats}
        if op == "metrics":
            self._update_gauges()
            return {
                "ok": True,
                "metrics": _obs.render_prometheus(_obs.get_registry()),
            }
        if op == "shutdown":
            self._shutdown.set()
            return {"ok": True, "stopping": True}
        raise ServiceError(f"unknown op {op!r}")

    @staticmethod
    def _job_id(request: dict) -> str:
        job_id = request.get("job_id")
        if not isinstance(job_id, str):
            raise ServiceError("missing or non-string 'job_id'")
        return job_id

    @staticmethod
    def _pool_stats() -> Optional[dict]:
        # Reach into the default pool without creating it.
        from . import pool as pool_mod

        pool = pool_mod._default_pool
        if pool is None or not pool.alive:
            return None
        return {
            "size": pool.size,
            "workers_alive": pool.workers_alive(),
            "jobs_run": pool.jobs_run,
            "workers_replaced": pool.workers_replaced,
            "rebuilds": pool.rebuilds,
            "segments_created": pool.segments.created,
            "segments_reused": pool.segments.reused,
        }

    def _update_gauges(self) -> None:
        """Refresh point-in-time gauges right before rendering, so the
        exposition reflects this instant rather than the last event."""
        reg = _obs.get_registry()
        sched = self.scheduler.stats()
        reg.gauge("lol_sched_queue_depth", "Jobs waiting in the queue").set(
            sched["queued"]
        )
        reg.gauge("lol_sched_running", "Jobs currently executing").set(
            sched["running"]
        )
        reg.gauge(
            "lol_sched_queue_capacity", "Configured max queue depth"
        ).set(sched["max_queue_depth"])


def serve(
    socket_path: str,
    *,
    max_concurrency: int = 2,
    default_timeout: float = DEFAULT_JOB_TIMEOUT,
    max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
) -> None:
    """Run a server in the foreground until a ``shutdown`` request
    (or KeyboardInterrupt) — the ``lolserve serve`` entry point."""

    async def _main() -> None:
        server = ServiceServer(
            socket_path,
            max_concurrency=max_concurrency,
            default_timeout=default_timeout,
            max_queue_depth=max_queue_depth,
        )
        await server.start()
        try:
            await server.serve_until_shutdown()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class BackgroundServer:
    """A server on a daemon thread with its own event loop.

    Context-manager harness for in-process consumers (tests, the
    throughput bench, the CI smoke check)::

        with BackgroundServer(max_concurrency=4) as bg:
            client = ServiceClient(bg.socket_path)
            ...
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        *,
        max_concurrency: int = 2,
        default_timeout: float = DEFAULT_JOB_TIMEOUT,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
    ) -> None:
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if socket_path is None:
            # AF_UNIX paths are length-limited (~104 bytes): keep it short.
            self._tmpdir = tempfile.TemporaryDirectory(prefix="lolserve-")
            socket_path = os.path.join(self._tmpdir.name, "s.sock")
        self.socket_path = socket_path
        self._max_concurrency = max_concurrency
        self._default_timeout = default_timeout
        self._max_queue_depth = max_queue_depth
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None

    def _run(self) -> None:
        async def _main() -> None:
            try:
                server = ServiceServer(
                    self.socket_path,
                    max_concurrency=self._max_concurrency,
                    default_timeout=self._default_timeout,
                    max_queue_depth=self._max_queue_depth,
                )
                await server.start()
            except BaseException as exc:  # noqa: BLE001 - surfaced to starter
                self._start_error = exc
                self._started.set()
                raise
            self._started.set()
            try:
                await server.serve_until_shutdown()
            finally:
                await server.stop()

        try:
            asyncio.run(_main())
        except BaseException:  # noqa: BLE001 - daemon thread exit
            pass

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="lolserve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("service server failed to start within 30s")
        if self._start_error is not None:
            raise RuntimeError(
                f"service server failed to start: {self._start_error!r}"
            )
        return self

    def __exit__(self, *exc_info) -> None:
        from .client import ServiceClient

        try:
            ServiceClient(self.socket_path).shutdown()
        except Exception:
            pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
