"""Service smoke check: N concurrent registry workloads, all verified.

The CI ``service-smoke`` job runs this (as ``lolserve smoke``): start a
real server, fan out concurrent client threads each submitting a
workload from the registry (alternating warm-pool and thread executors),
wait for every result, and fail loudly unless **all** of them verify
against their workload checkers.

Non-deterministic workloads (``nbody_racy``) are excluded: their
checkers intentionally tolerate racy results, which would water down
"all results verify".
"""

from __future__ import annotations

import sys
import threading
from typing import Optional, Sequence

from .client import ServiceClient
from .scheduler import ServiceError
from .server import BackgroundServer

DEFAULT_JOBS = 20


def _smoke_matrix(jobs: int) -> list[tuple[str, str, int]]:
    """(workload, executor, n_pes) for each submission: cycle the
    deterministic registry, alternating pool and thread executors."""
    from ..workloads import all_workloads

    deterministic = [w for w in all_workloads() if w.deterministic]
    matrix = []
    for i in range(jobs):
        w = deterministic[i % len(deterministic)]
        executor = "pool" if i % 2 == 0 else "thread"
        matrix.append((w.name, executor, max(w.min_pes, 2)))
    return matrix


def run_smoke(
    *,
    jobs: int = DEFAULT_JOBS,
    socket_path: Optional[str] = None,
    max_concurrency: int = 4,
    job_timeout: float = 120.0,
    seed: int = 42,
) -> list[str]:
    """Run the smoke check; returns a list of failures (empty = pass)."""
    matrix = _smoke_matrix(jobs)
    failures: list[str] = []
    failures_mutex = threading.Lock()
    with BackgroundServer(socket_path, max_concurrency=max_concurrency) as bg:
        client = ServiceClient(bg.socket_path, timeout=job_timeout)
        client.ping()

        def one(i: int, workload: str, executor: str, n_pes: int) -> None:
            tag = f"{workload}[{executor}/np{n_pes}]"
            try:
                job_id = client.submit(
                    workload=workload,
                    smoke=True,
                    n_pes=n_pes,
                    executor=executor,
                    seed=seed + i,
                    timeout=job_timeout,
                )
                row = client.result(job_id, timeout=job_timeout)
                if row.get("checker") != "pass":
                    raise ServiceError(f"checker: {row.get('checker')}")
            except ServiceError as exc:
                with failures_mutex:
                    failures.append(f"{tag}: {exc}")

        threads = [
            threading.Thread(target=one, args=(i, *cell), name=f"smoke-{i}")
            for i, cell in enumerate(matrix)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=job_timeout + 30.0)
            if t.is_alive():
                with failures_mutex:
                    failures.append(f"{t.name}: did not finish")
        stats = client.stats()
    print(
        f"smoke: {jobs - len(failures)}/{jobs} verified "
        f"(peak concurrency {stats['peak_running']}, "
        f"pool: {stats.get('pool')})"
    )
    # Robustness counters: what the run absorbed on the way to "all
    # verified".  Nonzero retries under an armed fault plan is the CI
    # chaos-smoke signal that recovery (not luck) produced the passes.
    faults = stats.get("faults")
    print(
        f"smoke: retries {stats.get('retries', 0)}, "
        f"shed {stats.get('shed', 0)}, "
        f"degraded {stats.get('degraded', 0)}, "
        f"faults {faults['fires'] if faults else 'disarmed'}"
    )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``lolserve smoke`` — exit non-zero unless every job verifies."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="lolserve smoke",
        description="start a server, submit concurrent registry "
        "workloads, assert all results verify",
    )
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument(
        "--concurrency", type=int, default=4, help="scheduler concurrency"
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    failures = run_smoke(
        jobs=args.jobs, max_concurrency=args.concurrency, seed=args.seed
    )
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0
