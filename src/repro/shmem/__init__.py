"""OpenSHMEM-like SPMD/PGAS runtime substrate (paper Section II.A).

Public surface:

* :class:`~repro.shmem.api.World`, :class:`~repro.shmem.api.ShmemContext` —
  the runtime a PE program talks to;
* :func:`~repro.shmem.runtime_threads.run_spmd` — thread executor;
* :func:`~repro.shmem.runtime_procs.run_spmd_procs` — process executor
  (true parallelism over ``multiprocessing.shared_memory``);
* :class:`~repro.shmem.heap.SymmetricHeap` / ``SymmetricPlan`` — PGAS heap;
* :class:`~repro.shmem.locks.LockTable` — per-symbol global locks;
* :class:`~repro.shmem.trace.OpTrace` / ``WorldTrace`` — op tracing for the
  NoC performance model;
* :class:`~repro.shmem.racecheck.RaceDetector` — barrier-epoch race
  detection (Figure 2).
"""

from .api import DEFAULT_BARRIER_TIMEOUT, ShmemContext, World, serial_context
from .heap import ArrayCell, ScalarCell, SymmetricHeap, SymmetricObject, SymmetricPlan
from .locks import LockTable
from .racecheck import RaceDetector, RaceReport
from .runtime_procs import run_spmd_procs
from .runtime_threads import SpmdResult, run_spmd
from .trace import OpEvent, OpKind, OpTrace, WorldTrace

__all__ = [
    "DEFAULT_BARRIER_TIMEOUT",
    "ShmemContext",
    "World",
    "serial_context",
    "ArrayCell",
    "ScalarCell",
    "SymmetricHeap",
    "SymmetricObject",
    "SymmetricPlan",
    "LockTable",
    "RaceDetector",
    "RaceReport",
    "run_spmd",
    "run_spmd_procs",
    "SpmdResult",
    "OpEvent",
    "OpKind",
    "OpTrace",
    "WorldTrace",
]
