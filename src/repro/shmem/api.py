"""OpenSHMEM-like runtime API: the :class:`World` and per-PE
:class:`ShmemContext`.

This is the substrate the paper's language extensions compile down to.
The mapping of LOLCODE constructs to context methods:

================================= =======================================
LOLCODE (Table II)                ``ShmemContext``
================================= =======================================
``ME``                            ``ctx.my_pe``
``MAH FRENZ``                     ``ctx.n_pes``
``HUGZ``                          ``ctx.barrier_all()``
``TXT MAH BFF k, MAH x R UR x``   ``ctx.get("x", k)``
``TXT MAH BFF k, UR b R MAH a``   ``ctx.put("b", value, k)``
``IM SRSLY MESIN WIF x``          ``ctx.set_lock("x")``
``IM MESIN WIF x`` (trylock)      ``ctx.test_lock("x")``
``DUN MESIN WIF x``               ``ctx.clear_lock("x")``
``WE HAS A x ITZ SRSLY A NUMBR``  ``ctx.alloc_scalar("x", LolType.NUMBR)``
================================= =======================================

plus a handful of OpenSHMEM conveniences that the backend uses implicitly
("other OpenSHMEM routines are used implicitly in the backend but do not
have a direct language analog"): atomics, broadcast, reductions, and
``wait_until`` point-to-point synchronisation.

The world is executor-agnostic: the thread executor
(:mod:`repro.shmem.runtime_threads`) instantiates it with ``threading``
primitives, the process executor (:mod:`repro.shmem.runtime_procs`) with
``multiprocessing`` primitives over shared memory segments.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from .. import obs as _obs
from ..lang.errors import LolParallelError, LolRuntimeError
from ..lang.types import LolType
from .heap import ArrayCell, SymmetricHeap, SymmetricObject
from .locks import LockTable
from .racecheck import RaceDetector
from .trace import OpEvent, OpKind, OpTrace

#: Default timeout for collective operations; prevents a buggy program
#: (e.g. mismatched barrier counts) from hanging the test suite forever.
DEFAULT_BARRIER_TIMEOUT = 120.0

_ELEM_BYTES = 8


class _EpochBox:
    """Barrier epoch counter (plain int for threads; subclassed for procs)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def increment(self) -> None:
        self._value += 1

    def read(self) -> int:
        return self._value


class World:
    """Everything shared by the PEs of one SPMD execution."""

    def __init__(
        self,
        n_pes: int,
        *,
        barrier,
        heap: SymmetricHeap,
        locks: LockTable,
        epoch_box: Optional[_EpochBox] = None,
        race_detector: Optional[RaceDetector] = None,
        exchange: Optional[list] = None,
        atomic_mutex=None,
        barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
    ) -> None:
        self.n_pes = n_pes
        self.barrier = barrier
        self.heap = heap
        self.locks = locks
        self.epoch_box = epoch_box or _EpochBox()
        self.race_detector = race_detector
        self.exchange = exchange if exchange is not None else [None] * n_pes
        self.atomic_mutex = atomic_mutex or threading.Lock()
        self.barrier_timeout = barrier_timeout

    @classmethod
    def for_threads(
        cls,
        n_pes: int,
        *,
        race_detection: bool = False,
        element_granularity: bool = False,
        barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
    ) -> "World":
        epoch_box = _EpochBox()
        barrier = threading.Barrier(n_pes, action=epoch_box.increment)
        return cls(
            n_pes,
            barrier=barrier,
            heap=SymmetricHeap(n_pes),
            locks=LockTable(threading.Lock),
            epoch_box=epoch_box,
            race_detector=(
                RaceDetector(element_granularity) if race_detection else None
            ),
            barrier_timeout=barrier_timeout,
        )

    @property
    def epoch(self) -> int:
        return self.epoch_box.read()


class ShmemContext:
    """A single PE's handle onto the world.  One per SPMD thread/process."""

    def __init__(
        self,
        world: World,
        my_pe: int,
        *,
        seed: Optional[int] = None,
        stdin_lines: Optional[Sequence[str]] = None,
        trace: bool = False,
        trace_detail: bool = True,
    ) -> None:
        if not 0 <= my_pe < world.n_pes:
            raise LolParallelError(f"PE id {my_pe} out of range")
        self.world = world
        self.my_pe = my_pe
        # Deterministic per-PE streams: WHATEVR/WHATEVAR are reproducible
        # for a given (seed, pe), which the tests and benches rely on.
        self.rng = random.Random((seed if seed is not None else 0xC47) * 7919 + my_pe)
        self.out_parts: list[str] = []
        self._stdin = list(stdin_lines or [])
        self._stdin_pos = 0
        self.trace: Optional[OpTrace] = (
            OpTrace(my_pe, detailed=trace_detail) if trace else None
        )

    # -- identity (ME / MAH FRENZ) ------------------------------------------

    @property
    def n_pes(self) -> int:
        return self.world.n_pes

    # -- I/O ------------------------------------------------------------------

    def emit(self, text: str) -> None:
        """Sink for VISIBLE output."""
        self.out_parts.append(text)

    @property
    def output(self) -> str:
        return "".join(self.out_parts)

    def read_line(self) -> str:
        """Source for GIMMEH input (injected per PE for determinism)."""
        if self._stdin_pos >= len(self._stdin):
            raise LolRuntimeError(
                f"GIMMEH on PE {self.my_pe}: no more input lines"
            )
        line = self._stdin[self._stdin_pos]
        self._stdin_pos += 1
        return line

    # -- symmetric allocation ---------------------------------------------------

    def alloc_scalar(
        self, name: str, lol_type: Optional[LolType], *, has_lock: bool = False
    ) -> SymmetricObject:
        obj = self.world.heap.alloc(name, lol_type, has_lock=has_lock)
        if has_lock:
            self.world.locks.register(name)
        return obj

    def alloc_array(
        self,
        name: str,
        lol_type: Optional[LolType],
        size: int,
        *,
        has_lock: bool = False,
    ) -> SymmetricObject:
        obj = self.world.heap.alloc(
            name, lol_type, is_array=True, size=size, has_lock=has_lock
        )
        if has_lock:
            self.world.locks.register(name)
        return obj

    def is_symmetric(self, name: str) -> bool:
        return self.world.heap.contains(name)

    # -- one-sided remote memory access (TXT MAH BFF / UR) ----------------------

    def get(self, symbol: str, target_pe: int, index: Optional[int] = None):
        """One-sided read from ``target_pe``'s partition (``UR x`` rvalue)."""
        rt = _obs.ACTIVE
        t0 = time.perf_counter() if rt is not None else 0.0
        obj = self._resolve(symbol, target_pe)
        cell = obj.cell(target_pe)
        if index is not None:
            self._require_array(obj, symbol)
            value = cell.read(int(index))
            nbytes = _ELEM_BYTES
        elif obj.is_array:
            value = cell.read_all()
            nbytes = cell.nbytes
        else:
            value = cell.read()
            nbytes = _ELEM_BYTES
        self._note(OpKind.GET, target_pe, nbytes, symbol)
        self._race(symbol, target_pe, "read", index)
        if rt is not None:
            self._obs_comm(rt, "get", target_pe, nbytes, symbol, t0)
        return value

    def put(
        self,
        symbol: str,
        value,
        target_pe: int,
        index: Optional[int] = None,
    ) -> None:
        """One-sided write into ``target_pe``'s partition (``UR x`` lvalue)."""
        rt = _obs.ACTIVE
        t0 = time.perf_counter() if rt is not None else 0.0
        obj = self._resolve(symbol, target_pe)
        cell = obj.cell(target_pe)
        if index is not None:
            self._require_array(obj, symbol)
            cell.write(int(index), value)
            nbytes = _ELEM_BYTES
        elif obj.is_array:
            cell.write_all(value)
            nbytes = cell.nbytes
        else:
            cell.write(value)
            nbytes = _ELEM_BYTES
        self._note(OpKind.PUT, target_pe, nbytes, symbol)
        self._race(symbol, target_pe, "write", index)
        if rt is not None:
            self._obs_comm(rt, "put", target_pe, nbytes, symbol, t0)

    def local_cell(self, symbol: str):
        """Direct handle on this PE's own partition of ``symbol``."""
        return self.world.heap.lookup(symbol).cell(self.my_pe)

    def local_read(self, symbol: str, index: Optional[int] = None):
        """Read this PE's own partition (plain/``MAH`` reference to a
        symmetric variable).  Visible to the race detector: a local read
        racing with a remote put is exactly the Figure 2 bug."""
        obj = self.world.heap.lookup(symbol)
        cell = obj.cell(self.my_pe)
        if index is not None:
            self._require_array(obj, symbol)
            value = cell.read(int(index))
        elif obj.is_array:
            value = cell.read_all()
        else:
            value = cell.read()
        self._race(symbol, self.my_pe, "read", index)
        return value

    def local_write(self, symbol: str, value, index: Optional[int] = None) -> None:
        """Write this PE's own partition (plain/``MAH`` assignment)."""
        obj = self.world.heap.lookup(symbol)
        cell = obj.cell(self.my_pe)
        if index is not None:
            self._require_array(obj, symbol)
            cell.write(int(index), value)
        elif obj.is_array:
            cell.write_all(value)
        else:
            cell.write(value)
        self._race(symbol, self.my_pe, "write", index)

    # -- observability (armed path only; _obs.ACTIVE is None when disarmed) ------

    def _obs_comm(
        self, rt, kind: str, target_pe: int, nbytes: int, symbol: str, t0: float
    ) -> None:
        """Record one data-plane op on the armed observability runtime."""
        now = time.perf_counter()
        if rt.metrics_on:
            rt.comm_ops.inc(1, op=kind)
            if nbytes:
                rt.comm_bytes.inc(nbytes, op=kind)
        if rt.trace_on:
            rt.tracer.complete(
                "comm",
                kind,
                t0,
                now - t0,
                tid=f"PE-{self.my_pe}",
                args={"symbol": symbol, "to": target_pe, "nbytes": nbytes},
            )

    def _obs_barrier(self, rt, t0: float) -> None:
        """Record one barrier wait (per-PE histogram + span)."""
        wait_s = time.perf_counter() - t0
        if rt.metrics_on:
            rt.barrier_wait.observe(wait_s, pe=str(self.my_pe))
        if rt.trace_on:
            rt.tracer.complete(
                "comm", "barrier", t0, wait_s, tid=f"PE-{self.my_pe}"
            )

    # -- synchronisation ----------------------------------------------------------

    def barrier_all(self) -> None:
        """Collective barrier (``HUGZ``)."""
        self._note(OpKind.BARRIER, -1, 0, "")
        rt = _obs.ACTIVE
        t0 = time.perf_counter() if rt is not None else 0.0
        try:
            self.world.barrier.wait(timeout=self.world.barrier_timeout)
        except threading.BrokenBarrierError as exc:
            raise LolParallelError(
                f"HUGZ barrier broken on PE {self.my_pe} (a PE crashed or "
                f"the program reached the barrier a mismatched number of times)"
            ) from exc
        finally:
            if rt is not None:
                self._obs_barrier(rt, t0)

    def set_lock(self, symbol: str) -> None:
        """Blocking global lock acquire (``IM SRSLY MESIN WIF``)."""
        self._note(OpKind.LOCK, -1, 0, symbol)
        self.world.locks.acquire(
            symbol, self.my_pe, timeout=self.world.barrier_timeout
        )

    def test_lock(self, symbol: str) -> bool:
        """Non-blocking acquire (``IM MESIN WIF ..., O RLY?``) -> WIN/FAIL."""
        self._note(OpKind.TRYLOCK, -1, 0, symbol)
        return self.world.locks.try_acquire(symbol, self.my_pe)

    def clear_lock(self, symbol: str) -> None:
        """Release (``DUN MESIN WIF``)."""
        self._note(OpKind.UNLOCK, -1, 0, symbol)
        self.world.locks.release(symbol, self.my_pe)

    def holds_lock(self, symbol: str) -> bool:
        return self.world.locks.owner(symbol) == self.my_pe

    def wait_until(
        self,
        symbol: str,
        predicate: Callable[[object], bool],
        *,
        index: Optional[int] = None,
        poll_interval: float = 1e-5,
        timeout: Optional[float] = None,
    ) -> object:
        """Point-to-point sync: spin until this PE's copy satisfies
        ``predicate`` (OpenSHMEM ``shmem_wait_until``)."""
        deadline = time.monotonic() + (timeout or self.world.barrier_timeout)
        cell = self.local_cell(symbol)
        while True:
            value = cell.read(int(index)) if index is not None else (
                cell.read_all() if isinstance(cell, ArrayCell) else cell.read()
            )
            if predicate(value):
                return value
            if time.monotonic() > deadline:
                raise LolParallelError(
                    f"wait_until on '{symbol}' timed out on PE {self.my_pe}"
                )
            time.sleep(poll_interval)

    # -- atomics -------------------------------------------------------------------

    def atomic_fetch_add(
        self, symbol: str, value, target_pe: int, index: Optional[int] = None
    ):
        obj = self._resolve(symbol, target_pe)
        cell = obj.cell(target_pe)
        with self.world.atomic_mutex:
            if index is not None:
                old = cell.read(int(index))
                cell.write(int(index), old + value)
            else:
                old = cell.read()
                cell.write(old + value)
        self._note(OpKind.ATOMIC, target_pe, _ELEM_BYTES, symbol)
        self._race(symbol, target_pe, "write", index, locked=True)
        return old

    def atomic_swap(
        self, symbol: str, value, target_pe: int, index: Optional[int] = None
    ):
        obj = self._resolve(symbol, target_pe)
        cell = obj.cell(target_pe)
        with self.world.atomic_mutex:
            if index is not None:
                old = cell.read(int(index))
                cell.write(int(index), value)
            else:
                old = cell.read()
                cell.write(value)
        self._note(OpKind.ATOMIC, target_pe, _ELEM_BYTES, symbol)
        self._race(symbol, target_pe, "write", index, locked=True)
        return old

    def atomic_compare_swap(
        self, symbol: str, expected, desired, target_pe: int
    ):
        obj = self._resolve(symbol, target_pe)
        cell = obj.cell(target_pe)
        with self.world.atomic_mutex:
            old = cell.read()
            if old == expected:
                cell.write(desired)
        self._note(OpKind.ATOMIC, target_pe, _ELEM_BYTES, symbol)
        self._race(symbol, target_pe, "write", None, locked=True)
        return old

    # -- collectives -----------------------------------------------------------------

    def broadcast(self, value, root: int = 0):
        """Broadcast ``value`` from PE ``root`` to every PE; returns it."""
        if self.my_pe == root:
            self.world.exchange[root] = value
        self.barrier_all()
        result = self.world.exchange[root]
        self.barrier_all()
        self._note(OpKind.BCAST, root, _ELEM_BYTES, "")
        return result

    def allgather(self, value) -> list:
        """Every PE contributes ``value``; all receive the full list."""
        self.world.exchange[self.my_pe] = value
        self.barrier_all()
        result = list(self.world.exchange)
        self.barrier_all()
        self._note(OpKind.BCAST, -1, _ELEM_BYTES * self.n_pes, "")
        return result

    def allreduce(self, value, op: str = "sum"):
        """Reduce ``value`` across PEs (sum/min/max/prod); all receive it."""
        values = self.allgather(value)
        self._note(OpKind.REDUCE, -1, _ELEM_BYTES, "")
        if op == "sum":
            return sum(values)
        if op == "min":
            return min(values)
        if op == "max":
            return max(values)
        if op == "prod":
            out = 1
            for v in values:
                out = out * v
            return out
        raise LolRuntimeError(f"unknown reduction op {op!r}")

    # -- trace / race plumbing -----------------------------------------------------

    def add_flops(self, n: int) -> None:
        if self.trace is not None:
            self.trace.add_flops(n)

    def _note(self, kind: OpKind, dst: int, nbytes: int, symbol: str) -> None:
        if self.trace is not None:
            self.trace.record(
                OpEvent(kind, self.my_pe, dst, nbytes, symbol, self.world.epoch)
            )

    def _race(
        self,
        symbol: str,
        owner_pe: int,
        kind: str,
        element,
        *,
        locked: bool = False,
    ) -> None:
        det = self.world.race_detector
        if det is None:
            return
        locked = locked or self.holds_lock(symbol)
        det.on_access(
            symbol,
            owner_pe,
            self.my_pe,
            kind,
            self.world.epoch,
            locked=locked,
            element=element,
        )

    def _resolve(self, symbol: str, target_pe: int) -> SymmetricObject:
        if not 0 <= target_pe < self.n_pes:
            raise LolParallelError(
                f"PE {target_pe} out of range [0, {self.n_pes}) "
                f"(accessing '{symbol}' from PE {self.my_pe})"
            )
        return self.world.heap.lookup(symbol)

    @staticmethod
    def _require_array(obj: SymmetricObject, symbol: str) -> None:
        if not obj.is_array:
            raise LolRuntimeError(f"'{symbol}' is not an array")


def serial_context(**kwargs) -> ShmemContext:
    """A 1-PE world for serial interpretation (``loli``): ``ME`` is 0 and
    ``MAH FRENZ`` is 1, matching a single-PE OpenSHMEM launch."""
    world = World.for_threads(1)
    return ShmemContext(world, 0, **kwargs)
