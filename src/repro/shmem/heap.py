"""Symmetric heap for the PGAS runtime (paper Figure 1).

The partitioned global address space is modelled exactly as the paper
draws it: every PE owns a partition holding *the same set of symbols*
(symmetric allocation), and any PE may address any partition's copy of a
symbol once that symbol has been allocated collectively.

Two storage classes exist, mirroring OpenSHMEM:

* :class:`ScalarCell` — a single symmetric variable
  (``WE HAS A x ITZ SRSLY A NUMBR``);
* :class:`ArrayCell` — a fixed-size symmetric array backed by a numpy
  array for the numeric types
  (``WE HAS A a ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32``).

The heap itself is executor-agnostic: the thread runtime instantiates it
directly in shared memory of the Python process, while the process runtime
provides numpy views onto ``multiprocessing.shared_memory`` segments with
the same interface.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..lang.errors import LolParallelError, LolRuntimeError
from ..lang.types import NUMPY_DTYPES, LolType, default_value


class ScalarCell:
    """One PE's copy of a symmetric scalar."""

    __slots__ = ("value",)

    def __init__(self, value: object = None) -> None:
        self.value = value

    def read(self) -> object:
        return self.value

    def write(self, value: object) -> None:
        self.value = value

    @property
    def nbytes(self) -> int:
        return 8


class NumpyScalarCell:
    """A scalar backed by a 1-element numpy array (process executor)."""

    __slots__ = ("buf", "lol_type")

    def __init__(self, buf: np.ndarray, lol_type: LolType) -> None:
        assert buf.shape == (1,)
        self.buf = buf
        self.lol_type = lol_type

    def read(self) -> object:
        v = self.buf[0]
        if self.lol_type is LolType.NUMBR:
            return int(v)
        if self.lol_type is LolType.TROOF:
            return bool(v)
        return float(v)

    def write(self, value: object) -> None:
        self.buf[0] = value

    @property
    def nbytes(self) -> int:
        return int(self.buf.nbytes)


class ArrayCell:
    """One PE's copy of a symmetric array.

    Numeric element types are stored in numpy arrays (contiguous, typed —
    the same layout the paper's C backend would produce); YARN/NOOB arrays
    fall back to Python lists and are only available on the thread
    executor.
    """

    __slots__ = ("data", "lol_type", "_conv")

    #: element-read converters back to host Python scalars, per type
    _CONVERTERS = {
        LolType.NUMBR: int,
        LolType.NUMBAR: float,
        LolType.TROOF: bool,
    }

    def __init__(self, lol_type: LolType, size: int, data=None) -> None:
        self.lol_type = lol_type
        self._conv = self._CONVERTERS.get(lol_type)
        if data is not None:
            self.data = data
        elif lol_type in NUMPY_DTYPES:
            self.data = np.zeros(size, dtype=NUMPY_DTYPES[lol_type])
        else:
            self.data = [default_value(lol_type)] * size

    def __len__(self) -> int:
        return len(self.data)

    def read(self, index: int) -> object:
        self._check(index)
        v = self.data[index]
        conv = self._conv
        return conv(v) if conv is not None else v

    def write(self, index: int, value: object) -> None:
        self._check(index)
        self.data[index] = value

    def read_all(self):
        if isinstance(self.data, np.ndarray):
            return self.data.copy()
        return list(self.data)

    def write_all(self, values) -> None:
        if isinstance(self.data, np.ndarray):
            self.data[:] = values
        else:
            if len(values) != len(self.data):
                raise LolRuntimeError(
                    f"array length mismatch: {len(values)} vs {len(self.data)}"
                )
            self.data[:] = list(values)

    @property
    def nbytes(self) -> int:
        if isinstance(self.data, np.ndarray):
            return int(self.data.nbytes)
        return 8 * len(self.data)

    def _check(self, index: int) -> None:
        if type(index) is not int and not isinstance(index, (int, np.integer)):
            raise LolRuntimeError(f"array index must be a NUMBR, got {index!r}")
        if index < 0 or index >= len(self.data):
            raise LolRuntimeError(
                f"array index {index} out of range [0, {len(self.data)})"
            )


@dataclass
class SymmetricObject:
    """A symmetric symbol: the same declaration replicated on every PE."""

    name: str
    lol_type: Optional[LolType]
    is_array: bool
    size: int
    has_lock: bool
    per_pe: list  # list[ScalarCell | ArrayCell], indexed by PE

    def cell(self, pe: int):
        return self.per_pe[pe]


class SymmetricHeap:
    """The collective symmetric heap shared by all PEs of a world.

    ``alloc`` is an SPMD-collective operation: every PE executes the same
    ``WE HAS A`` declaration; the first arrival materialises storage for
    *all* PEs and later arrivals attach to it (this mirrors how symmetric
    allocation works on real SHMEM implementations, where the symmetric
    heap offsets line up because every PE performs the same allocation
    sequence).
    """

    def __init__(self, n_pes: int) -> None:
        self.n_pes = n_pes
        self._symbols: dict[str, SymmetricObject] = {}
        self._mutex = threading.Lock()
        #: monotonic generation counter, bumped whenever the symbol table
        #: gains an entry.  The VM engine's inline caches key on it: a
        #: cached cell handle is valid only while the generation matches.
        self.version = 0

    def alloc(
        self,
        name: str,
        lol_type: Optional[LolType],
        *,
        is_array: bool = False,
        size: int = 1,
        has_lock: bool = False,
    ) -> SymmetricObject:
        with self._mutex:
            existing = self._symbols.get(name)
            if existing is not None:
                if (
                    existing.lol_type != lol_type
                    or existing.is_array != is_array
                    or existing.size != size
                ):
                    raise LolParallelError(
                        f"symmetric symbol '{name}' re-declared with a "
                        f"different shape/type on another PE"
                    )
                existing.has_lock = existing.has_lock or has_lock
                return existing
            if is_array:
                if size <= 0:
                    raise LolParallelError(
                        f"symmetric array '{name}' must have positive size, "
                        f"got {size}"
                    )
                per_pe = [
                    ArrayCell(lol_type or LolType.NUMBAR, size)
                    for _ in range(self.n_pes)
                ]
            else:
                init = default_value(lol_type) if lol_type else None
                per_pe = [ScalarCell(init) for _ in range(self.n_pes)]
            obj = SymmetricObject(name, lol_type, is_array, size, has_lock, per_pe)
            self._symbols[name] = obj
            self.version += 1
            return obj

    def attach(self, name: str, obj: SymmetricObject) -> None:
        """Register a pre-built symbol (used by the process executor)."""
        with self._mutex:
            self._symbols[name] = obj
            self.version += 1

    def lookup(self, name: str) -> SymmetricObject:
        obj = self._symbols.get(name)
        if obj is None:
            raise LolParallelError(
                f"'{name}' is not a symmetric symbol (declare it with "
                f"'WE HAS A {name} ...')"
            )
        return obj

    def contains(self, name: str) -> bool:
        return name in self._symbols

    def symbols(self) -> list[str]:
        return sorted(self._symbols)

    def partition_nbytes(self, pe: int) -> int:
        """Total bytes held by one PE's partition (Figure 1 accounting)."""
        return sum(obj.cell(pe).nbytes for obj in self._symbols.values())


@dataclass(slots=True)
class SymmetricPlan:
    """Pre-scanned symmetric allocation plan for the process executor.

    Shared-memory segments must exist before worker processes fork, so the
    launcher statically collects every ``WE HAS A`` in the program (the
    paper's model: "symmetric shared arrays and statically declared
    variables") and sizes the segments up front.
    """

    entries: dict[str, tuple[LolType, bool, int, bool]] = field(
        default_factory=dict
    )  # name -> (type, is_array, size, has_lock)

    def add(
        self, name: str, lol_type: LolType, is_array: bool, size: int, has_lock: bool
    ) -> None:
        prev = self.entries.get(name)
        entry = (lol_type, is_array, size, has_lock)
        if prev is not None and prev != entry:
            raise LolParallelError(
                f"conflicting symmetric declarations for '{name}'"
            )
        self.entries[name] = entry
