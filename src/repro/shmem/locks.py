"""Distributed locks for the SHMEM runtime.

The paper attaches an *implied global exclusive lock* to every symmetric
variable declared ``AN IM SHARIN IT`` (Table II); the language statements
``IM SRSLY MESIN WIF`` / ``IM MESIN WIF ... O RLY?`` / ``DUN MESIN WIF``
map onto the OpenSHMEM trio ``shmem_set_lock`` / ``shmem_test_lock`` /
``shmem_clear_lock``.

:class:`LockTable` provides those semantics over any mutex primitive with
``acquire(blocking=...)`` / ``release`` (``threading.Lock`` for the thread
executor, ``multiprocessing.Lock`` for the process executor).  OpenSHMEM
locks are owned by a PE rather than a thread, so the table additionally
tracks the owning PE to diagnose self-deadlock and foreign release —
both are programming errors in OpenSHMEM and we surface them as
:class:`~repro.lang.errors.LolParallelError` instead of hanging.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from ..lang.errors import LolParallelError


class LockTable:
    def __init__(self, lock_factory: Callable[[], object] | None = None) -> None:
        self._factory = lock_factory or threading.Lock
        self._locks: dict[str, object] = {}
        self._owners: dict[str, Optional[int]] = {}
        self._mutex = threading.Lock()

    def register(self, name: str, lock: object | None = None) -> None:
        """Create (or attach) the global lock protecting symbol ``name``."""
        with self._mutex:
            if name not in self._locks:
                self._locks[name] = lock if lock is not None else self._factory()
                self._owners[name] = None

    def is_registered(self, name: str) -> bool:
        with self._mutex:
            return name in self._locks

    def _lookup(self, name: str) -> object:
        with self._mutex:
            lock = self._locks.get(name)
        if lock is None:
            raise LolParallelError(
                f"variable '{name}' has no lock: declare it with "
                f"'WE HAS A {name} ... AN IM SHARIN IT'"
            )
        return lock

    def acquire(self, name: str, pe: int, timeout: float | None = None) -> None:
        """Blocking acquire (``IM SRSLY MESIN WIF``)."""
        lock = self._lookup(name)
        if self._owners.get(name) == pe:
            raise LolParallelError(
                f"PE {pe} already holds the lock on '{name}' "
                f"(OpenSHMEM locks are not reentrant)"
            )
        ok = lock.acquire(timeout=timeout) if timeout else lock.acquire()
        if not ok:
            raise LolParallelError(
                f"timed out acquiring the lock on '{name}' from PE {pe} "
                f"(possible deadlock)"
            )
        self._owners[name] = pe

    def try_acquire(self, name: str, pe: int) -> bool:
        """Non-blocking acquire (``IM MESIN WIF ..., O RLY?``).

        Returns True (WIN) when the lock was acquired.
        """
        lock = self._lookup(name)
        if self._owners.get(name) == pe:
            return False
        ok = lock.acquire(blocking=False)
        if ok:
            self._owners[name] = pe
        return ok

    def release(self, name: str, pe: int) -> None:
        """Release (``DUN MESIN WIF``)."""
        lock = self._lookup(name)
        owner = self._owners.get(name)
        if owner != pe:
            raise LolParallelError(
                f"PE {pe} cannot release the lock on '{name}' "
                f"(held by {'nobody' if owner is None else f'PE {owner}'})"
            )
        self._owners[name] = None
        lock.release()

    def owner(self, name: str) -> Optional[int]:
        return self._owners.get(name)

    def held_by(self, pe: int) -> list[str]:
        with self._mutex:
            return sorted(n for n, o in self._owners.items() if o == pe)
