"""A barrier-epoch data-race detector for the PGAS runtime.

Figure 2 of the paper motivates barriers by showing that, without ``HUGZ``,
a fast PE can read its copy of ``b`` before the remote PE's put has
landed.  This module detects exactly that class of bug.

The detector uses barrier epochs as the happens-before relation (the only
global synchronisation in the language is ``HUGZ``, so two accesses to the
same symbol's partition are concurrent iff they fall in the same epoch and
are issued by different PEs).  For every (symbol, owner-PE) partition we
remember the accesses of the current epoch; a race is reported when two
different PEs touch the same partition within one epoch and at least one
access is a write, unless both accesses were protected by the symbol's
implied lock (``IM SHARIN IT``).

This is intentionally symbol-granular (not element-granular): the paper's
teaching examples share whole variables/arrays, and symbol granularity
keeps the detector overhead tiny.  Element-granular detection can be
enabled for arrays via ``element_granularity=True``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class RaceReport:
    symbol: str
    owner_pe: int
    epoch: int
    first_pe: int
    first_kind: str  # "read" | "write"
    second_pe: int
    second_kind: str

    def describe(self) -> str:
        return (
            f"data race on '{self.symbol}' (partition of PE {self.owner_pe}, "
            f"barrier epoch {self.epoch}): PE {self.first_pe} {self.first_kind} "
            f"concurrently with PE {self.second_pe} {self.second_kind}; "
            f"add HUGZ or protect with IM SRSLY MESIN WIF"
        )


@dataclass(slots=True)
class _Access:
    pe: int
    kind: str
    locked: bool
    element: object  # index or None for whole-symbol access


@dataclass
class _PartitionState:
    """Accesses of the current epoch, deduplicated by
    (pe, kind, locked, element): repeated identical accesses add no new
    happens-before information, and deduplication keeps ``on_access``
    O(distinct access classes) instead of O(total accesses) — essential
    for loops like the n-body force phase that touch a partition
    thousands of times per epoch."""

    epoch: int = -1
    accesses: dict[tuple, _Access] = field(default_factory=dict)


class RaceDetector:
    """Tracks accesses to symmetric partitions and reports epoch races."""

    def __init__(self, element_granularity: bool = False) -> None:
        self.element_granularity = element_granularity
        self._partitions: dict[tuple[str, int], _PartitionState] = {}
        self._reports: list[RaceReport] = []
        self._seen: set[tuple] = set()
        self._mutex = threading.Lock()

    # -- runtime hooks ----------------------------------------------------

    def on_access(
        self,
        symbol: str,
        owner_pe: int,
        acting_pe: int,
        kind: str,
        epoch: int,
        *,
        locked: bool = False,
        element: object = None,
    ) -> None:
        if not self.element_granularity:
            element = None
        with self._mutex:
            state = self._partitions.setdefault(
                (symbol, owner_pe), _PartitionState()
            )
            if state.epoch != epoch:
                state.epoch = epoch
                state.accesses.clear()
            access_key = (acting_pe, kind, locked, element)
            if access_key in state.accesses:
                return  # identical access already recorded this epoch
            new = _Access(acting_pe, kind, locked, element)
            for prev in state.accesses.values():
                if prev.pe == acting_pe:
                    continue
                if prev.kind == "read" and kind == "read":
                    continue
                if prev.locked and locked:
                    continue  # both inside the implied lock: ordered
                if (
                    self.element_granularity
                    and prev.element is not None
                    and element is not None
                    and prev.element != element
                ):
                    continue
                key = (symbol, owner_pe, epoch, prev.pe, acting_pe)
                if key in self._seen:
                    continue
                self._seen.add(key)
                self._reports.append(
                    RaceReport(
                        symbol,
                        owner_pe,
                        epoch,
                        prev.pe,
                        prev.kind,
                        acting_pe,
                        kind,
                    )
                )
            state.accesses[access_key] = new

    # -- results ------------------------------------------------------------

    @property
    def reports(self) -> list[RaceReport]:
        with self._mutex:
            return list(self._reports)

    def clear(self) -> None:
        with self._mutex:
            self._partitions.clear()
            self._reports.clear()
            self._seen.clear()

    def has_race_on(self, symbol: str) -> bool:
        return any(r.symbol == symbol for r in self.reports)
