"""Process-based SPMD executor: true parallelism over shared memory.

The thread executor is concurrency-correct but, due to the CPython GIL,
compute-bound PEs do not speed up.  This executor launches one *process*
per PE with the symmetric heap backed by a ``multiprocessing.shared_memory``
segment, giving genuine parallel execution of numeric kernels — the
closest Python equivalent of the paper's OpenSHMEM-on-Epiphany deployment.

Restrictions (the same ones real OpenSHMEM imposes):

* symmetric data must be statically typed and numeric
  (NUMBR/NUMBAR/TROOF) — YARN symmetric data is thread-executor only;
* the symmetric allocation set must be known up front: the launcher
  pre-scans the program for ``WE HAS A`` declarations into a
  :class:`~repro.shmem.heap.SymmetricPlan` ("statically declared
  variables", exactly the paper's memory model);
* the race detector is unavailable (it needs shared Python state).

The worker callable must be picklable (a module-level function), because
workers are started with the ``spawn`` method for robustness against
forked locks.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Optional, Sequence

import numpy as np

from .. import obs as _obs
from ..lang.errors import LolParallelError
from ..lang.types import NUMPY_DTYPES, LolType
from .api import DEFAULT_BARRIER_TIMEOUT, ShmemContext, World, _EpochBox
from .heap import ArrayCell, NumpyScalarCell, SymmetricHeap, SymmetricObject, SymmetricPlan
from .locks import LockTable
from .runtime_threads import SpmdResult
from .trace import OpTrace, merge_traces

_ITEM = 8  # bytes per element (int64 / float64)


@dataclass(frozen=True, slots=True)
class _SymbolLayout:
    name: str
    lol_type: str  # LolType value name
    is_array: bool
    size: int
    has_lock: bool
    offset: int  # element offset into the shared block


@dataclass(frozen=True, slots=True)
class _WorldSpec:
    """Everything a worker needs to reconstruct the shared world."""

    n_pes: int
    shm_name: str
    symbols: tuple[_SymbolLayout, ...]
    lock_names: tuple[str, ...]
    exchange_offset: int  # element offset of the n_pes collective slots
    owners_offset: int  # element offset of the lock-owner array
    barrier_timeout: float


def plan_layout(plan: SymmetricPlan, n_pes: int) -> tuple[list[_SymbolLayout], int]:
    """Assign element offsets for every planned symbol (all PEs' copies of a
    symbol are contiguous: ``offset + pe * size``)."""
    layouts: list[_SymbolLayout] = []
    cursor = 0
    for name in sorted(plan.entries):
        lol_type, is_array, size, has_lock = plan.entries[name]
        if lol_type not in NUMPY_DTYPES:
            raise LolParallelError(
                f"symmetric symbol '{name}' has type {lol_type}, but the "
                f"process executor supports only numeric symmetric data "
                f"(use the thread executor for YARN)"
            )
        layouts.append(
            _SymbolLayout(name, lol_type.value, is_array, size, has_lock, cursor)
        )
        cursor += size * n_pes
    return layouts, cursor


class _ProcLockTable(LockTable):
    """Lock table whose owner bookkeeping lives in shared memory.

    ``owners[i]`` holds the PE currently owning lock ``i`` (-1 when free).
    The owner slot is only mutated while holding the underlying mp.Lock,
    so no extra synchronisation is needed.
    """

    def __init__(
        self, locks: dict[str, object], owners: np.ndarray, index: dict[str, int]
    ) -> None:
        super().__init__()
        self._locks = dict(locks)
        self._shared_owners = owners
        self._index = index

    def register(self, name: str, lock: object | None = None) -> None:
        if name not in self._locks:
            raise LolParallelError(
                f"lock '{name}' was not in the symmetric plan (process "
                f"executor requires statically declared shared variables)"
            )

    def _slot(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise LolParallelError(
                f"variable '{name}' has no lock: declare it with "
                f"'WE HAS A {name} ... AN IM SHARIN IT'"
            ) from None

    def acquire(self, name: str, pe: int, timeout: float | None = None) -> None:
        slot = self._slot(name)
        lock = self._locks[name]
        if self._shared_owners[slot] == pe:
            raise LolParallelError(
                f"PE {pe} already holds the lock on '{name}' "
                f"(OpenSHMEM locks are not reentrant)"
            )
        ok = lock.acquire(timeout=timeout) if timeout else lock.acquire()
        if not ok:
            raise LolParallelError(
                f"timed out acquiring the lock on '{name}' from PE {pe}"
            )
        self._shared_owners[slot] = pe

    def try_acquire(self, name: str, pe: int) -> bool:
        slot = self._slot(name)
        lock = self._locks[name]
        if self._shared_owners[slot] == pe:
            return False
        ok = lock.acquire(block=False)
        if ok:
            self._shared_owners[slot] = pe
        return ok

    def release(self, name: str, pe: int) -> None:
        slot = self._slot(name)
        lock = self._locks[name]
        owner = int(self._shared_owners[slot])
        if owner != pe:
            raise LolParallelError(
                f"PE {pe} cannot release the lock on '{name}' "
                f"(held by {'nobody' if owner < 0 else f'PE {owner}'})"
            )
        self._shared_owners[slot] = -1
        lock.release()

    def owner(self, name: str) -> Optional[int]:
        owner = int(self._shared_owners[self._slot(name)])
        return None if owner < 0 else owner


class _ProcEpochBox(_EpochBox):
    def __init__(self, shared_value) -> None:  # mp.Value('i')
        self._shared = shared_value

    def increment(self) -> None:
        with self._shared.get_lock():
            self._shared.value += 1

    def read(self) -> int:
        return self._shared.value


def _build_world(
    spec: _WorldSpec, barrier, locks: dict[str, object], epoch_value, atomic_lock
) -> tuple[World, shared_memory.SharedMemory]:
    shm = shared_memory.SharedMemory(name=spec.shm_name)
    heap = SymmetricHeap(spec.n_pes)
    for lay in spec.symbols:
        lol_type = LolType(lay.lol_type)
        dtype = NUMPY_DTYPES[lol_type]
        per_pe = []
        for pe in range(spec.n_pes):
            start = (lay.offset + pe * lay.size) * _ITEM
            view = np.ndarray(
                (lay.size,), dtype=dtype, buffer=shm.buf, offset=start
            )
            if lay.is_array:
                per_pe.append(ArrayCell(lol_type, lay.size, data=view))
            else:
                per_pe.append(NumpyScalarCell(view, lol_type))
        heap.attach(
            lay.name,
            SymmetricObject(
                lay.name, lol_type, lay.is_array, lay.size, lay.has_lock, per_pe
            ),
        )
    owners = np.ndarray(
        (max(1, len(spec.lock_names)),),
        dtype="int64",
        buffer=shm.buf,
        offset=spec.owners_offset * _ITEM,
    )
    exchange = np.ndarray(
        (spec.n_pes,), dtype="float64", buffer=shm.buf,
        offset=spec.exchange_offset * _ITEM,
    )
    lock_table = _ProcLockTable(
        locks, owners, {n: i for i, n in enumerate(spec.lock_names)}
    )
    world = World(
        spec.n_pes,
        barrier=barrier,
        heap=heap,
        locks=lock_table,
        epoch_box=_ProcEpochBox(epoch_value),
        exchange=exchange,
        atomic_mutex=atomic_lock,
        barrier_timeout=spec.barrier_timeout,
    )
    return world, shm


def _proc_worker(
    pe: int,
    spec: _WorldSpec,
    barrier,
    locks,
    epoch_value,
    atomic_lock,
    pe_main,
    seed,
    stdin_lines,
    trace,
    queue,
) -> None:
    shm = None
    try:
        world, shm = _build_world(spec, barrier, locks, epoch_value, atomic_lock)
        ctx = ShmemContext(
            world, pe, seed=seed, stdin_lines=stdin_lines, trace=trace
        )
        ret = pe_main(ctx)
        # Final wire field: the worker's drained observability payload
        # (spans + metrics delta), or None when the plane is disarmed —
        # the worker self-armed at import if LOL_OBS rode the spawn env.
        queue.put(("ok", pe, ctx.output, ret, ctx.trace, _obs.drain()))
    except BaseException as exc:  # noqa: BLE001 - marshalled to parent
        import traceback

        queue.put(
            ("error", pe, traceback.format_exc(), repr(exc), None, _obs.drain())
        )
        try:
            barrier.abort()
        except Exception:
            pass
    finally:
        if shm is not None:
            shm.close()


def run_spmd_procs(
    pe_main: Callable[[ShmemContext], object],
    n_pes: int,
    plan: SymmetricPlan,
    *,
    seed: Optional[int] = None,
    stdin_lines: Optional[Sequence[Sequence[str]]] = None,
    trace: bool = False,
    barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
    start_method: str = "spawn",
) -> SpmdResult:
    """Execute ``pe_main(ctx)`` on ``n_pes`` OS processes.

    ``plan`` must describe every symmetric symbol the program allocates
    (build it with :func:`repro.launcher.spmd.plan_from_program` for
    LOLCODE programs, or by hand for raw Python SPMD workers).
    """
    if n_pes < 1:
        raise LolParallelError(f"need at least 1 PE, got {n_pes}")
    mpctx = mp.get_context(start_method)
    layouts, data_elems = plan_layout(plan, n_pes)
    lock_names = tuple(lay.name for lay in layouts if lay.has_lock)
    exchange_offset = data_elems
    owners_offset = data_elems + n_pes
    total_elems = owners_offset + max(1, len(lock_names))
    shm = shared_memory.SharedMemory(create=True, size=max(1, total_elems * _ITEM))
    try:
        # Zero the whole block (shared_memory contents are undefined).
        np.ndarray((total_elems,), dtype="int64", buffer=shm.buf)[:] = 0
        owners = np.ndarray(
            (max(1, len(lock_names)),),
            dtype="int64",
            buffer=shm.buf,
            offset=owners_offset * _ITEM,
        )
        owners[:] = -1
        spec = _WorldSpec(
            n_pes=n_pes,
            shm_name=shm.name,
            symbols=tuple(layouts),
            lock_names=lock_names,
            exchange_offset=exchange_offset,
            owners_offset=owners_offset,
            barrier_timeout=barrier_timeout,
        )
        epoch_value = mpctx.Value("i", 0)
        epoch_box = _ProcEpochBox(epoch_value)
        barrier = mpctx.Barrier(n_pes, action=epoch_box.increment)
        locks = {name: mpctx.Lock() for name in lock_names}
        atomic_lock = mpctx.Lock()
        queue = mpctx.Queue()
        procs = [
            mpctx.Process(
                target=_proc_worker,
                args=(
                    pe,
                    spec,
                    barrier,
                    locks,
                    epoch_value,
                    atomic_lock,
                    pe_main,
                    seed,
                    stdin_lines[pe] if stdin_lines else None,
                    trace,
                    queue,
                ),
                name=f"PE-{pe}",
                daemon=True,
            )
            for pe in range(n_pes)
        ]
        for p in procs:
            p.start()
        # Drain with per-PE completion tracking.  A single queue.get
        # timeout must not end the drain: the PEs that *did* finish
        # already have results in flight, and the error should name
        # exactly the ranks that never reported.  The deadline is a
        # *silence* window — every arriving message pushes it out — so
        # staggered-but-healthy PEs are not cut off at a fixed total.
        results: dict[int, tuple] = {}
        error_pes: set[int] = set()
        errors: list[tuple] = []
        drain_timeout = barrier_timeout * 2
        deadline = time.monotonic() + drain_timeout
        while len(results) + len(error_pes) < n_pes:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                msg = queue.get(timeout=min(remaining, 1.0))
            except Exception:
                # No message this tick.  If every unreported PE's process
                # is already dead, nothing more can arrive — stop early
                # instead of waiting out the full deadline.
                pending = [
                    pe
                    for pe in range(n_pes)
                    if pe not in results and pe not in error_pes
                ]
                if pending and not any(procs[pe].is_alive() for pe in pending):
                    break
                continue
            deadline = time.monotonic() + drain_timeout
            if msg[0] == "error":
                error_pes.add(msg[1])
                errors.append(msg)
                # Keep draining: a crashing PE aborts the barrier and
                # siblings then fail with secondary "barrier broken"
                # errors; we want the root cause, not whichever error
                # reached the queue first.
                continue
            results[msg[1]] = msg
        stragglers = sorted(
            pe for pe in range(n_pes) if pe not in results and pe not in error_pes
        )
        # Prefer a root-cause error over secondary barrier-broken ones.
        error: Optional[tuple] = None
        if errors:
            errors.sort(key=lambda e: ("barrier broken" in str(e[3]), e[1]))
            error = errors[0]
        for p in procs:
            p.join(timeout=5.0)
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        if error is not None:
            for failed in errors:
                _obs.absorb(failed[5])
            _, pe, tb, brief, _, _ = error
            raise LolParallelError(
                f"PE {pe} failed in process executor: {brief}\n{tb}"
            )
        if stragglers:
            finished = sorted(results)
            raise LolParallelError(
                f"PE(s) {stragglers} did not report a result within "
                f"{drain_timeout:.1f}s of the last completion (completed: "
                f"{finished if finished else 'none'})"
            )
        outputs = [results[pe][2] for pe in range(n_pes)]
        returns = [results[pe][3] for pe in range(n_pes)]
        traces: list[Optional[OpTrace]] = [results[pe][4] for pe in range(n_pes)]
        for pe in range(n_pes):
            _obs.absorb(results[pe][5])
        merged = merge_traces(traces) if trace else None
        return SpmdResult(
            n_pes=n_pes,
            outputs=outputs,
            returns=returns,
            trace=merged,
            races=[],
            heap_symbols=sorted(plan.entries),
        )
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - platform dependent
            pass
