"""Thread-based SPMD executor.

Runs one Python thread per PE against a shared :class:`~repro.shmem.api.World`.
This is the default executor: it supports every language feature (including
YARN-typed symmetric data and the race detector), starts in microseconds,
and gives deterministic output capture — at the cost of no true parallel
speedup for compute-bound code (the CPython GIL serialises bytecode; see
DESIGN.md and the process executor for the true-parallelism path).

If any PE raises, the barrier is aborted so sibling PEs blocked in ``HUGZ``
fail fast instead of deadlocking, and the first error is re-raised in the
caller annotated with its PE id.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..lang.errors import LolError, LolParallelError
from .api import DEFAULT_BARRIER_TIMEOUT, ShmemContext, World
from .racecheck import RaceReport
from .trace import OpTrace, WorldTrace, merge_traces


@dataclass
class SpmdResult:
    """Outcome of one SPMD execution."""

    n_pes: int
    outputs: list[str]  # VISIBLE output per PE
    returns: list[object]  # per-PE return value of the entry function
    trace: Optional[WorldTrace] = None
    races: list[RaceReport] = field(default_factory=list)
    heap_symbols: list[str] = field(default_factory=list)
    #: Set by the launcher when the requested engine failed and an
    #: opt-in ``fallback_engine`` produced this result instead.
    degraded: bool = False
    degraded_reason: Optional[str] = None

    @property
    def output(self) -> str:
        """All PE outputs concatenated in PE order (deterministic)."""
        return "".join(self.outputs)


@dataclass
class _PeError:
    pe: int
    error: BaseException


def run_spmd(
    pe_main: Callable[[ShmemContext], object],
    n_pes: int,
    *,
    seed: Optional[int] = None,
    stdin_lines: Optional[Sequence[Sequence[str]]] = None,
    trace: bool = False,
    trace_detail: bool = True,
    race_detection: bool = False,
    element_granularity: bool = False,
    barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
    world: Optional[World] = None,
) -> SpmdResult:
    """Execute ``pe_main(ctx)`` on ``n_pes`` concurrent PEs.

    ``stdin_lines`` optionally provides per-PE GIMMEH input:
    ``stdin_lines[pe]`` is the sequence of lines available to that PE.
    """
    if n_pes < 1:
        raise LolParallelError(f"need at least 1 PE, got {n_pes}")
    if world is None:
        world = World.for_threads(
            n_pes,
            race_detection=race_detection,
            element_granularity=element_granularity,
            barrier_timeout=barrier_timeout,
        )
    contexts = [
        ShmemContext(
            world,
            pe,
            seed=seed,
            stdin_lines=stdin_lines[pe] if stdin_lines else None,
            trace=trace,
            trace_detail=trace_detail,
        )
        for pe in range(n_pes)
    ]
    returns: list[object] = [None] * n_pes
    errors: list[_PeError] = []
    errors_mutex = threading.Lock()

    def runner(pe: int) -> None:
        try:
            returns[pe] = pe_main(contexts[pe])
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            with errors_mutex:
                errors.append(_PeError(pe, exc))
            # Unblock any sibling waiting in HUGZ.
            world.barrier.abort()

    if n_pes == 1:
        # Run inline: cheaper, and keeps single-PE tracebacks readable.
        runner(0)
    else:
        threads = [
            threading.Thread(target=runner, args=(pe,), name=f"PE-{pe}", daemon=True)
            for pe in range(n_pes)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=barrier_timeout * 2)
            if t.is_alive():
                world.barrier.abort()
                raise LolParallelError(
                    f"SPMD thread {t.name} failed to terminate (deadlock?)"
                )

    if errors:
        # A crashing PE aborts the barrier, which makes sibling PEs fail
        # with secondary "barrier broken" errors; report the root cause.
        def _is_secondary(e: _PeError) -> bool:
            return isinstance(e.error, LolError) and "barrier broken" in str(
                e.error
            )

        errors.sort(key=lambda e: (_is_secondary(e), e.pe))
        first = errors[0]
        if isinstance(first.error, LolError):
            raise LolParallelError(
                f"PE {first.pe} failed: {first.error.render()}",
                first.error.pos,
            ) from first.error
        raise first.error

    merged: Optional[WorldTrace] = None
    if trace:
        merged = merge_traces([ctx.trace for ctx in contexts])
    races = world.race_detector.reports if world.race_detector else []
    return SpmdResult(
        n_pes=n_pes,
        outputs=[ctx.output for ctx in contexts],
        returns=returns,
        trace=merged,
        races=races,
        heap_symbols=world.heap.symbols(),
    )
