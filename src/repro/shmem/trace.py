"""Operation tracing for the SHMEM runtime.

Every remote memory operation, barrier, and lock operation can be recorded
into a per-PE :class:`OpTrace`.  Traces are the bridge between the
functional simulation and the NoC performance model (:mod:`repro.noc`):
benchmarks execute a program once on the Python runtime, then replay the
trace against a machine model (Epiphany-III, Cray XC40) to obtain modeled
execution times — this is how we substitute for the paper's hardware.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional


class OpKind(enum.Enum):
    PUT = "put"
    GET = "get"
    BARRIER = "barrier"
    LOCK = "lock"
    TRYLOCK = "trylock"
    UNLOCK = "unlock"
    ATOMIC = "atomic"
    BCAST = "broadcast"
    REDUCE = "reduce"
    LOCAL_READ = "local_read"
    LOCAL_WRITE = "local_write"


@dataclass(frozen=True, slots=True)
class OpEvent:
    """One runtime event, as observed from the initiating PE."""

    kind: OpKind
    src_pe: int
    dst_pe: int  # -1 for collectives
    nbytes: int = 0
    symbol: str = ""
    epoch: int = 0  # barrier epoch at which the op occurred


@dataclass
class OpTrace:
    """A per-PE trace of runtime events plus cheap aggregate counters."""

    pe: int
    events: list[OpEvent] = field(default_factory=list)
    detailed: bool = True

    # aggregate counters (always maintained, even when detailed=False)
    counts: Counter = field(default_factory=Counter)
    remote_bytes_put: int = 0
    remote_bytes_got: int = 0
    local_flops: int = 0

    def record(self, event: OpEvent) -> None:
        self.counts[event.kind] += 1
        if event.kind is OpKind.PUT and event.dst_pe != event.src_pe:
            self.remote_bytes_put += event.nbytes
        elif event.kind is OpKind.GET and event.dst_pe != event.src_pe:
            self.remote_bytes_got += event.nbytes
        if self.detailed:
            self.events.append(event)

    def add_flops(self, n: int) -> None:
        self.local_flops += n

    def remote_ops(self) -> list[OpEvent]:
        return [
            e
            for e in self.events
            if e.kind in (OpKind.PUT, OpKind.GET, OpKind.ATOMIC)
            and e.dst_pe != e.src_pe
        ]

    def barrier_count(self) -> int:
        return self.counts[OpKind.BARRIER]


@dataclass
class WorldTrace:
    """Merged traces from every PE of a finished SPMD run."""

    per_pe: list[OpTrace]

    @property
    def n_pes(self) -> int:
        return len(self.per_pe)

    def all_events(self) -> Iterable[OpEvent]:
        for t in self.per_pe:
            yield from t.events

    def total(self, kind: OpKind) -> int:
        return sum(t.counts[kind] for t in self.per_pe)

    def total_remote_bytes(self) -> int:
        return sum(t.remote_bytes_put + t.remote_bytes_got for t in self.per_pe)

    def total_flops(self) -> int:
        return sum(t.local_flops for t in self.per_pe)

    def max_barrier_epoch(self) -> int:
        return max((t.barrier_count() for t in self.per_pe), default=0)

    def summary(self) -> dict[str, object]:
        return {
            "n_pes": self.n_pes,
            "puts": self.total(OpKind.PUT),
            "gets": self.total(OpKind.GET),
            "barriers": self.total(OpKind.BARRIER),
            "locks": self.total(OpKind.LOCK) + self.total(OpKind.TRYLOCK),
            "remote_bytes": self.total_remote_bytes(),
            "flops": self.total_flops(),
        }


def merge_traces(traces: list[Optional[OpTrace]]) -> WorldTrace:
    return WorldTrace([t for t in traces if t is not None])
