"""Single-flight guard for memoized compilation.

The compiled-program caches (:func:`repro.interp.compile_closures_cached`
and :func:`repro.compiler.compile_python_cached`) are ``lru_cache``-backed,
and ``lru_cache`` releases its internal lock *while the wrapped function
runs*: N threads asking for the same not-yet-cached key all compile, and
N-1 results are thrown away.  That was harmless when every caller was one
SPMD launch; it is not once the execution service accepts concurrent
submissions of the same source.

:class:`SingleFlight` serialises callers *per key*: the first caller
computes (populating the LRU underneath), later callers block on the same
key's lock and then hit the warm cache.  Distinct keys never contend, and
a failed computation is not cached — a blocked caller retries and sees
the same deterministic error.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable, TypeVar

from . import obs as _obs

T = TypeVar("T")

#: Callers that found another computation of their key already in
#: flight — i.e. compiles the guard saved.  Registry-backed so the
#: Prometheus ``metrics`` op sees it next to the compile-cache gauges.
_M_CONTENDED = _obs.get_registry().counter(
    "lol_singleflight_contended_total",
    "Single-flight callers that piggybacked on an in-flight computation",
)


class SingleFlight:
    """Per-key in-flight guard around an (externally memoized) callable."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        #: key -> [per-key lock, number of callers holding a reference]
        self._inflight: dict[Hashable, list] = {}

    def guard(self, key: Hashable, fn: Callable[[], T]) -> T:
        """Run ``fn()`` with at most one concurrent execution per ``key``.

        ``fn`` must be idempotent and memoized (an LRU hit on re-entry):
        the guard guarantees *serialisation*, the memo guarantees the
        second caller reuses the first caller's result.
        """
        with self._mutex:
            entry = self._inflight.get(key)
            if entry is None:
                entry = [threading.Lock(), 0]
                self._inflight[key] = entry
            else:
                _M_CONTENDED.inc()
            entry[1] += 1
        try:
            with entry[0]:
                return fn()
        finally:
            with self._mutex:
                entry[1] -= 1
                if entry[1] == 0 and self._inflight.get(key) is entry:
                    del self._inflight[key]

    def inflight_keys(self) -> int:
        """Number of keys with callers currently in flight (for tests)."""
        with self._mutex:
            return len(self._inflight)


def single_flight(cached_fn: Callable[..., T]) -> Callable[..., T]:
    """Wrap an ``lru_cache``-decorated function in a single-flight guard.

    The wrapper forwards positional arguments only (matching how the
    compile caches are called) and re-exports ``cache_clear`` /
    ``cache_info`` from the underlying LRU so existing cache-management
    call sites keep working.
    """
    flight = SingleFlight()

    def wrapper(*args):
        return flight.guard(args, lambda: cached_fn(*args))

    wrapper.__name__ = getattr(cached_fn, "__name__", "cached")
    wrapper.__doc__ = cached_fn.__doc__
    wrapper.cache_clear = cached_fn.cache_clear
    wrapper.cache_info = cached_fn.cache_info
    wrapper.__wrapped__ = cached_fn
    wrapper._single_flight = flight
    return wrapper
