"""Register-bytecode VM engine — the fastest pure-Python path.

The fourth interpreter tier (after ``ast``, ``closure`` and the native
``c`` engine): LOLCODE AST is compiled once into flat register-machine
bytecode (:mod:`repro.vm.compile` over the ISA in :mod:`repro.vm.isa`)
and executed by a dispatch loop with superinstructions and inline
caches (:mod:`repro.vm.machine`).  ``loldis`` (:mod:`repro.vm.dis`)
disassembles the bytecode for inspection and snapshot tests.

Select it with ``run_lolcode(..., engine="vm")`` or ``--engine vm``.
"""

from .compile import compile_program_vm
from .dis import disassemble, disassemble_source
from .isa import CodeObject, VMFunction, VMProgram
from .machine import Machine

__all__ = [
    "CodeObject",
    "Machine",
    "VMFunction",
    "VMProgram",
    "compile_program_vm",
    "disassemble",
    "disassemble_source",
]
