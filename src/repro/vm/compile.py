"""AST -> register bytecode compiler for the VM engine.

Mirrors :class:`~repro.interp.closures.ClosureCompiler` statement for
statement — same :mod:`repro.lang.resolve` slot allocation, same scope
discipline (loop pre-scan, pending function queue against the final root
scope), same error sites and messages — but emits flat instruction
tuples (:mod:`repro.vm.isa`) instead of nested closures, so the machine
runs one dispatch loop instead of a call tree.

Expression temporaries share the variable :class:`FrameLayout`: each
statement draws temps from a free list and returns them when the
statement ends, so a loop body reuses the same handful of slots forever.
Because only the *final* instruction of an expression writes its
destination, compiling an expression directly into a variable slot
(``x R SUM OF x AN 1`` -> one ``ADD_SC`` with dst == operand) is safe.

Peephole superinstructions emitted here:

* fused compare-branches (``BR_*``) for ``O RLY?`` / loop conditions;
* ``INC_JMP`` — counter increment + back-edge;
* ``PUT_BARRIER`` — a ``UR``-put immediately followed by ``HUGZ``;
* ``GET_BIN`` — a remote get feeding a binary op into a local scalar;
* ``LOOP_VEC`` — whole counted loops vectorized by
  :mod:`repro.vm.vectorize` (guarded; falls back to the scalar loop).
"""

from __future__ import annotations

from typing import Optional

from ..lang import ast
from ..lang.errors import (
    LolNameError,
    LolParallelError,
    LolRuntimeError,
    LolTypeError,
    SourcePos,
)
from ..lang.resolve import GLOBAL, LOCAL, MISSING, SYMMETRIC, FrameLayout, ScopeStack
from ..lang.types import LolType, default_value, parse_type
from ..interp.env import UNDECLARED
from ..interp.values import BINOP_FUNCS, FLOP_COST, NARYOP_FUNCS, UNOP_FUNCS
from . import isa
from .isa import CodeObject, Label, VMFunction, VMProgram

_NUMBR = LolType.NUMBR
_NUMBAR = LolType.NUMBAR

#: Specialized arithmetic opcodes (ss, sc, cs) per BinOp op name.
_ARITH_OPS = {
    "add": (isa.ADD_SS, isa.ADD_SC, isa.ADD_CS),
    "sub": (isa.SUB_SS, isa.SUB_SC, isa.SUB_CS),
    "mul": (isa.MUL_SS, isa.MUL_SC, isa.MUL_CS),
}

#: Fused branch-if-true opcodes (ss, sc) per comparison op; the matching
#: branch-if-false is the complement row.
_BR_TRUE = {
    "eq": (isa.BR_EQ_SS, isa.BR_EQ_SC),
    "ne": (isa.BR_NE_SS, isa.BR_NE_SC),
    "gt": (isa.BR_GT_SS, isa.BR_GT_SC),
    "lt": (isa.BR_LT_SS, isa.BR_LT_SC),
}
_BR_FALSE = {
    "eq": (isa.BR_NE_SS, isa.BR_NE_SC),
    "ne": (isa.BR_EQ_SS, isa.BR_EQ_SC),
    "gt": (isa.BR_LE_SS, isa.BR_LE_SC),
    "lt": (isa.BR_GE_SS, isa.BR_GE_SC),
}
#: Relation swap for canonicalising ``<const> OP <slot>`` into _SC form.
#: Only applied when the constant is a numeric literal (numeric literals
#: never fail coercion, so evaluation-order of errors is preserved).
_SWAP_REL = {"eq": "eq", "ne": "ne", "gt": "lt", "lt": "gt"}

#: Expression node types whose value is always a scalar, so an untyped
#: local store can skip the ``is_scalar_value`` check.
_SCALAR_NODES = (
    ast.IntLit,
    ast.FloatLit,
    ast.TroofLit,
    ast.NoobLit,
    ast.StringLit,
    ast.MeExpr,
    ast.FrenzExpr,
    ast.RandomExpr,
    ast.BinOp,
    ast.UnaryOp,
    ast.NaryOp,
    ast.Index,
)


def _undeclared_raiser(name: str, pos: SourcePos):
    def raise_it() -> None:
        raise LolNameError(
            f"variable '{name}' has not been declared (I HAS A {name})", pos
        )

    return raise_it


def _message_raiser(exc_type, message: str, pos: SourcePos):
    def raise_it() -> None:
        raise exc_type(message, pos)

    return raise_it


class _Asm:
    """Instruction buffer for one code object (program, function, mini)."""

    __slots__ = (
        "name",
        "layout",
        "code",
        "positions",
        "free_temps",
        "stmt_temps",
        "n_caches",
        "is_function",
        "break_stack",
        "txt_depth",
    )

    def __init__(self, name: str, layout: FrameLayout, is_function: bool) -> None:
        self.name = name
        self.layout = layout
        self.code: list = []
        self.positions: list = []
        self.free_temps: list[int] = []
        self.stmt_temps: list[int] = []
        self.n_caches = 0
        self.is_function = is_function
        #: (exit_label, txt_depth_at_entry) for enclosing loops/switches.
        self.break_stack: list[tuple[Label, int]] = []
        self.txt_depth = 0

    def emit(self, ins: tuple, pos: SourcePos) -> int:
        pc = len(self.code)
        self.code.append(ins)
        self.positions.append(pos)
        return pc

    def label(self) -> Label:
        return Label()

    def mark(self, label: Label) -> None:
        label.pc = len(self.code)

    def temp(self) -> int:
        if self.free_temps:
            slot = self.free_temps.pop()
        else:
            slot = self.layout.alloc()
        self.stmt_temps.append(slot)
        return slot

    def end_stmt(self) -> None:
        if self.stmt_temps:
            self.free_temps.extend(self.stmt_temps)
            self.stmt_temps.clear()

    def cache_slot(self) -> int:
        idx = self.n_caches
        self.n_caches += 1
        return idx

    def finish(self, n_slots: int) -> CodeObject:
        return CodeObject(
            self.name,
            isa.patch_jumps(self.code),
            tuple(self.positions),
            n_slots,
            self.n_caches,
        )


class VMCompiler:
    """One-shot AST -> bytecode translation for one program."""

    def __init__(
        self,
        program: ast.Program,
        *,
        count_flops: bool = False,
        count_steps: bool = False,
        vectorize: bool = True,
    ) -> None:
        self.program = program
        self.count_flops = count_flops
        self.count_steps = count_steps
        # Vectorization changes per-statement step accounting and skips
        # the per-op FLOP counters, so step limits and FLOP tracing both
        # disable it outright (every bail path stays correct).
        self.vectorize = vectorize and not count_steps and not count_flops
        # Whole-program facts from the static analyzer let the
        # vectorizer admit plans that are only sound under a proven
        # property (e.g. a symmetric trip count no peer ever writes).
        if self.vectorize:
            from ..analysis.facts import compute_facts

            self.facts = compute_facts(program)
        else:
            from ..analysis.facts import ProgramFacts

            self.facts = ProgramFacts()
        self.root_layout = FrameLayout()
        self.root_scope = ScopeStack(self.root_layout)
        self._pending_funcs: list[tuple[ast.FuncDef, VMFunction]] = []
        self._compiled_funcs: dict[int, VMFunction] = {}

    def compile(self) -> VMProgram:
        hoisted: dict[str, VMFunction] = {}
        for stmt in self.program.body:
            if isinstance(stmt, ast.FuncDef):
                hoisted[stmt.name] = self._function_stub(stmt)
        asm = _Asm("<main>", self.root_layout, is_function=False)
        self._block(self.program.body, self.root_scope, asm)
        asm.emit((isa.HALT,), self.program.pos)
        while self._pending_funcs:
            node, vmf = self._pending_funcs.pop()
            self._fill_function(node, vmf)
        co = asm.finish(self.root_layout.n_slots)
        return VMProgram(co, hoisted, self.count_flops, self.count_steps)

    # -- functions --------------------------------------------------------

    def _function_stub(self, node: ast.FuncDef) -> VMFunction:
        vmf = self._compiled_funcs.get(id(node))
        if vmf is None:
            vmf = VMFunction(node.name, len(node.params), (), None, node.pos)
            self._compiled_funcs[id(node)] = vmf
            self._pending_funcs.append((node, vmf))
        return vmf

    def _fill_function(self, node: ast.FuncDef, vmf: VMFunction) -> None:
        layout = FrameLayout()
        scope = ScopeStack(layout, root=self.root_scope)
        param_slots = []
        for param in node.params:
            param_slots.append(scope.declare(param).slot)
        vmf.param_slots = tuple(param_slots)
        asm = _Asm(node.name, layout, is_function=True)
        self._block(node.body, scope, asm)
        asm.emit((isa.RET, 0), node.pos)  # fall off the end: IT is returned
        vmf.co = asm.finish(layout.n_slots)

    # -- blocks and statements -------------------------------------------

    def _block(self, stmts: list, scope: ScopeStack, asm: _Asm) -> None:
        i = 0
        n = len(stmts)
        while i < n:
            stmt = stmts[i]
            if self.count_steps:
                asm.emit((isa.STEP,), stmt.pos)
            # PUT_BARRIER superinstruction: a UR-put followed by HUGZ.
            if (
                not self.count_steps
                and i + 1 < n
                and isinstance(stmts[i + 1], ast.Hugz)
                and self._try_put_barrier(stmt, scope, asm)
            ):
                asm.end_stmt()
                i += 2
                continue
            self._stmt(stmt, scope, asm)
            asm.end_stmt()
            i += 1

    def _child_block(self, stmts: list, scope: ScopeStack, asm: _Asm) -> None:
        scope.push()
        try:
            self._block(stmts, scope, asm)
        finally:
            scope.pop()

    def _stmt(self, stmt, scope: ScopeStack, asm: _Asm) -> None:
        method = self._STMT_DISPATCH.get(type(stmt))
        if method is None:
            asm.emit(
                (
                    isa.RAISE_ERR,
                    _message_raiser(
                        LolRuntimeError,
                        f"statement {type(stmt).__name__} not implemented",
                        stmt.pos,
                    ),
                ),
                stmt.pos,
            )
            return
        method(self, stmt, scope, asm)

    def _stmt_var_decl(self, stmt: ast.VarDecl, scope: ScopeStack, asm: _Asm) -> None:
        pos = stmt.pos
        name = stmt.name
        declared = parse_type(stmt.static_type, pos) if stmt.static_type else None
        if stmt.scope == "WE":
            self._stmt_symmetric_decl(stmt, declared, asm)
            return
        if stmt.is_array:
            sreg = self._expr_reg(stmt.size, scope, asm)
            elem_t = declared or LolType.NUMBAR
            slot = scope.declare(name, static_type=declared, is_array=True).slot
            asm.emit((isa.ARRDECL, slot, sreg, (elem_t, name)), pos)
            return
        # The initializer compiles *before* the name is (re)declared, so
        # ``I HAS A x ITZ SUM OF x AN 1`` sees the previous binding.
        # An untyped declaration stores the value *unchecked* (like the
        # closure engine's ``run_init``): the value goes into a temp and
        # the temp's producing instruction is retargeted at the new slot.
        if stmt.init is not None:
            if declared is not None:
                vreg = self._expr_reg(stmt.init, scope, asm)
                slot = scope.declare(name, static_type=declared).slot
                asm.emit((isa.ST_TYPED, slot, vreg, (declared, name)), pos)
            else:
                op = self._operand(stmt.init, scope)
                if op is not None:
                    slot = scope.declare(name).slot
                    if op[0] == "c":
                        asm.emit((isa.LOADC, slot, op[1]), pos)
                    elif op[1] != slot:
                        asm.emit((isa.MOVE, slot, op[1]), pos)
                    return
                tmp = asm.temp()
                self._expr(stmt.init, scope, asm, tmp)
                slot = scope.declare(name).slot
                last = asm.code[-1]
                if (
                    last[0] != isa.RAISE_ERR
                    and isa.OPFIELDS[last[0]][:1] == "r"
                    and last[1] == tmp
                ):
                    # Only the final instruction of an expression writes
                    # its destination, so retargeting it is safe.
                    asm.code[-1] = (last[0], slot) + last[2:]
                else:
                    asm.emit((isa.MOVE, slot, tmp), pos)
            return
        slot = scope.declare(name, static_type=declared).slot
        default = default_value(declared) if declared is not None else None
        asm.emit((isa.LOADC, slot, default), pos)

    def _stmt_symmetric_decl(
        self, stmt: ast.VarDecl, declared: Optional[LolType], asm: _Asm
    ) -> None:
        pos = stmt.pos
        name = stmt.name
        if declared is None:
            asm.emit(
                (
                    isa.RAISE_ERR,
                    _message_raiser(
                        LolParallelError,
                        f"symmetric variable '{name}' must be typed "
                        f"(WE HAS A {name} ITZ SRSLY A <type> ...)",
                        pos,
                    ),
                ),
                pos,
            )
            return
        # Size/init expressions evaluate on the *root* frame (mini code
        # objects executed against gframe), exactly as the tree-walker
        # evaluates them on ``self.globals``.
        size_co = (
            self._compile_mini(stmt.size, f"<size {name}>") if stmt.is_array else None
        )
        init_co = (
            self._compile_mini(stmt.init, f"<init {name}>")
            if stmt.init is not None
            else None
        )
        self.root_scope.declare_symmetric(
            name, static_type=declared, is_array=stmt.is_array
        )
        asm.emit(
            (
                isa.SYMDECL,
                (name, declared, stmt.is_array, stmt.shared_lock, size_co, init_co),
            ),
            pos,
        )

    def _compile_mini(self, expr, name: str) -> CodeObject:
        """Compile one root-frame expression into its own code object."""
        mini = _Asm(name, self.root_layout, is_function=False)
        dst = mini.temp()
        self._expr(expr, self.root_scope, mini, dst)
        mini.emit((isa.RET, dst), expr.pos)
        mini.end_stmt()
        return mini.finish(0)  # executes on gframe; n_slots unused

    def _stmt_assign(self, stmt: ast.Assign, scope: ScopeStack, asm: _Asm) -> None:
        target = stmt.target
        # Fuse plain local-scalar stores: compile the value straight into
        # the destination slot.
        if isinstance(target, ast.VarRef) and target.qualifier != "UR":
            info = scope.lookup(target.name)
            if (
                info is not None
                and info.kind == LOCAL
                and not info.is_array
                and info.fallback is None
            ):
                slot = info.slot
                name = target.name
                pos = target.pos
                if info.static_type is not None:
                    if self._try_get_bin(stmt.value, scope, asm, slot):
                        asm.emit(
                            (isa.COERCE, slot, (info.static_type, name)), pos
                        )
                        return
                    vreg = self._expr_reg(stmt.value, scope, asm)
                    asm.emit(
                        (isa.ST_TYPED, slot, vreg, (info.static_type, name)), pos
                    )
                    return
                if self._try_get_bin(stmt.value, scope, asm, slot):
                    return
                if isinstance(stmt.value, _SCALAR_NODES) or self._is_scalar_read(
                    stmt.value, scope
                ):
                    self._expr(stmt.value, scope, asm, slot)
                    return
                vreg = self._expr_reg(stmt.value, scope, asm)
                asm.emit((isa.ST_DYN, slot, vreg, name), pos)
                return
        vreg = self._expr_reg(stmt.value, scope, asm)
        self._emit_store(target, scope, asm, vreg)

    def _try_put_barrier(self, stmt, scope: ScopeStack, asm: _Asm) -> bool:
        """Emit a fused ``PUT_BARRIER`` for ``<UR put>`` + ``HUGZ``."""
        if not isinstance(stmt, ast.Assign):
            return False
        target = stmt.target
        if isinstance(target, ast.VarRef) and target.qualifier == "UR":
            vreg = self._expr_reg(stmt.value, scope, asm)
            asm.emit(
                (isa.PUT_BARRIER, target.name, vreg, (None,)), target.pos
            )
            return True
        if (
            isinstance(target, ast.Index)
            and isinstance(target.base, ast.VarRef)
            and target.base.qualifier == "UR"
        ):
            vreg = self._expr_reg(stmt.value, scope, asm)
            ireg = self._expr_reg(target.index, scope, asm)
            asm.emit(
                (isa.PUT_BARRIER, target.base.name, vreg, (ireg,)), target.pos
            )
            return True
        return False

    def _try_get_bin(self, value, scope: ScopeStack, asm: _Asm, dst: int) -> bool:
        """Emit a fused ``GET_BIN`` (remote get + binop) into ``dst``."""
        if self.count_flops or not isinstance(value, ast.BinOp):
            return False
        fn = BINOP_FUNCS.get(value.op)
        if fn is None:
            return False

        def remote_spec(node):
            # A ``UR``-qualified scalar or simply-indexed element get.
            if isinstance(node, ast.VarRef) and node.qualifier == "UR":
                return (node.name, None)
            if (
                isinstance(node, ast.Index)
                and isinstance(node.base, ast.VarRef)
                and node.base.qualifier == "UR"
            ):
                idx = self._operand(node.index, scope)
                if idx is not None:
                    return (node.base.name, idx)
            return None

        lhs_r = remote_spec(value.lhs)
        rhs_r = remote_spec(value.rhs)
        if lhs_r is not None and rhs_r is None:
            other = self._operand(value.rhs, scope)
            if other is None:
                return False
            name, idx = lhs_r
            asm.emit(
                (isa.GET_BIN, dst, (fn, name, idx, True, other, value.pos)),
                value.pos,
            )
            return True
        if rhs_r is not None and lhs_r is None:
            other = self._operand(value.lhs, scope)
            if other is None:
                return False
            name, idx = rhs_r
            asm.emit(
                (isa.GET_BIN, dst, (fn, name, idx, False, other, value.pos)),
                value.pos,
            )
            return True
        return False

    def _stmt_cast(self, stmt: ast.CastStmt, scope: ScopeStack, asm: _Asm) -> None:
        pos = stmt.pos
        to_type = parse_type(stmt.to_type, pos)
        tmp = self._expr_reg(stmt.target, scope, asm)
        asm.emit((isa.CAST, tmp, tmp, (to_type,)), pos)
        self._emit_store(stmt.target, scope, asm, tmp)

    def _stmt_expr(self, stmt: ast.ExprStmt, scope: ScopeStack, asm: _Asm) -> None:
        if isinstance(stmt.expr, ast.ItRef):
            return  # IT <- IT
        self._expr(stmt.expr, scope, asm, 0)

    def _stmt_visible(self, stmt: ast.Visible, scope: ScopeStack, asm: _Asm) -> None:
        parts: list = []
        for arg in stmt.args:
            const = self._const_display(arg)
            if const is not None:
                parts.append(const)
                continue
            reg = self._expr_reg(arg, scope, asm)
            tmp = asm.temp()
            asm.emit((isa.DISPLAY, tmp, reg), arg.pos)
            parts.append(tmp)
        end = "\n" if stmt.newline else ""
        asm.emit((isa.VISIBLE, tuple(parts), end), stmt.pos)

    def _const_display(self, node) -> Optional[str]:
        """Pre-render a constant VISIBLE argument at compile time."""
        from ..interp.interpreter import display_value

        t = type(node)
        if t in (ast.IntLit, ast.FloatLit, ast.TroofLit):
            return display_value(node.value, node.pos)
        if t is ast.NoobLit:
            return display_value(None, node.pos)
        if t is ast.StringLit and node.is_plain():
            return node.plain_text()
        return None

    def _stmt_gimmeh(self, stmt: ast.Gimmeh, scope: ScopeStack, asm: _Asm) -> None:
        tmp = asm.temp()
        asm.emit((isa.READLINE, tmp), stmt.pos)
        self._emit_store(stmt.target, scope, asm, tmp)

    def _stmt_can_has(self, stmt: ast.CanHas, scope: ScopeStack, asm: _Asm) -> None:
        asm.emit((isa.CANHAS, stmt.library), stmt.pos)

    def _stmt_if(self, stmt: ast.If, scope: ScopeStack, asm: _Asm) -> None:
        lend = asm.label()
        lnext = asm.label()
        asm.emit((isa.JF, 0, lnext), stmt.pos)
        self._child_block(stmt.ya_rly, scope, asm)
        asm.emit((isa.JMP, lend), stmt.pos)
        asm.mark(lnext)
        for cond, body in stmt.mebbe:
            lnext = asm.label()
            self._branch_false(cond, scope, asm, lnext)
            asm.end_stmt()
            self._child_block(body, scope, asm)
            asm.emit((isa.JMP, lend), stmt.pos)
            asm.mark(lnext)
        self._child_block(stmt.no_wai, scope, asm)
        asm.mark(lend)

    def _stmt_switch(self, stmt: ast.Switch, scope: ScopeStack, asm: _Asm) -> None:
        lend = asm.label()
        ldefault = asm.label()
        body_labels = [asm.label() for _ in stmt.cases]
        for (lit, _), lbl in zip(stmt.cases, body_labels):
            reg = self._expr_reg(lit, scope, asm)
            asm.emit((isa.JEQ, 0, reg, lbl), lit.pos)
        asm.end_stmt()
        asm.emit((isa.JMP, ldefault), stmt.pos)
        asm.break_stack.append((lend, asm.txt_depth))
        try:
            for (_, body), lbl in zip(stmt.cases, body_labels):
                asm.mark(lbl)  # C-style fallthrough into the next case
                self._child_block(body, scope, asm)
            asm.mark(ldefault)
            self._child_block(stmt.default, scope, asm)
        finally:
            asm.break_stack.pop()
        asm.mark(lend)

    def _prescan_loop_decls(self, stmts: list, scope: ScopeStack) -> None:
        # Same pre-pass as the closure engine: scalar declarations at
        # this block level (plus TXT bodies) are pre-bound with a
        # runtime fallback to the enclosing binding.
        for s in stmts:
            if isinstance(s, ast.VarDecl) and s.scope != "WE" and not s.is_array:
                declared = (
                    parse_type(s.static_type, s.pos) if s.static_type else None
                )
                scope.predeclare(s.name, static_type=declared)
            elif isinstance(s, ast.TxtStmt):
                self._prescan_loop_decls(s.body, scope)

    def _stmt_loop(self, stmt: ast.Loop, scope: ScopeStack, asm: _Asm) -> None:
        pos = stmt.pos
        lo = scope.layout.n_slots
        scope.push()
        try:
            cslot = -1
            if stmt.var is not None:
                cslot = scope.declare(stmt.var, static_type=LolType.NUMBR).slot
            self._prescan_loop_decls(stmt.body, scope)
            plan = None
            if self.vectorize:
                from .vectorize import try_vectorize

                plan = try_vectorize(stmt, scope, self, cslot)
            reset_pc = asm.emit((isa.RESET, lo, lo, ()), pos)
            lexit = asm.label()
            if cslot >= 0:
                asm.emit((isa.LOADC, cslot, 0), pos)
            if plan is not None:
                asm.emit((isa.LOOP_VEC, plan, lexit), pos)
            lcond = asm.label()
            asm.mark(lcond)
            if self.count_steps:
                # Loop iterations count as steps even with an empty body,
                # matching the tree-walker's per-iteration accounting.
                asm.emit((isa.STEP,), pos)
            if stmt.cond is not None:
                if stmt.cond_kind == "TIL":
                    self._branch_true(stmt.cond, scope, asm, lexit)
                else:
                    self._branch_false(stmt.cond, scope, asm, lexit)
                asm.end_stmt()
            asm.break_stack.append((lexit, asm.txt_depth))
            try:
                self._block(stmt.body, scope, asm)
            finally:
                asm.break_stack.pop()
            if cslot >= 0:
                step = 1 if stmt.op == "UPPIN" else -1
                asm.emit((isa.INC_JMP, cslot, step, lcond), pos)
            elif stmt.cond is not None:
                asm.emit((isa.JMP, lcond), pos)
            else:
                asm.emit((isa.NOLOOP, stmt.label), pos)
            asm.mark(lexit)
        finally:
            scope.pop()
        hi = scope.layout.n_slots
        if hi > lo:
            asm.code[reset_pc] = (isa.RESET, lo, hi, [UNDECLARED] * (hi - lo))

    def _stmt_gtfo(self, stmt: ast.Gtfo, scope: ScopeStack, asm: _Asm) -> None:
        if asm.break_stack:
            lexit, entry_depth = asm.break_stack[-1]
            for _ in range(asm.txt_depth - entry_depth):
                asm.emit((isa.TXT_POP,), stmt.pos)
            asm.emit((isa.JMP, lexit), stmt.pos)
        elif asm.is_function:
            asm.emit((isa.RETC, None), stmt.pos)  # GTFO in a function: NOOB
        else:
            asm.emit((isa.RAISE_BREAK,), stmt.pos)

    def _stmt_func_def(self, stmt: ast.FuncDef, scope: ScopeStack, asm: _Asm) -> None:
        vmf = self._function_stub(stmt)
        asm.emit((isa.DEF, stmt.name, (vmf,)), stmt.pos)

    def _stmt_return(self, stmt: ast.Return, scope: ScopeStack, asm: _Asm) -> None:
        reg = self._expr_reg(stmt.expr, scope, asm)
        if asm.is_function:
            asm.emit((isa.RET, reg), stmt.pos)
        else:
            # FOUND YR outside a function: propagate like the tree-walker
            # (an uncaught _Return ends the program).
            asm.emit((isa.RAISE_RETURN, reg), stmt.pos)

    def _stmt_hugz(self, stmt: ast.Hugz, scope: ScopeStack, asm: _Asm) -> None:
        asm.emit((isa.BARRIER,), stmt.pos)

    def _stmt_lock(self, stmt: ast.LockStmt, scope: ScopeStack, asm: _Asm) -> None:
        kind = {"lock": isa.LOCK_SET, "trylock": isa.LOCK_TEST}.get(
            stmt.kind, isa.LOCK_CLEAR
        )
        if isinstance(stmt.target, ast.VarRef):
            asm.emit((isa.LOCKOP, kind, stmt.target.name), stmt.pos)
        else:
            reg = self._expr_reg(stmt.target.expr, scope, asm)
            asm.emit((isa.LOCKOPD, kind, reg), stmt.pos)

    def _stmt_txt(self, stmt: ast.TxtStmt, scope: ScopeStack, asm: _Asm) -> None:
        reg = self._expr_reg(stmt.pe, scope, asm)
        asm.emit((isa.TXT_PUSH, reg), stmt.pos)
        asm.end_stmt()
        asm.txt_depth += 1
        try:
            # No child scope: TXT bodies run in the enclosing environment.
            self._block(stmt.body, scope, asm)
        finally:
            asm.txt_depth -= 1
        asm.emit((isa.TXT_POP,), stmt.pos)

    _STMT_DISPATCH = {
        ast.VarDecl: _stmt_var_decl,
        ast.Assign: _stmt_assign,
        ast.CastStmt: _stmt_cast,
        ast.ExprStmt: _stmt_expr,
        ast.Visible: _stmt_visible,
        ast.Gimmeh: _stmt_gimmeh,
        ast.CanHas: _stmt_can_has,
        ast.If: _stmt_if,
        ast.Switch: _stmt_switch,
        ast.Loop: _stmt_loop,
        ast.Gtfo: _stmt_gtfo,
        ast.FuncDef: _stmt_func_def,
        ast.Return: _stmt_return,
        ast.Hugz: _stmt_hugz,
        ast.LockStmt: _stmt_lock,
        ast.TxtStmt: _stmt_txt,
    }

    # -- conditions -------------------------------------------------------

    def _branch_true(self, cond, scope: ScopeStack, asm: _Asm, target: Label) -> None:
        self._branch(cond, scope, asm, target, _BR_TRUE, isa.JT)

    def _branch_false(self, cond, scope: ScopeStack, asm: _Asm, target: Label) -> None:
        self._branch(cond, scope, asm, target, _BR_FALSE, isa.JF)

    def _branch(self, cond, scope, asm, target, table, generic_op) -> None:
        if isinstance(cond, ast.BinOp) and cond.op in table and not self.count_flops:
            ss_op, sc_op = table[cond.op]
            ls = self._operand(cond.lhs, scope)
            rs = self._operand(cond.rhs, scope)
            if ls is not None and ls[0] == "r":
                if rs is not None and rs[0] == "c" and type(rs[1]) in (int, float):
                    asm.emit((sc_op, ls[1], rs[1], target), cond.pos)
                    return
                rreg = (
                    rs[1] if rs is not None and rs[0] == "r"
                    else self._expr_reg(cond.rhs, scope, asm)
                )
                asm.emit((ss_op, ls[1], rreg, target), cond.pos)
                return
            if (
                ls is not None
                and ls[0] == "c"
                and type(ls[1]) in (int, float)
                and rs is not None
                and rs[0] == "r"
            ):
                # const OP slot == slot SWAP(OP) const; numeric literals
                # never fail coercion, so error order is preserved.
                swapped = table[_SWAP_REL[cond.op]]
                asm.emit((swapped[1], rs[1], ls[1], target), cond.pos)
                return
        reg = self._expr_reg(cond, scope, asm)
        asm.emit((generic_op, reg, target), cond.pos)

    # -- expressions ------------------------------------------------------

    def _operand(self, node, scope: ScopeStack):
        """Recognize inlineable operands: ("c", value) or ("r", slot)."""
        t = type(node)
        if t in (ast.IntLit, ast.FloatLit, ast.TroofLit):
            return ("c", node.value)
        if t is ast.NoobLit:
            return ("c", None)
        if t is ast.StringLit and node.is_plain():
            return ("c", node.plain_text())
        if t is ast.ItRef:
            return ("r", 0)
        if t is ast.VarRef and node.qualifier != "UR":
            info = scope.lookup(node.name)
            if (
                info is not None
                and info.kind == LOCAL
                and not info.is_array
                and info.fallback is None
            ):
                return ("r", info.slot)
        return None

    def _is_scalar_read(self, node, scope: ScopeStack) -> bool:
        """Reads whose value passes straight through (no array risk):
        plain local scalar slots and IT."""
        op = self._operand(node, scope)
        return op is not None and op[0] == "r"

    def _expr_reg(self, node, scope: ScopeStack, asm: _Asm) -> int:
        """Compile ``node`` and return a register holding its value."""
        op = self._operand(node, scope)
        if op is not None:
            if op[0] == "r":
                return op[1]
            reg = asm.temp()
            asm.emit((isa.LOADC, reg, op[1]), node.pos)
            return reg
        reg = asm.temp()
        self._expr(node, scope, asm, reg)
        return reg

    def _expr(self, node, scope: ScopeStack, asm: _Asm, dst: int) -> None:
        """Compile ``node``, leaving its value in register ``dst``."""
        method = self._EXPR_DISPATCH.get(type(node))
        if method is None:
            asm.emit(
                (
                    isa.RAISE_ERR,
                    _message_raiser(
                        LolRuntimeError,
                        f"expression {type(node).__name__} not implemented",
                        node.pos,
                    ),
                ),
                node.pos,
            )
            return
        method(self, node, scope, asm, dst)

    def _expr_const(self, node, scope, asm: _Asm, dst: int) -> None:
        asm.emit((isa.LOADC, dst, node.value), node.pos)

    def _expr_noob(self, node, scope, asm: _Asm, dst: int) -> None:
        asm.emit((isa.LOADC, dst, None), node.pos)

    def _expr_string(self, node: ast.StringLit, scope, asm: _Asm, dst: int) -> None:
        pos = node.pos
        if node.is_plain():
            asm.emit((isa.LOADC, dst, node.plain_text()), pos)
            return
        parts: list = []
        for part in node.parts:
            if isinstance(part, str):
                parts.append(part)
            else:
                _, name = part
                reg = asm.temp()
                self._read_name(name, None, scope, asm, reg, pos)
                parts.append(reg)
        asm.emit((isa.INTERP, dst, tuple(parts)), pos)

    def _expr_it(self, node, scope, asm: _Asm, dst: int) -> None:
        if dst != 0:
            asm.emit((isa.MOVE, dst, 0), node.pos)

    def _expr_me(self, node, scope, asm: _Asm, dst: int) -> None:
        asm.emit((isa.LOAD_ME, dst), node.pos)

    def _expr_frenz(self, node, scope, asm: _Asm, dst: int) -> None:
        asm.emit((isa.LOAD_NPES, dst), node.pos)

    def _expr_random(self, node: ast.RandomExpr, scope, asm: _Asm, dst: int) -> None:
        asm.emit((isa.RANDOM, dst, 0 if node.kind == "int" else 1), node.pos)

    def _expr_binop(self, node: ast.BinOp, scope, asm: _Asm, dst: int) -> None:
        pos = node.pos
        fn = BINOP_FUNCS.get(node.op)
        if fn is None:
            asm.emit(
                (
                    isa.RAISE_ERR,
                    _message_raiser(
                        LolRuntimeError, f"unknown binary op {node.op!r}", pos
                    ),
                ),
                pos,
            )
            return
        cost = FLOP_COST.get(node.op, 0)
        if self.count_flops and cost:
            # FLOP accounting precedes operand evaluation, matching the
            # closure engine's traced closures.
            asm.emit((isa.FLOPS, cost), pos)
        arith = _ARITH_OPS.get(node.op)
        ls = self._operand(node.lhs, scope)
        rs = self._operand(node.rhs, scope)
        # Operands evaluate left-to-right into temps when not inlineable.
        if ls is None:
            lreg = asm.temp()
            self._expr(node.lhs, scope, asm, lreg)
            ls = ("r", lreg)
        if rs is None:
            rreg = asm.temp()
            self._expr(node.rhs, scope, asm, rreg)
            rs = ("r", rreg)
        lk, lv = ls
        rk, rv = rs
        if arith is not None:
            ss, sc, cs = arith
            if lk == "r" and rk == "r":
                asm.emit((ss, dst, lv, rv), pos)
                return
            if lk == "r" and type(rv) in (int, float):
                asm.emit((sc, dst, lv, rv), pos)
                return
            if rk == "r" and type(lv) in (int, float):
                asm.emit((cs, dst, lv, rv), pos)
                return
        if lk == "r" and rk == "r":
            asm.emit((isa.BINOP, dst, fn, lv, rv), pos)
        elif lk == "r":
            asm.emit((isa.BINOP_SC, dst, fn, lv, rv), pos)
        elif rk == "r":
            asm.emit((isa.BINOP_CS, dst, fn, lv, rv), pos)
        else:
            reg = asm.temp()
            asm.emit((isa.LOADC, reg, lv), pos)
            asm.emit((isa.BINOP_SC, dst, fn, reg, rv), pos)

    def _expr_unop(self, node: ast.UnaryOp, scope, asm: _Asm, dst: int) -> None:
        pos = node.pos
        fn = UNOP_FUNCS.get(node.op)
        if fn is None:
            asm.emit(
                (
                    isa.RAISE_ERR,
                    _message_raiser(
                        LolRuntimeError, f"unknown unary op {node.op!r}", pos
                    ),
                ),
                pos,
            )
            return
        cost = FLOP_COST.get(node.op, 0)
        if self.count_flops and cost:
            asm.emit((isa.FLOPS, cost), pos)
        reg = self._expr_reg(node.operand, scope, asm)
        fast = {"square": isa.SQUARE_S, "sqrt": isa.SQRT_S, "recip": isa.RECIP_S}.get(
            node.op
        )
        if fast is not None:
            asm.emit((fast, dst, reg), pos)
        else:
            asm.emit((isa.UNOP, dst, fn, reg), pos)

    def _expr_naryop(self, node: ast.NaryOp, scope, asm: _Asm, dst: int) -> None:
        pos = node.pos
        fn = NARYOP_FUNCS.get(node.op)
        if fn is None:
            asm.emit(
                (
                    isa.RAISE_ERR,
                    _message_raiser(
                        LolRuntimeError, f"unknown n-ary op {node.op!r}", pos
                    ),
                ),
                pos,
            )
            return
        regs = tuple(self._expr_reg(e, scope, asm) for e in node.operands)
        asm.emit((isa.NARY, dst, fn, regs), pos)

    def _expr_cast(self, node: ast.Cast, scope, asm: _Asm, dst: int) -> None:
        to_type = parse_type(node.to_type, node.pos)
        reg = self._expr_reg(node.expr, scope, asm)
        asm.emit((isa.CAST, dst, reg, (to_type,)), node.pos)

    def _expr_var(self, node: ast.VarRef, scope, asm: _Asm, dst: int) -> None:
        self._read_name(node.name, node.qualifier, scope, asm, dst, node.pos)

    def _read_name(
        self, name, qualifier, scope: ScopeStack, asm: _Asm, dst: int, pos
    ) -> None:
        if qualifier == "UR":
            asm.emit((isa.GET, dst, name), pos)
            return
        info = scope.lookup(name)
        if info is None or info.kind == MISSING:
            asm.emit((isa.RAISE_ERR, _undeclared_raiser(name, pos)), pos)
            return
        if info.kind == SYMMETRIC:
            asm.emit((isa.SYM_LD, dst, name, asm.cache_slot()), pos)
            return
        if info.is_array:
            asm.emit(
                (
                    isa.RAISE_ERR,
                    _message_raiser(
                        LolTypeError,
                        f"'{name}' is an array: index it with {name}'Z <expr>",
                        pos,
                    ),
                ),
                pos,
            )
            return
        if info.kind == LOCAL:
            if info.fallback is not None:
                asm.emit((isa.FB_LD, dst, ({name: info}, name)), pos)
            elif info.slot != dst:
                asm.emit((isa.MOVE, dst, info.slot), pos)
            return
        asm.emit((isa.GLD, dst, info.slot, name), pos)

    def _expr_srs(self, node: ast.SrsRef, scope, asm: _Asm, dst: int) -> None:
        nreg = self._expr_reg(node.expr, scope, asm)
        if node.qualifier == "UR":
            asm.emit((isa.GETD, dst, nreg), node.pos)
        else:
            asm.emit((isa.DYN_LD, dst, nreg, (scope.snapshot(),)), node.pos)

    def _expr_index(self, node: ast.Index, scope, asm: _Asm, dst: int) -> None:
        pos = node.pos
        base = node.base
        if isinstance(base, ast.SrsRef):
            nreg = self._expr_reg(base.expr, scope, asm)
            ireg = self._expr_reg(node.index, scope, asm)
            if base.qualifier == "UR":
                asm.emit((isa.GETXD, dst, nreg, ireg), pos)
            else:
                asm.emit((isa.DYN_LDX, dst, nreg, ireg, (scope.snapshot(),)), pos)
            return
        name = base.name
        if base.qualifier == "UR":
            ireg = self._expr_reg(node.index, scope, asm)
            asm.emit((isa.GETX, dst, name, ireg), pos)
            return
        info = scope.lookup(name)
        if info is None:
            # The index is *not* evaluated: the closure engine raises
            # before touching it.
            asm.emit((isa.RAISE_ERR, _undeclared_raiser(name, pos)), pos)
            return
        if info.kind == LOCAL and info.fallback is not None:
            ireg = self._expr_reg(node.index, scope, asm)
            asm.emit((isa.FB_LDX, dst, ireg, ({name: info}, name)), pos)
            return
        if info.kind == SYMMETRIC:
            ireg = self._expr_reg(node.index, scope, asm)
            asm.emit((isa.SYM_LDX, dst, name, ireg, asm.cache_slot()), pos)
            return
        if not info.is_array:
            asm.emit(
                (
                    isa.RAISE_ERR,
                    _message_raiser(
                        LolTypeError, f"'{name}' is not an array", pos
                    ),
                ),
                pos,
            )
            return
        if info.kind == LOCAL:
            ireg = self._expr_reg(node.index, scope, asm)
            asm.emit((isa.LDX, dst, info.slot, ireg, name), pos)
        else:
            # The closure engine checks the global cell *before* touching
            # the index expression; mirror that error order.
            asm.emit((isa.GCHK, info.slot, name), pos)
            ireg = self._expr_reg(node.index, scope, asm)
            asm.emit((isa.GLDX, dst, info.slot, ireg, name), pos)

    def _expr_call(self, node: ast.FuncCall, scope, asm: _Asm, dst: int) -> None:
        pos = node.pos
        # Lookup + arity check precede argument evaluation (the closure
        # engine resolves the function object before evaluating args);
        # the checked function is pinned in a slot so argument side
        # effects cannot swap it.
        freg = asm.temp()
        asm.emit((isa.CHECK_FUNC, freg, node.name, len(node.args)), pos)
        regs = tuple(self._expr_reg(a, scope, asm) for a in node.args)
        asm.emit((isa.CALL, dst, freg, regs), pos)

    _EXPR_DISPATCH = {
        ast.IntLit: _expr_const,
        ast.FloatLit: _expr_const,
        ast.TroofLit: _expr_const,
        ast.StringLit: _expr_string,
        ast.NoobLit: _expr_noob,
        ast.ItRef: _expr_it,
        ast.MeExpr: _expr_me,
        ast.FrenzExpr: _expr_frenz,
        ast.RandomExpr: _expr_random,
        ast.BinOp: _expr_binop,
        ast.UnaryOp: _expr_unop,
        ast.NaryOp: _expr_naryop,
        ast.Cast: _expr_cast,
        ast.VarRef: _expr_var,
        ast.SrsRef: _expr_srs,
        ast.Index: _expr_index,
        ast.FuncCall: _expr_call,
    }

    # -- stores -----------------------------------------------------------

    def _emit_store(self, target, scope: ScopeStack, asm: _Asm, vreg: int) -> None:
        pos = target.pos
        if isinstance(target, ast.Index):
            self._emit_store_element(target, scope, asm, vreg)
            return
        if isinstance(target, ast.SrsRef):
            nreg = self._expr_reg(target.expr, scope, asm)
            if target.qualifier == "UR":
                asm.emit((isa.PUTD, nreg, vreg), pos)
            else:
                asm.emit((isa.DYN_ST, nreg, vreg, (scope.snapshot(),)), pos)
            return
        if isinstance(target, ast.VarRef):
            name = target.name
            if target.qualifier == "UR":
                asm.emit((isa.PUT, name, vreg), pos)
                return
            info = scope.lookup(name)
            if info is None or info.kind == MISSING:
                asm.emit((isa.RAISE_ERR, _undeclared_raiser(name, pos)), pos)
                return
            if info.kind == SYMMETRIC:
                asm.emit((isa.SYM_ST, name, vreg, asm.cache_slot()), pos)
                return
            if info.kind == LOCAL and info.fallback is not None:
                asm.emit((isa.FB_ST, vreg, ({name: info}, name)), pos)
                return
            if info.is_array:
                op = isa.GST_ARR if info.kind == GLOBAL else isa.ST_ARR
                asm.emit((op, info.slot, vreg, name), pos)
                return
            if info.kind == GLOBAL:
                asm.emit((isa.GST, info.slot, vreg, (info.static_type, name)), pos)
                return
            if info.static_type is not None:
                asm.emit(
                    (isa.ST_TYPED, info.slot, vreg, (info.static_type, name)), pos
                )
            else:
                asm.emit((isa.ST_DYN, info.slot, vreg, name), pos)
            return
        asm.emit(
            (
                isa.RAISE_ERR,
                _message_raiser(LolRuntimeError, "invalid assignment target", pos),
            ),
            pos,
        )

    def _emit_store_element(
        self, target: ast.Index, scope: ScopeStack, asm: _Asm, vreg: int
    ) -> None:
        pos = target.pos
        base = target.base
        if isinstance(base, ast.SrsRef):
            nreg = self._expr_reg(base.expr, scope, asm)
            ireg = self._expr_reg(target.index, scope, asm)
            if base.qualifier == "UR":
                asm.emit((isa.PUTXD, nreg, ireg, vreg), pos)
            else:
                asm.emit(
                    (isa.DYN_STX, nreg, ireg, vreg, (scope.snapshot(),)), pos
                )
            return
        name = base.name
        if base.qualifier == "UR":
            ireg = self._expr_reg(target.index, scope, asm)
            asm.emit((isa.PUTX, name, ireg, vreg), pos)
            return
        info = scope.lookup(name)
        if info is None:
            asm.emit((isa.RAISE_ERR, _undeclared_raiser(name, pos)), pos)
            return
        if info.kind == LOCAL and info.fallback is not None:
            ireg = self._expr_reg(target.index, scope, asm)
            asm.emit((isa.FB_STX, ireg, vreg, ({name: info}, name)), pos)
            return
        if info.kind == SYMMETRIC:
            ireg = self._expr_reg(target.index, scope, asm)
            asm.emit((isa.SYM_STX, name, ireg, vreg, asm.cache_slot()), pos)
            return
        if not info.is_array:
            asm.emit(
                (
                    isa.RAISE_ERR,
                    _message_raiser(
                        LolTypeError, f"'{name}' is not an array", pos
                    ),
                ),
                pos,
            )
            return
        elem_t = info.static_type or LolType.NUMBAR
        if info.kind == GLOBAL:
            asm.emit((isa.GCHK, info.slot, name), pos)
            ireg = self._expr_reg(target.index, scope, asm)
            asm.emit((isa.GSTX, info.slot, ireg, vreg, (elem_t, name)), pos)
        else:
            ireg = self._expr_reg(target.index, scope, asm)
            asm.emit((isa.STX, info.slot, ireg, vreg, (name, elem_t)), pos)


def compile_program_vm(
    program: ast.Program,
    *,
    count_flops: bool = False,
    count_steps: bool = False,
    vectorize: bool = True,
) -> VMProgram:
    """Compile ``program`` once; the result is shareable across PEs."""
    return VMCompiler(
        program,
        count_flops=count_flops,
        count_steps=count_steps,
        vectorize=vectorize,
    ).compile()
