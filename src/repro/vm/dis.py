"""Disassembler for VM code objects (the ``loldis`` tool).

Renders the flat instruction tuples produced by
:mod:`repro.vm.compile` in a readable, deterministic form — register
operands as ``r3``, jump targets as ``->12``, callables by name, and
nested code objects (function bodies, symmetric-declaration size/init
expressions) in definition order after the code object that references
them.  The output is stable across runs so it can be snapshot-tested.
"""

from __future__ import annotations

import enum

from . import isa
from .isa import CodeObject, VMFunction, VMProgram


def _fmt_val(v) -> str:
    if isinstance(v, enum.Enum):
        return v.name
    if isinstance(v, VMFunction):
        return f"<function {v.name}>"
    if isinstance(v, CodeObject):
        return f"<code {v.name}>"
    if callable(v):
        return getattr(v, "__name__", "<callable>")
    if isinstance(v, tuple):
        return "(" + ", ".join(_fmt_val(x) for x in v) + ")"
    if isinstance(v, list):
        return "[" + ", ".join(_fmt_val(x) for x in v) + "]"
    if isinstance(v, dict):
        items = ", ".join(
            f"{_fmt_val(k)}: {_fmt_val(x)}" for k, x in sorted(v.items(), key=lambda kv: str(kv[0]))
        )
        return "{" + items + "}"
    return repr(v)


def _fmt_operand(kind: str, v) -> str:
    if kind == "r":
        return f"r{v}"
    if kind == "j":
        return f"->{v}"
    if kind == "n":
        return repr(v)
    if kind == "f":
        return getattr(v, "__name__", "<callable>") if callable(v) else _fmt_val(v)
    if kind == "v":
        return f"<plan {_fmt_val(v)}>"
    return _fmt_val(v)  # "c" constants and "m" meta


def _collect_nested(co: CodeObject, seen: set, out: list) -> None:
    """Append code objects referenced by ``co``'s instructions, in order."""
    for ins in co.code:
        kinds = isa.OPFIELDS[ins[0]]
        for i, kind in enumerate(kinds, start=1):
            v = ins[i]
            stack = [v]
            while stack:
                x = stack.pop()
                if isinstance(x, VMFunction):
                    x = x.co
                if isinstance(x, CodeObject):
                    if id(x) not in seen:
                        seen.add(id(x))
                        out.append(x)
                elif isinstance(x, (tuple, list)):
                    stack.extend(x)


def disassemble_code(co: CodeObject) -> str:
    lines = [f"code {co.name}  (slots={co.n_slots}, caches={co.n_caches})"]
    for pc, ins in enumerate(co.code):
        op = ins[0]
        kinds = isa.OPFIELDS[op]
        operands = ", ".join(
            _fmt_operand(kind, ins[i]) for i, kind in enumerate(kinds, start=1)
        )
        pos = co.positions[pc]
        loc = f"  ; line {pos.line}" if pos is not None else ""
        lines.append(f"  {pc:4d}  {isa.OPNAMES[op]:<12s} {operands}{loc}".rstrip())
    return "\n".join(lines)


def disassemble(obj) -> str:
    """Disassemble a :class:`VMProgram` or a single :class:`CodeObject`."""
    if isinstance(obj, CodeObject):
        roots = [obj]
        extra = []
    elif isinstance(obj, VMProgram):
        roots = [obj.co]
        extra = [f.co for f in obj.hoisted.values()]
    else:
        raise TypeError(f"cannot disassemble {type(obj).__name__}")
    seen = {id(c) for c in roots}
    out: list[CodeObject] = []
    for co in roots:
        _collect_nested(co, seen, out)
    for co in extra:
        if id(co) not in seen:
            seen.add(id(co))
            out.append(co)
    pending = list(out)
    while pending:
        co = pending.pop(0)
        before = len(out)
        _collect_nested(co, seen, out)
        pending.extend(out[before:])
    chunks = [disassemble_code(co) for co in roots + out]
    return "\n\n".join(chunks)


def disassemble_source(
    source: str,
    filename: str = "<string>",
    *,
    count_flops: bool = False,
    count_steps: bool = False,
) -> str:
    """Parse + compile LOLCODE ``source`` and return its disassembly."""
    from ..lang.parser import parse
    from .compile import compile_program_vm

    program = parse(source, filename)
    vmp = compile_program_vm(
        program, count_flops=count_flops, count_steps=count_steps
    )
    return disassemble(vmp)
