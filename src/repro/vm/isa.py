"""Instruction-set definition for the register-bytecode VM engine.

The VM (:mod:`repro.vm.machine`) executes flat tuples instead of a tree
of closures: one program compiles (:mod:`repro.vm.compile`) to a
:class:`CodeObject` holding a ``code`` tuple of instruction tuples, a
parallel ``positions`` tuple (one :class:`~repro.lang.errors.SourcePos`
per pc, for error reporting), a frame size, and an inline-cache count.

Instruction encoding
--------------------

An instruction is a plain Python tuple ``(opcode, field, field, ...)``.
``ins[0]`` is always the integer opcode; the remaining fields are
described per-opcode by :data:`OPFIELDS` using one letter per field:

========= ==================================================================
kind      meaning
========= ==================================================================
``r``     register (frame slot index; slot 0 is ``IT``)
``c``     inline constant (int/float/str/bool/None — the constant pool)
``j``     jump target (a pc; a :class:`Label` until the encoder patches it)
``n``     a name (str) or other opaque identifier
``f``     a Python callable resolved at compile time (operator kernels)
``m``     metadata tuple (names+types, part lists, scope snapshots, …)
``v``     a :class:`repro.vm.vectorize.VecPlan`
========= ==================================================================

Registers are frame slots: the compiler allocates expression temporaries
from the *same* :class:`~repro.lang.resolve.FrameLayout` as named
variables, so a "register" and a variable slot are interchangeable and
most operands address user variables directly (no load/store traffic for
the common ``SUM OF x AN 1`` shapes).

Opcode numbering is the dispatch order: the interpreter loop inlines the
hot half (``op < _COLD_BASE``) in a nested if-chain grouped by opcode
ranges and routes everything else through a handler table, so hot
opcodes get small numbers.  Superinstructions (``INC_JMP``, the fused
compare-branches, ``PUT_BARRIER``, ``GET_BIN``, ``LOOP_VEC``) are
ordinary opcodes emitted by the compiler's peephole rules.

A tracing JIT would hook in here: the green key of a trace is
``(CodeObject, pc)`` — loop headers are exactly the targets of
``INC_JMP``/``JMP`` back-edges, so a recording interpreter can be layered
on :meth:`~repro.vm.machine.Machine._exec` without changing the encoding.
"""

from __future__ import annotations

from typing import Optional

from ..lang.errors import SourcePos

_opcodes: list[str] = []
OPFIELDS: dict[int, str] = {}


def _op(name: str, fields: str) -> int:
    code = len(_opcodes)
    _opcodes.append(name)
    OPFIELDS[code] = fields
    return code


# -- hot: constants, moves, arithmetic --------------------------------------
LOADC = _op("LOADC", "rc")          # d <- const
MOVE = _op("MOVE", "rr")            # d <- reg
ADD_SS = _op("ADD_SS", "rrr")       # d <- a + b
ADD_SC = _op("ADD_SC", "rrc")       # d <- a + const
ADD_CS = _op("ADD_CS", "rcr")       # d <- const + b
SUB_SS = _op("SUB_SS", "rrr")
SUB_SC = _op("SUB_SC", "rrc")
SUB_CS = _op("SUB_CS", "rcr")
MUL_SS = _op("MUL_SS", "rrr")
MUL_SC = _op("MUL_SC", "rrc")
MUL_CS = _op("MUL_CS", "rcr")
SQUARE_S = _op("SQUARE_S", "rr")    # d <- a * a          (UNSQUAR arg)
SQRT_S = _op("SQRT_S", "rr")        # d <- sqrt(a)        (UNSQUAR OF)
RECIP_S = _op("RECIP_S", "rr")      # d <- 1.0 / a        (FLIP OF)

# -- hot: control flow ------------------------------------------------------
INC_JMP = _op("INC_JMP", "rcj")     # counter += step; jump (loop back-edge)
JMP = _op("JMP", "j")
JF = _op("JF", "rj")                # jump if to_troof(reg) is FAIL
JT = _op("JT", "rj")                # jump if to_troof(reg) is WIN
JEQ = _op("JEQ", "rrj")             # jump if equals(a, b)   (WTF? dispatch)
# Fused compare-branches (cond + branch in one dispatch).  _SC variants
# hold a numeric literal; const-on-the-left comparisons are canonicalised
# by swapping the relation (safe: numeric literals never fail coercion).
BR_EQ_SS = _op("BR_EQ_SS", "rrj")
BR_EQ_SC = _op("BR_EQ_SC", "rcj")
BR_NE_SS = _op("BR_NE_SS", "rrj")
BR_NE_SC = _op("BR_NE_SC", "rcj")
BR_LT_SS = _op("BR_LT_SS", "rrj")
BR_LT_SC = _op("BR_LT_SC", "rcj")
BR_LE_SS = _op("BR_LE_SS", "rrj")
BR_LE_SC = _op("BR_LE_SC", "rcj")
BR_GT_SS = _op("BR_GT_SS", "rrj")
BR_GT_SC = _op("BR_GT_SC", "rcj")
BR_GE_SS = _op("BR_GE_SS", "rrj")
BR_GE_SC = _op("BR_GE_SC", "rcj")

# -- hot: array / symmetric access ------------------------------------------
LDX = _op("LDX", "rrrn")            # d <- localarray[slot a].read(i)
STX = _op("STX", "rrrm")            # localarray[slot].write(i, v); m=(name, elem_t)
SYM_LD = _op("SYM_LD", "rnm")       # d <- local_read(name); m=(cache_idx,)
SYM_ST = _op("SYM_ST", "nrm")       # local_write(name, v);  m=(cache_idx,)
SYM_LDX = _op("SYM_LDX", "rnrm")    # d <- local_read(name, i)
SYM_STX = _op("SYM_STX", "nrrm")    # local_write(name, v, i)

# -- hot: stores, coercions, misc -------------------------------------------
ST_TYPED = _op("ST_TYPED", "rrm")   # slot <- coerce_static(v); m=(type, name)
ST_DYN = _op("ST_DYN", "rrn")       # slot <- v (scalar-checked)
COERCE = _op("COERCE", "rm")        # slot <- coerce_static(slot); m=(type, name)
BINOP = _op("BINOP", "rfrr")        # d <- fn(a, b)      (cold operators)
BINOP_SC = _op("BINOP_SC", "rfrc")
BINOP_CS = _op("BINOP_CS", "rfcr")
UNOP = _op("UNOP", "rfr")
LOAD_ME = _op("LOAD_ME", "r")
LOAD_NPES = _op("LOAD_NPES", "r")
RESET = _op("RESET", "ccm")         # frame[lo:hi] = UNDECLARED; m=fill list
STEP = _op("STEP", "")              # max_steps accounting (count_steps only)
FLOPS = _op("FLOPS", "c")           # ctx.add_flops(n)    (count_flops only)
LOOP_VEC = _op("LOOP_VEC", "vj")    # try vectorized loop; on success jump exit

#: Opcodes below this value are inlined in the dispatch loop's if-chain;
#: the rest go through the handler table.
_COLD_BASE = _op("HALT", "")
HALT = _COLD_BASE

RET = _op("RET", "r")
RETC = _op("RETC", "c")
RAISE_BREAK = _op("RAISE_BREAK", "")   # GTFO outside any loop/switch
NOLOOP = _op("NOLOOP", "n")            # loop with no counter/cond/GTFO
RAISE_ERR = _op("RAISE_ERR", "f")      # compile-time-known error site
RAISE_RETURN = _op("RAISE_RETURN", "r")  # FOUND YR outside any function

DISPLAY = _op("DISPLAY", "rr")         # d <- display_value(a)  (VISIBLE arg)
VISIBLE = _op("VISIBLE", "mc")         # m=(str|reg, ...); c=end
INTERP = _op("INTERP", "rm")           # d <- interpolated YARN; m=(parts,)
NARY = _op("NARY", "rfm")              # d <- fn([regs...]); m=(regs,)
CAST = _op("CAST", "rrm")              # d <- cast(a, type); m=(type,)
RANDOM = _op("RANDOM", "rc")           # d <- rng; c: 0=WHATEVR 1=WHATEVAR
READLINE = _op("READLINE", "r")        # d <- ctx.read_line()
CANHAS = _op("CANHAS", "n")

CHECK_FUNC = _op("CHECK_FUNC", "rnc")  # d <- checked function (before args)
CALL = _op("CALL", "rrm")              # d <- call frame[a]; m=(arg_regs,)
DEF = _op("DEF", "nm")                 # functions[name] = m[0]

BARRIER = _op("BARRIER", "")
LOCKOP = _op("LOCKOP", "cn")           # c: 0=lock 1=trylock 2=unlock
LOCKOPD = _op("LOCKOPD", "cr")         # dynamic (SRS) lock target
TXT_PUSH = _op("TXT_PUSH", "r")        # enter TXT MAH BFF <pe>
TXT_POP = _op("TXT_POP", "")

GET = _op("GET", "rn")                 # d <- ctx.get(name, target)
GETX = _op("GETX", "rnr")
PUT = _op("PUT", "nr")                 # ctx.put(name, v, target)
PUTX = _op("PUTX", "nrr")
PUT_BARRIER = _op("PUT_BARRIER", "nrm")  # fused put + HUGZ; m=(ireg|None,)
GET_BIN = _op("GET_BIN", "rm")         # fused get + binop; see compile.py
GETD = _op("GETD", "rr")               # SRS UR variants (dynamic name)
GETXD = _op("GETXD", "rrr")
PUTD = _op("PUTD", "rr")
PUTXD = _op("PUTXD", "rrr")

DYN_LD = _op("DYN_LD", "rrm")          # SRS local; m=(snapshot,)
DYN_ST = _op("DYN_ST", "rrm")
DYN_LDX = _op("DYN_LDX", "rrrm")
DYN_STX = _op("DYN_STX", "rrrm")
FB_LD = _op("FB_LD", "rm")             # pre-declared loop binding; m=(info, name)
FB_ST = _op("FB_ST", "rm")
FB_LDX = _op("FB_LDX", "rrm")          # m=(fsnap, name)
FB_STX = _op("FB_STX", "rrm")

GLD = _op("GLD", "rcn")                # global scalar read (from a function)
GST = _op("GST", "crm")                # m=(static_type|None, name)
GLDX = _op("GLDX", "rcrn")
GSTX = _op("GSTX", "crrm")             # m=(elem_t, name)
ST_ARR = _op("ST_ARR", "crn")          # whole local array assignment
GST_ARR = _op("GST_ARR", "crn")
ARRDECL = _op("ARRDECL", "crm")        # m=(elem_t, name)
SYMDECL = _op("SYMDECL", "m")          # m=(name, type, is_array, lock, size_co, init_co)
GCHK = _op("GCHK", "cn")               # raise unless gframe[slot] is declared

OPNAMES = tuple(_opcodes)
N_OPCODES = len(_opcodes)

#: Lock kind codes for LOCKOP/LOCKOPD.
LOCK_SET, LOCK_TEST, LOCK_CLEAR = 0, 1, 2


class Label:
    """A forward-reference jump target; resolved by :meth:`Assembler.finish`."""

    __slots__ = ("pc",)

    def __init__(self) -> None:
        self.pc: int = -1


class CodeObject:
    """One flat code unit: the program top level, a function body, or a
    symmetric-declaration size/init mini-expression."""

    __slots__ = ("name", "code", "positions", "n_slots", "n_caches")

    def __init__(
        self,
        name: str,
        code: tuple,
        positions: tuple,
        n_slots: int,
        n_caches: int,
    ) -> None:
        self.name = name
        self.code = code
        self.positions = positions
        self.n_slots = n_slots
        self.n_caches = n_caches

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CodeObject {self.name!r} ({len(self.code)} ops)>"


class VMFunction:
    """A compiled ``HOW IZ I`` body (the VM analogue of CompiledFunction)."""

    __slots__ = ("name", "n_params", "param_slots", "co", "pos")

    def __init__(
        self,
        name: str,
        n_params: int,
        param_slots: tuple[int, ...],
        co: Optional[CodeObject],
        pos: SourcePos,
    ) -> None:
        self.name = name
        self.n_params = n_params
        self.param_slots = param_slots
        self.co = co
        self.pos = pos


class VMProgram:
    """A whole program compiled to bytecode; shareable across PEs."""

    __slots__ = ("co", "hoisted", "count_flops", "count_steps")

    def __init__(
        self,
        co: CodeObject,
        hoisted: dict[str, VMFunction],
        count_flops: bool,
        count_steps: bool,
    ) -> None:
        self.co = co
        self.hoisted = hoisted
        self.count_flops = count_flops
        self.count_steps = count_steps

    def run(self, ctx, max_steps: Optional[int] = None):
        """Execute on one PE; returns the Machine (stats are inspectable).

        With metrics armed, the machine's per-run counters (symbol-cache
        misses, vectorizer runs/bails, step count) are flushed into the
        central registry after the run — one counter batch per PE run,
        nothing on the dispatch hot path, and ``machine.py`` itself
        stays instrumentation-free.
        """
        from .. import obs as _obs
        from .machine import Machine

        machine = Machine(ctx, max_steps=max_steps)
        try:
            machine.run(self)
        finally:
            rt = _obs.ACTIVE
            if rt is not None and rt.metrics_on:
                reg = rt.registry
                reg.counter(
                    "lol_vm_runs_total", "VM executions (one per PE run)"
                ).inc()
                vm_events = reg.counter(
                    "lol_vm_events_total",
                    "VM engine events: symbol-cache misses, vectorized "
                    "loop runs, vectorizer bails, executed steps",
                )
                if machine.sym_misses:
                    vm_events.inc(machine.sym_misses, event="sym_misses")
                if machine.vec_runs:
                    vm_events.inc(machine.vec_runs, event="vec_runs")
                if machine.vec_bails:
                    vm_events.inc(machine.vec_bails, event="vec_bails")
                if machine.steps:
                    vm_events.inc(machine.steps, event="steps")
        return machine


def patch_jumps(code: list) -> tuple:
    """Resolve :class:`Label` jump fields into integer pcs.

    Field positions come from :data:`OPFIELDS`, so new opcodes with jump
    operands are patched without touching the encoder.
    """
    out = []
    for ins in code:
        fields = OPFIELDS[ins[0]]
        if "j" in fields:
            ins = list(ins)
            for i, kind in enumerate(fields):
                if kind == "j":
                    target = ins[1 + i]
                    if isinstance(target, Label):
                        if target.pc < 0:
                            raise AssertionError("unresolved jump label")
                        ins[1 + i] = target.pc
            ins = tuple(ins)
        out.append(ins)
    return tuple(out)
